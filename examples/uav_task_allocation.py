"""UAV fleet task allocation: the original MCA application (Choi 2009).

A fleet of UAVs with distance-based sub-modular utilities auctions a set
of geo-located tasks over its (radius-limited) communication graph.

Run:  python examples/uav_task_allocation.py
"""

from repro.mca import SynchronousEngine, consensus_report, message_bound
from repro.workloads import uav_task_allocation


def main() -> None:
    workload = uav_task_allocation(num_uavs=5, num_tasks=7, capacity=2,
                                   seed=13)
    print("=== UAV fleet task allocation ===")
    print(f"fleet: {len(workload.network)} UAVs, "
          f"diameter D = {workload.network.diameter()}")
    print(f"tasks: {len(workload.items)}  "
          f"(bound: D*|J| = {message_bound(workload.network, workload.items)} "
          f"rounds)")
    engine = SynchronousEngine(workload.network, workload.items,
                               workload.policies)
    result = engine.run()
    print(f"\noutcome: {result.outcome.value} in {result.rounds} rounds "
          f"({result.messages_processed} messages)")
    for task, winner in sorted(result.allocation.items()):
        if winner is None:
            print(f"  {task}: unassigned (fleet at capacity)")
        else:
            position = workload.positions[winner]
            target = workload.task_locations[task]
            print(f"  {task} at {target[0]:.0f},{target[1]:.0f} -> "
                  f"UAV {winner} at {position[0]:.0f},{position[1]:.0f}")
    report = consensus_report(engine.agents)
    print(f"\nconflict-free: {report.conflict_free}, "
          f"views agree: {report.views_agree}")


if __name__ == "__main__":
    main()
