"""Case study: distributed virtual network embedding over MCA.

A 3x3 grid substrate of federated physical nodes auctions the virtual
nodes of incoming VN requests (residual-capacity sub-modular bids), then
maps virtual links over k-shortest loop-free paths — Section II-B of the
paper, end to end.

Run:  python examples/vnm_embedding.py
"""

from repro.vnm import embed, validate_mapping
from repro.workloads import vn_embedding_workload


def main() -> None:
    workload = vn_embedding_workload(
        grid_width=3, grid_height=3, num_requests=3, request_size=3, seed=11
    )
    print("=== Distributed VN embedding on a 3x3 grid substrate ===")
    accepted = 0
    for index, request in enumerate(workload.requests):
        result = embed(request, workload.physical)
        status = "ACCEPTED" if result.success else f"REJECTED ({result.reason})"
        print(f"\nrequest {index}: {len(request)} virtual nodes -> {status}")
        if not result.success:
            continue
        accepted += 1
        print(f"  auction: {result.auction.rounds} rounds, "
              f"{result.auction.messages_processed} messages")
        for vnode, pnode in sorted(result.mapping.node_map.items()):
            print(f"  {vnode} -> physical node {pnode}")
        for (a, b), path in sorted(result.mapping.link_map.items()):
            print(f"  vlink ({a},{b}) -> path {path}")
        report = validate_mapping(request, workload.physical, result.mapping)
        print(f"  valid mapping: {report.valid}")
        # Note: requests are embedded independently (each sees the full
        # substrate); admission control across requests is future work in
        # the paper's framing.
    print(f"\naccepted {accepted}/{len(workload.requests)} requests")


if __name__ == "__main__":
    main()
