"""Campaign sweep: randomized differential verification of the whole stack.

Builds the default campaign (random MCA auctions, dispatch grids, UAV task
sets, vnet topologies and random relational problems, each paired with the
applicable differential oracle), runs it cold through a sharded process
pool, then re-runs it to demonstrate the content-addressed result cache.

Run:  python examples/campaign_sweep.py

Environment:
  CAMPAIGN_SWEEP_INSTANCES  minimum task count (default 120)
  CAMPAIGN_SWEEP_SHARDS     worker processes (default 2)
"""

import os
import sys
import tempfile

from repro.analysis import render_campaign_table, write_campaign_json
from repro.campaign import build_default_campaign, run_campaign


def main() -> int:
    instances = int(os.environ.get("CAMPAIGN_SWEEP_INSTANCES", "120"))
    shards = int(os.environ.get("CAMPAIGN_SWEEP_SHARDS", "2"))
    tasks = build_default_campaign(instances=instances)
    families = {spec.family for spec, _ in tasks}
    oracles = {oracle for _, oracle in tasks}
    print(f"campaign: {len(tasks)} tasks over {len(families)} families "
          f"({', '.join(sorted(families))}) and {len(oracles)} oracles "
          f"({', '.join(sorted(oracles))})")

    # A fresh cache directory so the first run is genuinely cold.
    with tempfile.TemporaryDirectory(prefix="campaign_cache_") as cache_dir:
        cold = run_campaign(tasks, shards=shards, cache_dir=cache_dir)
        print(render_campaign_table(
            cold.results,
            title=f"cold run: {cold.wall_seconds:.2f}s wall, "
                  f"{cold.shards} shard(s)"))
        artifact = write_campaign_json(
            cold.results, "BENCH_campaign.json",
            wall_seconds=cold.wall_seconds, shards=cold.shards)
        print(f"artifact: BENCH_campaign.json "
              f"({artifact['summary']['totals']['tasks']} results)")

        warm = run_campaign(tasks, shards=shards, cache_dir=cache_dir)
        speedup = cold.wall_seconds / max(warm.wall_seconds, 1e-9)
        print(f"\nwarm re-run: {warm.wall_seconds:.3f}s wall, "
              f"{warm.cache_hits}/{warm.total} cache hits, "
              f"{speedup:.0f}x faster")

    ok = cold.clean and warm.clean
    if not ok:
        for bad in cold.disagreements + cold.errors:
            print(f"FAILED: {bad.family}#{bad.seed} / {bad.oracle}: "
                  f"{bad.error or bad.detail}", file=sys.stderr)
    assert warm.cache_hits == warm.total, "warm run missed the cache"
    print("\nall oracles agree" if ok else "\nORACLE DISAGREEMENT", flush=True)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
