"""Result 2 demo: MCA is not resilient against rebidding attacks.

A single malicious agent that keeps rebidding on items it lost (violating
the Remark-1 necessary condition) prevents the fleet from ever settling —
a protocol-level denial of service.  Shown twice: by executing the real
protocol, and by push-button bounded verification.

Run:  python examples/rebidding_attack.py
"""

from repro.mca import (
    AgentNetwork,
    AgentPolicy,
    GeometricUtility,
    RebidStrategy,
    SynchronousEngine,
)
from repro.model import build_dynamic


def main() -> None:
    print("=== Rebidding attack: protocol execution ===")
    items = ["slotA", "slotB"]
    honest = {
        0: AgentPolicy(utility=GeometricUtility({"slotA": 10, "slotB": 8}, 0.5),
                       target=2),
        1: AgentPolicy(utility=GeometricUtility({"slotA": 8, "slotB": 10}, 0.5),
                       target=2),
    }
    network = AgentNetwork.complete(2)
    baseline = SynchronousEngine(network, items, honest).run(100)
    print(f"all honest:        {baseline.outcome.value} "
          f"(allocation {baseline.allocation})")

    attacked = dict(honest)
    attacked[1] = AgentPolicy(
        utility=GeometricUtility({"slotA": 1, "slotB": 1}, 0.5),
        target=2,
        rebid=RebidStrategy.FLIPFLOP,
    )
    result = SynchronousEngine(network, items, attacked).run(100)
    print(f"agent 1 malicious: {result.outcome.value} "
          f"(cycle of length {result.cycle_length} from round "
          f"{result.cycle_start})")

    print("\n=== Rebidding attack: bounded verification ===")
    model = build_dynamic(num_pnodes=2, num_vnodes=2, max_value=4,
                          rebid_attackers={1})
    solution = model.check_consensus()
    print(f"check consensus with a rebidding attacker: "
          f"{'COUNTEREXAMPLE FOUND' if solution.satisfiable else 'holds'}")
    if solution.satisfiable:
        print(f"  ({solution.stats.num_clauses} clauses, "
              f"solved in {solution.seconds:.2f}s)")
        print("  => a trace exists where consensus is never reached: the")
        print("     protocol has no defense against rebidding (Result 2).")


if __name__ == "__main__":
    main()
