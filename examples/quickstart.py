"""Quickstart: run the paper's Example 1 (Figure 1) end to end.

Two agents bid on three items and reach a conflict-free allocation after
one exchange, then the same protocol is verified push-button with the
bounded model checker.

Run:  python examples/quickstart.py
"""

from repro.mca import consensus_report, example1_engine
from repro.model import PolicyCombination, check_combination


def main() -> None:
    # --- 1. Execute the protocol (Figure 1) ---------------------------
    engine = example1_engine()
    result = engine.run()
    print("=== MCA Example 1 (Figure 1) ===")
    print(f"outcome: {result.outcome.value} after {result.rounds} rounds")
    for item, winner in sorted(result.allocation.items()):
        bid = engine.agents[0].beliefs[item].bid
        print(f"  item {item}: won by agent {winner} at bid {bid:g}")
    report = consensus_report(engine.agents)
    print(f"consensus predicate: {report.consensus} "
          f"(views agree: {report.views_agree}, "
          f"conflict-free: {report.conflict_free})")

    # --- 2. Verify the agreement mechanism push-button ----------------
    print("\n=== check consensus (bounded verification) ===")
    verdict = check_combination(
        PolicyCombination(submodular=True, release_outbid=False),
        num_pnodes=2, num_vnodes=2, max_value=4,
    )
    stats = verdict.solution.stats
    print(f"policy: {verdict.combination.label}")
    print(f"translated to {stats.num_clauses} clauses / "
          f"{stats.num_cnf_vars} vars")
    print("verdict:", "consensus holds (no counterexample)"
          if verdict.converges else "COUNTEREXAMPLE FOUND")


if __name__ == "__main__":
    main()
