"""Quickstart: run the paper's Example 1 (Figure 1) end to end.

Two agents bid on three items and reach a conflict-free allocation after
one exchange; then the same protocol is verified push-button two ways
through the unified ``repro.api`` façade: the bounded model checker
(SAT over the relational encoding) and exhaustive schedule exploration
of the executable protocol — one `Result` shape for both.

Run:  python examples/quickstart.py
"""

from repro import api
from repro.mca import consensus_report, example1_engine
from repro.model import PolicyCombination, check_combination


def main() -> None:
    # --- 1. Execute the protocol (Figure 1) ---------------------------
    engine = example1_engine()
    result = engine.run()
    print("=== MCA Example 1 (Figure 1) ===")
    print(f"outcome: {result.outcome.value} after {result.rounds} rounds")
    for item, winner in sorted(result.allocation.items()):
        bid = engine.agents[0].beliefs[item].bid
        print(f"  item {item}: won by agent {winner} at bid {bid:g}")
    report = consensus_report(engine.agents)
    print(f"consensus predicate: {report.consensus} "
          f"(views agree: {report.views_agree}, "
          f"conflict-free: {report.conflict_free})")

    # --- 2. Verify the agreement mechanism push-button ----------------
    print("\n=== check consensus (bounded verification, repro.api) ===")
    verdict = check_combination(
        PolicyCombination(submodular=True, release_outbid=False),
        num_pnodes=2, num_vnodes=2, max_value=4,
    )
    checked = verdict.solution  # a unified repro.api Result
    print(f"policy: {verdict.combination.label}  "
          f"(backend: {checked.backend})")
    print(f"translated to {checked.stats.num_clauses} clauses / "
          f"{checked.stats.num_cnf_vars} vars")
    print("verdict:", "consensus holds (no counterexample)"
          if verdict.converges else "COUNTEREXAMPLE FOUND")

    # --- 3. Cross-check dynamically through the same façade -----------
    print("\n=== explore every schedule (repro.api.run_protocol) ===")
    policies = {a: engine.agents[a].policy for a in engine.agents}
    dynamic = api.run_protocol(engine.network, engine.items, policies,
                               max_rounds=10)
    print(f"backend: {dynamic.backend}, "
          f"paths explored: {dynamic.detail['paths_explored']}, "
          f"worst case: {dynamic.detail['max_rounds_to_converge']} rounds")
    print(f"verdict: {dynamic.verdict.value} — {dynamic.describe()}")


if __name__ == "__main__":
    main()
