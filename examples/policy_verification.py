"""Result 1 demo: push-button verification across the MCA policy grid.

For every combination of (utility sub-modularity) x (release-outbid
policy), check the consensus assertion with the bounded model checker AND
cross-validate with exhaustive explicit-state exploration of the real
protocol — both through the unified ``repro.api`` façade.  Exactly one
cell fails: non-sub-modular + release (Figure 2).

Run:  python examples/policy_verification.py
"""

from repro import api
from repro.analysis import render_table
from repro.mca import AgentNetwork
from repro.mca.scenarios import figure2_engine
from repro.model import policy_matrix


def main() -> None:
    print("=== Result 1: policy-combination sweep ===\n")
    rows = []
    verdicts = policy_matrix(num_pnodes=2, num_vnodes=2, max_value=6)
    for verdict in verdicts:
        combo = verdict.combination
        # Cross-validate with the explicit-state checker on Figure 2's
        # concrete scenario (the façade's "explorer" backend).
        engine = figure2_engine(submodular=combo.submodular,
                                release_outbid=combo.release_outbid)
        policies = {a: engine.agents[a].policy for a in engine.agents}
        dynamic = api.run_protocol(
            AgentNetwork.complete(2), engine.items, policies, max_rounds=10
        )
        rows.append([
            "sub-modular" if combo.submodular else "NON-sub-modular",
            "release" if combo.release_outbid else "keep",
            "converges" if verdict.converges else "OSCILLATES",
            "converges" if dynamic.holds else "OSCILLATES",
            verdict.solution.stats.num_clauses,
        ])
    print(render_table(
        ["utility (p_u)", "outbid items (p_RO)", "SAT check",
         "state exploration", "clauses"],
        rows,
    ))
    print("\nOnly non-sub-modular + release breaks convergence — the")
    print("paper's Result 1, reproduced by two independent checkers.")


if __name__ == "__main__":
    main()
