"""Benchmark: delta verification (warm re-solves vs cold solves).

The delta path (:func:`repro.api.solve_delta` /
:class:`repro.api.DeltaSession`) answers narrowed-bounds variants of an
anchored problem on the live solver through unit assumptions, skipping
the translate+solve pipeline entirely.  The workload here is a
medium-sized relational problem whose translation dominates a cold
solve, re-checked under a stream of single-tuple bound edits — the
streaming re-check shape the delta layer exists for.

Rows land in ``BENCH_delta.json``:

* ``test_cold_solve`` — the full translate+solve cost per problem (what
  every re-check paid before the delta path existed),
* ``test_warm_delta_resolves`` — a stream of warm re-solves through one
  anchored session (diff + assumptions + solve, no translation),
* ``test_fallback_full_resolve`` — the fallback cost when the edit is
  not delta-safe (a fresh anchor translate+solve, provenance-tagged).

``test_warm_faster_than_cold`` is the CI regression gate: it fails
whenever a warm re-verify stops being cheaper than a cold solve of the
same variant.
"""

import time

from repro.api import DeltaSession, FormulaProblem, solve as api_solve
from repro.kodkod import ast
from repro.kodkod.bounds import Bounds
from repro.kodkod.universe import Universe

NUM_ATOMS = 10
WARM_RESOLVES = 10


def delta_workload() -> FormulaProblem:
    """A SAT problem big enough that translation dominates a cold solve."""
    atoms = [f"n{i}" for i in range(NUM_ATOMS)]
    universe = Universe(atoms)
    r = ast.Relation("r", 1)
    s = ast.Relation("s", 1)
    edge = ast.Relation("edge", 2)
    bounds = Bounds(universe)
    bounds.bound(r, universe.empty(1), universe.all_tuples(1))
    bounds.bound(s, universe.empty(1), universe.all_tuples(1))
    bounds.bound(edge, universe.empty(2), universe.all_tuples(2))
    x = ast.Variable("x")
    formula = ast.And([
        ast.Some(r),
        ast.Subset(r, s),
        ast.ForAll([(x, ast.Univ())], ast.Some(ast.Join(x, edge))),
    ])
    return FormulaProblem(formula, bounds)


def narrowed_variants(problem: FormulaProblem,
                      count: int) -> list[FormulaProblem]:
    """``count`` variants, each dropping one more edge tuple (cumulative)."""
    universe = problem.bounds.universe
    atoms = list(universe.atoms)
    edge = next(rel for rel in problem.bounds.relations()
                if rel.name == "edge")
    all_pairs = sorted(problem.bounds.upper(edge))
    variants = []
    for k in range(1, count + 1):
        # Drop k distinct self-loops: every atom keeps >= NUM_ATOMS - 1
        # outgoing edges, so each variant stays SAT.
        dropped = {(atoms[i], atoms[i]) for i in range(k)}
        bounds = Bounds(universe)
        for rel in problem.bounds.relations():
            if rel.name == "edge":
                upper = universe.tuple_set(
                    2, [p for p in all_pairs if p not in dropped])
            else:
                upper = problem.bounds.upper(rel)
            bounds.bound(rel, problem.bounds.lower(rel), upper)
        variants.append(FormulaProblem(problem.formula, bounds))
    return variants


def test_cold_solve(bench, report):
    """Full translate+solve of one variant: the pre-delta re-check cost."""
    variant = narrowed_variants(delta_workload(), 1)[0]
    result = bench(api_solve, variant, symmetry=0)
    assert result.satisfiable
    bench.meta(verdict=result.verdict.value,
               clauses=result.stats.num_clauses)
    report.append(
        f"delta cold solve: {bench._row['seconds']:.4f}s "
        f"({result.stats.num_clauses} clauses)"
    )


def test_warm_delta_resolves(bench, report):
    """A stream of narrowed-bounds re-checks through one warm anchor."""
    anchor = delta_workload()
    variants = narrowed_variants(anchor, WARM_RESOLVES)
    session = DeltaSession(anchor, symmetry=0)

    def run():
        paths = []
        for variant in variants:
            result = session.solve(variant)
            assert result.satisfiable
            paths.append(result.detail["delta"]["path"])
        return paths

    paths = bench(run)
    assert paths == ["reused"] * WARM_RESOLVES, paths
    per_resolve = bench._row["seconds"] / WARM_RESOLVES
    bench.meta(resolves=WARM_RESOLVES,
               seconds_per_resolve=round(per_resolve, 6))
    report.append(
        f"delta warm re-solves: {WARM_RESOLVES} in "
        f"{bench._row['seconds']:.4f}s ({per_resolve * 1000:.2f} ms each)"
    )


def test_fallback_full_resolve(bench, report):
    """A formula edit: the delta path must pay a fresh anchor solve."""
    anchor = delta_workload()
    # Relations are bound by object identity, so reuse the anchor's "s".
    s = next(rel for rel in anchor.bounds.relations() if rel.name == "s")
    changed = FormulaProblem(
        ast.And([anchor.formula, ast.Some(s)]), anchor.bounds)

    def run():
        session = DeltaSession(anchor, solve_anchor=False, symmetry=0)
        return session.solve(changed)

    result = bench(run)
    assert result.satisfiable
    provenance = result.detail["delta"]
    assert provenance["path"] == "fallback"
    assert provenance["reason"] == "formula_changed"
    bench.meta(path=provenance["path"], reason=provenance["reason"])
    report.append(
        f"delta fallback (formula edit): {bench._row['seconds']:.4f}s"
    )


def test_warm_faster_than_cold(report):
    """CI regression gate: a warm re-verify must beat a cold solve of the
    same variant (best-of-3 each)."""
    anchor = delta_workload()
    variant = narrowed_variants(anchor, 1)[0]
    session = DeltaSession(anchor, symmetry=0)
    assert session.solve(variant).detail["delta"]["path"] == "reused"

    def best_of(fn, repeats=3):
        times = []
        for _ in range(repeats):
            started = time.perf_counter()
            fn()
            times.append(time.perf_counter() - started)
        return min(times)

    warm = best_of(lambda: session.solve(variant))
    cold = best_of(lambda: api_solve(variant, symmetry=0))
    report.append(
        f"delta gate: warm {warm * 1000:.2f}ms vs cold {cold * 1000:.2f}ms "
        f"({cold / max(warm, 1e-9):.1f}x)"
    )
    assert warm < cold, (
        f"warm delta re-verify regressed above a cold solve: "
        f"{warm:.4f}s >= {cold:.4f}s"
    )
