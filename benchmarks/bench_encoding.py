"""Benchmark: Section IV "Abstractions Efficiency" — naive vs optimized.

Paper (at scope 3 pnodes, 2 vnodes): the naive model (ternary relations +
Alloy Int) generated ~259K SAT clauses; replacing ternary relations with
binary ones through ``bidTriple`` and Int with the custom ``value``
signature reduced it to ~190K, and the consensus check from ~a day to
under two hours.

We regenerate the comparison with our clean-room translator.  Absolute
counts differ from Alloy 4's (different translator, and our dynamic model
is leaner), but the paper's shape must hold: the optimized encoding is
strictly smaller and faster at every scope, and the gap grows with scope.
"""

import pytest

from repro.analysis import render_table
from repro.model import build_dynamic, compare_encodings
from repro.model.static_naive import build_naive_static
from repro.model.static_optim import build_optim_static
from repro.api import FormulaProblem
from repro.api import solve as api_solve
from repro.kodkod.translate import Translator
from repro.sat.solver import Solver
from repro.sat.types import Status

SCOPES = [(2, 2), (3, 2), (3, 3)]


def _compile(encoding_kind, pnodes, vnodes):
    if encoding_kind == "naive":
        model = build_naive_static(max_int=15)
    else:
        model = build_optim_static(max_value=3)
    _, bounds, facts = model.compile(pnodes, vnodes)
    return bounds, facts


@pytest.mark.parametrize("encoding_kind", ["naive", "optim"])
def test_end_to_end_translate_solve(bench, report, encoding_kind):
    """The headline perf-trajectory row: translate+solve end to end at the
    largest seed scope (3 pnodes, 3 vnodes), compared in
    ``BENCH_encoding.json`` against the pinned pre-refactor baseline."""
    bounds, facts = _compile(encoding_kind, 3, 3)

    def run():
        translation = Translator(bounds, symmetry=20).translate(facts)
        solver = Solver()
        solver.add_cnf(translation.cnf)
        return translation, solver, solver.solve()

    translation, solver, status = bench(run)
    assert status is Status.SAT
    stats = translation.stats
    bench.meta(
        scope="3p3v",
        clauses=stats.num_clauses,
        cnf_vars=stats.num_cnf_vars,
        gates=stats.num_gates,
        gates_raw=stats.num_gates_raw,
        clauses_saved_by_polarity=stats.num_clauses_saved_by_polarity,
        propagations=solver.stats["propagations"],
    )
    report.append(render_table(
        ["encoding", "clauses", "gates (raw -> built)", "saved by polarity"],
        [[encoding_kind, stats.num_clauses,
          f"{stats.num_gates_raw} -> {stats.num_gates}",
          stats.num_clauses_saved_by_polarity]],
        title=f"end-to-end translate+solve at (3,3), {encoding_kind} model",
    ))


def test_polarity_aware_encoding_shrinks_check_problems(bench, report):
    """A ``check`` compiles to one root-negated assertion — exactly the
    single-polarity shape Plaisted-Greenbaum exploits.  The polarity-aware
    encoding must emit strictly fewer clauses than bipolar Tseitin on the
    same consensus check."""
    model = build_dynamic(num_pnodes=2, num_vnodes=2, max_value=3)

    def run():
        return model.translate_check()

    pg = bench(run)
    from repro.kodkod import ast

    goal = ast.And([model.facts, ast.Not(model.consensus_assertion)])
    tseitin = Translator(pg.bounds, cnf_encoding="tseitin").translate(goal)
    assert pg.stats.num_clauses < tseitin.stats.num_clauses
    assert pg.stats.num_clauses_saved_by_polarity > 0
    ratio = pg.stats.num_clauses / tseitin.stats.num_clauses
    bench.meta(
        pg_clauses=pg.stats.num_clauses,
        tseitin_clauses=tseitin.stats.num_clauses,
        clause_ratio=round(ratio, 3),
        clauses_saved_by_polarity=pg.stats.num_clauses_saved_by_polarity,
    )
    report.append(render_table(
        ["pg clauses", "tseitin clauses", "ratio"],
        [[pg.stats.num_clauses, tseitin.stats.num_clauses, f"{ratio:.2f}"]],
        title="polarity-aware vs bipolar clause count on check_consensus (2,2)",
    ))


@pytest.mark.parametrize("pnodes,vnodes", SCOPES)
def test_encoding_comparison(bench, report, pnodes, vnodes):
    comparison = bench(compare_encodings, pnodes, vnodes)
    assert comparison.optim_clauses < comparison.naive_clauses
    assert comparison.optim_vars < comparison.naive_vars
    report.append(render_table(
        ["scope", "naive clauses", "optim clauses", "ratio",
         "naive vars", "optim vars"],
        [[f"{pnodes}p/{vnodes}v", comparison.naive_clauses,
          comparison.optim_clauses, f"{comparison.clause_ratio:.2f}",
          comparison.naive_vars, comparison.optim_vars]],
        title=f"Section IV encoding comparison at scope ({pnodes},{vnodes}) "
              "(paper at (3,2): 259K -> 190K, ratio 0.73)",
    ))


def test_gap_grows_with_scope():
    small = compare_encodings(2, 2)
    large = compare_encodings(3, 3)
    gap_small = small.naive_clauses - small.optim_clauses
    gap_large = large.naive_clauses - large.optim_clauses
    assert gap_large > gap_small


@pytest.mark.parametrize("encoding", ["naive", "optim"])
def test_solve_time_per_encoding(bench, report, encoding):
    """Paper: the optimized model's checks ran ~12x faster.  We measure
    end-to-end (translate + solve) consistency finding per encoding."""
    def run():
        if encoding == "naive":
            model = build_naive_static(max_int=15)
            _, bounds, facts = model.compile(3, 2)
        else:
            model = build_optim_static(max_value=3)
            _, bounds, facts = model.compile(3, 2)
        return api_solve(FormulaProblem(facts, bounds))

    solution = bench(run)
    assert solution.satisfiable
    report.append(render_table(
        ["encoding", "conflicts", "propagations", "learned", "db reductions"],
        [[encoding, solution.solver_stats.get("conflicts", 0),
          solution.solver_stats.get("propagations", 0),
          solution.solver_stats.get("learned", 0),
          solution.solver_stats.get("db_reductions", 0)]],
        title=f"solver search statistics ({encoding} encoding at (3,2))",
    ))


def test_enumeration_with_symmetry_breaking(bench, report):
    """Symmetry breaking on a scenario with interchangeable agents: every
    item goes to exactly one of four indistinguishable agents, so models
    that only rename agents are isomorphic.  Lex-leader predicates must
    strictly reduce the enumerated count without losing satisfiability."""
    from repro.kodkod import Bounds, Universe, ast, forall, variable
    from repro.kodkod.engine import Session

    agents = [f"p{i}" for i in range(4)]
    items = [f"v{i}" for i in range(3)]
    universe = Universe(agents + items)
    item_sig = ast.Relation("item", 1)
    alloc = ast.Relation("alloc", 2)
    bounds = Bounds(universe)
    bounds.bound_exactly(item_sig, universe.tuple_set(1, [(v,) for v in items]))
    bounds.bound(
        alloc,
        universe.empty(2),
        universe.tuple_set(2, [(v, p) for v in items for p in agents]),
    )
    x = variable("x")
    every_item_assigned = forall(x, item_sig, x.join(alloc).one())

    def enumerate_plain():
        return sum(
            1 for _ in Session(every_item_assigned, bounds).iter_solutions()
        )

    plain = bench(enumerate_plain)
    broken_session = Session(every_item_assigned, bounds, symmetry=20)
    broken = sum(1 for _ in broken_session.iter_solutions())
    assert plain == len(agents) ** len(items)  # 4 choices per item
    assert 0 < broken < plain
    report.append(render_table(
        ["models (plain)", "models (symmetry)", "ratio"],
        [[plain, broken, f"{broken / plain:.2f}"]],
        title="enumeration with 4 interchangeable agents, 3 items",
    ))


def test_incremental_enumeration_clause_db(bench, report):
    """Enumerate optimized-model instances through one incremental Session
    (blocking clauses on a single live solver) with a deliberately small
    learned-clause budget: the clause database must be reduced along the
    way instead of growing without bound."""
    from repro.kodkod.engine import Session
    from repro.sat.solver import Solver

    model = build_optim_static(max_value=3)
    _, bounds, facts = model.compile(2, 2)

    def enumerate_capped():
        session = Session(
            facts, bounds, solver=Solver(max_learned=150, reduce_growth=1.1)
        )
        count = sum(1 for _ in session.iter_solutions(limit=300))
        return count, session.clause_db_stats()

    count, db = bench(enumerate_capped)
    assert count == 300
    assert db["db_reductions"] > 0
    assert db["learned_deleted"] > 0
    report.append(render_table(
        ["models", "learned total", "learned kept", "deleted",
         "db reductions", "glue", "avg lbd"],
        [[count, int(db["learned_total"]), int(db["learned_clauses"]),
          int(db["learned_deleted"]), int(db["db_reductions"]),
          int(db["glue_clauses"]), f"{db['avg_lbd']:.1f}"]],
        title="incremental enumeration at (2,2) with a 150-clause DB budget",
    ))
