"""Benchmark: Section IV "Abstractions Efficiency" — naive vs optimized.

Paper (at scope 3 pnodes, 2 vnodes): the naive model (ternary relations +
Alloy Int) generated ~259K SAT clauses; replacing ternary relations with
binary ones through ``bidTriple`` and Int with the custom ``value``
signature reduced it to ~190K, and the consensus check from ~a day to
under two hours.

We regenerate the comparison with our clean-room translator.  Absolute
counts differ from Alloy 4's (different translator, and our dynamic model
is leaner), but the paper's shape must hold: the optimized encoding is
strictly smaller and faster at every scope, and the gap grows with scope.
"""

import pytest

from repro.analysis import render_table
from repro.model import compare_encodings
from repro.model.static_naive import build_naive_static
from repro.model.static_optim import build_optim_static
from repro.kodkod.engine import solve

SCOPES = [(2, 2), (3, 2), (3, 3)]


@pytest.mark.parametrize("pnodes,vnodes", SCOPES)
def test_encoding_comparison(benchmark, report, pnodes, vnodes):
    comparison = benchmark(compare_encodings, pnodes, vnodes)
    assert comparison.optim_clauses < comparison.naive_clauses
    assert comparison.optim_vars < comparison.naive_vars
    report.append(render_table(
        ["scope", "naive clauses", "optim clauses", "ratio",
         "naive vars", "optim vars"],
        [[f"{pnodes}p/{vnodes}v", comparison.naive_clauses,
          comparison.optim_clauses, f"{comparison.clause_ratio:.2f}",
          comparison.naive_vars, comparison.optim_vars]],
        title=f"Section IV encoding comparison at scope ({pnodes},{vnodes}) "
              "(paper at (3,2): 259K -> 190K, ratio 0.73)",
    ))


def test_gap_grows_with_scope():
    small = compare_encodings(2, 2)
    large = compare_encodings(3, 3)
    gap_small = small.naive_clauses - small.optim_clauses
    gap_large = large.naive_clauses - large.optim_clauses
    assert gap_large > gap_small


@pytest.mark.parametrize("encoding", ["naive", "optim"])
def test_solve_time_per_encoding(benchmark, encoding):
    """Paper: the optimized model's checks ran ~12x faster.  We measure
    end-to-end (translate + solve) consistency finding per encoding."""
    def run():
        if encoding == "naive":
            model = build_naive_static(max_int=15)
            _, bounds, facts = model.compile(3, 2)
        else:
            model = build_optim_static(max_value=3)
            _, bounds, facts = model.compile(3, 2)
        return solve(facts, bounds)

    solution = benchmark(run)
    assert solution.satisfiable
