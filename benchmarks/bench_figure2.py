"""Benchmark: Figure 2 — release-outbid x sub-modularity dynamics.

Paper: with sub-modular utilities the two agents agree after the first
exchange; with a non-sub-modular utility and the release-outbid policy the
protocol oscillates (iteration 3 identical to iteration 1).  We measure
all four cells and assert the convergence/oscillation shape.
"""

import pytest

from repro.analysis import render_table
from repro.mca import detect_cycle, figure2_engine


@pytest.mark.parametrize("submodular,release,expect_converge", [
    (True, True, True),
    (True, False, True),
    (False, False, True),
    (False, True, False),  # the paper's instability cell
])
def test_figure2_cell(bench, submodular, release, expect_converge):
    def run():
        return figure2_engine(submodular=submodular,
                              release_outbid=release).run(50)

    result = bench(run)
    assert result.converged == expect_converge
    if not expect_converge:
        assert result.oscillated
        assert result.cycle_length is not None and result.cycle_length >= 2


def test_figure2_oscillation_is_periodic(bench):
    """The failing cell repeats exactly: a Figure-2 style cycle where a
    later iteration reproduces an earlier one."""
    def run():
        return figure2_engine(submodular=False, release_outbid=True).run(50)

    result = bench(run)
    cycle = detect_cycle(result.trace)
    assert cycle is not None
    start, length = cycle
    assert length >= 2
    # The trace reproduces the repetition the caption describes: the state
    # at round start+length equals the state at round start.
    first = result.trace[start]
    again = result.trace[start + length]
    assert first.bids == again.bids
    assert first.bundles == again.bundles


def test_figure2_submodular_agreement_table(bench, report):
    """Render the sub-modular row: both agents keep their preferred item."""
    def run():
        engine = figure2_engine(submodular=True, release_outbid=True)
        return engine, engine.run()

    engine, result = bench(run)
    assert result.allocation == {"VN1": 0, "VN2": 1}
    rows = [
        [record.round_index,
         record.bids[0], record.bundles[0],
         record.bids[1], record.bundles[1]]
        for record in result.trace
    ]
    report.append(render_table(
        ["iter", "b1", "m1", "b2", "m2"], rows,
        title="Figure 2 (sub-modular row): convergence trace",
    ))
