"""Benchmark: Result 2 — the rebidding attack.

Paper: "we removed from our model the necessary condition discussed in
Remark 1, allowing physical nodes to re-bid after they were outbid ... we
found instances in which consensus (a conflict-free assignment) is not
reached.  ... the MCA protocol is not resilient to rebidding attacks."

Regenerated along both axes: SAT-based counterexample search, and the
executable protocol under a flip-flop attacker.
"""

from repro.mca import (
    AgentNetwork,
    AgentPolicy,
    GeometricUtility,
    RebidStrategy,
    SynchronousEngine,
)
from repro.model import build_dynamic


def test_sat_check_finds_attack_counterexample(bench):
    def run():
        model = build_dynamic(num_pnodes=2, num_vnodes=2, max_value=4,
                              rebid_attackers={1})
        return model.check_consensus()

    solution = bench(run)
    assert solution.satisfiable  # counterexample: consensus not reached
    assert solution.instance is not None


def test_sat_check_honest_baseline_holds(bench):
    """Sanity check for the same scope without the attacker."""
    def run():
        model = build_dynamic(num_pnodes=2, num_vnodes=2, max_value=4)
        return model.check_consensus()

    solution = bench(run)
    assert not solution.satisfiable


def _attack_engine(attacker_strategy):
    items = ["A", "B"]
    policies = {
        0: AgentPolicy(utility=GeometricUtility({"A": 10, "B": 8}, 0.5),
                       target=2),
        1: AgentPolicy(utility=GeometricUtility({"A": 1, "B": 1}, 0.5),
                       target=2, rebid=attacker_strategy),
    }
    return SynchronousEngine(AgentNetwork.complete(2), items, policies)


def test_flipflop_attack_livelocks_protocol(bench):
    def run():
        return _attack_engine(RebidStrategy.FLIPFLOP).run(200)

    result = bench(run)
    assert result.oscillated  # DoS: the auction never settles


def test_escalate_attack_hijacks_allocation(bench):
    def run():
        return _attack_engine(RebidStrategy.ESCALATE).run(200)

    result = bench(run)
    assert result.converged
    # The attacker (utility 1) stole both items by lying.
    assert set(result.allocation.values()) == {1}


def test_honest_baseline_converges_fairly(bench):
    def run():
        return _attack_engine(RebidStrategy.HONEST).run(200)

    result = bench(run)
    assert result.converged
    assert set(result.allocation.values()) == {0}  # true utilities win
