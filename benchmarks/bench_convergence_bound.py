"""Benchmark: the D*|J| convergence bound (Section V).

Paper: "the number of messages required to reach consensus is upper
bounded by D * |V_H| ... because the maximum bid for each item, only has
to traverse the network of agents once."

We sweep topologies (varying diameter D) and item counts and assert every
honest run converges within the bound (in synchronous rounds).
"""

import pytest

from repro.analysis import render_table
from repro.mca import (
    AgentNetwork,
    AgentPolicy,
    GeometricUtility,
    SynchronousEngine,
    message_bound,
)

TOPOLOGIES = [
    ("complete-4", lambda: AgentNetwork.complete(4)),
    ("line-5", lambda: AgentNetwork.line(5)),
    ("ring-6", lambda: AgentNetwork.ring(6)),
    ("star-5", lambda: AgentNetwork.star(5)),
    ("random-6", lambda: AgentNetwork.random_connected(6, seed=4)),
]


def _policies(network, items):
    return {
        a: AgentPolicy(
            utility=GeometricUtility(
                {j: 10 + 7 * a + 3 * k for k, j in enumerate(items)},
                growth=0.5,
            ),
            target=2,
        )
        for a in network.agents()
    }


@pytest.mark.parametrize("name,factory", TOPOLOGIES, ids=[t[0] for t in TOPOLOGIES])
@pytest.mark.parametrize("num_items", [2, 4])
def test_convergence_within_bound(bench, report, name, factory, num_items):
    network = factory()
    items = [f"item{i}" for i in range(num_items)]
    bound = message_bound(network, items)

    def run():
        return SynchronousEngine(network, items,
                                 _policies(network, items)).run(bound + 5)

    result = bench(run)
    assert result.converged
    # +1 round: the engine needs one quiescent round to detect convergence.
    assert result.rounds <= bound + 1
    report.append(render_table(
        ["topology", "D", "|J|", "bound D*|J|", "rounds used"],
        [[name, network.diameter(), num_items, bound, result.rounds]],
        title="Convergence bound check",
    ))


def test_bound_is_tight_on_a_line(bench):
    """On a line the max bid must traverse the whole network: rounds scale
    with the diameter."""
    def run():
        outcomes = []
        for n in (3, 5, 7):
            network = AgentNetwork.line(n)
            items = ["A"]
            result = SynchronousEngine(
                network, items, _policies(network, items)
            ).run(50)
            outcomes.append((n, result))
        return outcomes

    outcomes = bench(run)
    rounds = []
    for n, result in outcomes:
        assert result.converged
        rounds.append(result.rounds)
    assert rounds == sorted(rounds)  # monotone in the diameter
    assert rounds[-1] > rounds[0]
