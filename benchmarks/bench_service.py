"""Benchmark: the verification service's submit-to-result latency.

One live :class:`~repro.service.VerificationService` (real HTTP over a
loopback socket, real journal fsyncs, real worker pool) serves the whole
module.  The cold workload is the campaign's ``dispatch`` protocol
family — tens of milliseconds of real exploration per seed — so the
cold rows measure a realistic solve behind the full service stack
rather than socket overhead.

Rows land in ``BENCH_service.json``:

* ``test_submit_to_result_cold`` — a fresh problem through the whole
  stack: POST + journal fsync + dispatch + process-pool solve + durable
  cache write + poll;
* ``test_cache_hit_fast_path`` — a job whose ``cache_key`` is already in
  the shared cache: same POST/journal/dispatch path, zero solving.

``test_cache_hit_at_least_10x_cold`` is the CI regression gate: the
cache-hit fast path must stay at least an order of magnitude faster
than the cold solve it replaces.

``test_two_satellites_beat_one_local_worker`` measures the remote
execution fabric: the same 16-problem workload drained by a
single-worker hub and by a coordinator-only hub feeding two satellite
processes.  The row records the cluster drain; its metadata carries the
single-worker time and the speedup, and the 1.5x floor is the CI
scaling gate.
"""

import itertools
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign.specs import ScenarioSpec
from repro.service import ServiceConfig, VerificationService
from repro.service.client import ServiceClient

POLL_INTERVAL = 0.002
"""Tight polling so the rows measure the service, not the poll loop."""

_COLD_SEEDS = itertools.count()
"""One fresh seed per timed call: resubmitting a finished job would be
an idempotent no-op, so every cold measurement needs a new problem."""


def _cold_body():
    spec = ScenarioSpec.make("dispatch", next(_COLD_SEEDS))
    return {"spec": spec.as_dict(), "label": "bench-cold"}


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    root = tmp_path_factory.mktemp("service-bench")
    instance = VerificationService(ServiceConfig(
        queue_dir=root / "queue", cache_dir=root / "cache",
        workers=2)).start()
    yield instance
    instance.stop()


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service.url)


def _submit_and_wait(client, body):
    job = client.submit(body)
    return client.wait(job["id"], timeout=120,
                       poll_interval=POLL_INTERVAL)


def test_submit_to_result_cold(bench, report, client):
    """A fresh problem through POST + journal + pool solve + poll."""

    def run():
        final = _submit_and_wait(client, _cold_body())
        assert final["state"] == "done"
        return final

    final = bench(run)
    bench.meta(verdict=final["result"]["verdict"],
               solves=client.metrics()["solves"])
    report.append(
        f"service cold submit-to-result: {bench._row['seconds']:.4f}s"
    )


def test_cache_hit_fast_path(bench, report, client):
    """A warm job: full queue/dispatch path, result served from cache.

    Each call needs a *distinct* job id over the same cache entry
    (resubmitting an identical finished job short-circuits at the HTTP
    layer), so the calls chain ``delta_of`` anchors: every link is a new
    content address with the same ``cache_key``, and the dispatcher
    completes it from the cache before the delta path is ever consulted.
    """
    body = {"spec": ScenarioSpec.make("dispatch", 9000).as_dict(),
            "label": "bench-warm"}
    state = {"last": _submit_and_wait(client, body)["id"]}
    hits_before = client.metrics()["cache_hits"]

    def run():
        final = _submit_and_wait(client,
                                 {**body, "delta_of": state["last"]})
        assert final["state"] == "done"
        state["last"] = final["id"]
        return final

    bench(run)
    hits = client.metrics()["cache_hits"] - hits_before
    assert hits >= 1, "the warm path never hit the cache"
    bench.meta(cache_hits=hits)
    report.append(
        f"service cache-hit fast path: {bench._row['seconds']:.4f}s"
    )


def test_cache_hit_at_least_10x_cold(report, client):
    """CI gate: the cache-hit path must be >= 10x faster than cold."""

    def best_of(fn, repeats=3):
        times = []
        for _ in range(repeats):
            started = time.perf_counter()
            fn()
            times.append(time.perf_counter() - started)
        return min(times)

    def cold():
        assert _submit_and_wait(client, _cold_body())["state"] == "done"

    warm_body = {"spec": ScenarioSpec.make("dispatch", 9001).as_dict(),
                 "label": "bench-gate"}
    state = {"last": _submit_and_wait(client, warm_body)["id"]}

    def warm():
        final = _submit_and_wait(
            client, {**warm_body, "delta_of": state["last"]})
        assert final["state"] == "done"
        state["last"] = final["id"]

    cold_seconds = best_of(cold)
    warm_seconds = best_of(warm)
    ratio = cold_seconds / max(warm_seconds, 1e-9)
    report.append(
        f"service gate: cold {cold_seconds * 1000:.2f}ms vs cache-hit "
        f"{warm_seconds * 1000:.2f}ms ({ratio:.1f}x)"
    )
    assert warm_seconds * 10 <= cold_seconds, (
        f"cache-hit fast path regressed below 10x cold: "
        f"{warm_seconds:.4f}s vs {cold_seconds:.4f}s ({ratio:.1f}x)"
    )


def _start_satellite(url: str, worker_id: str) -> subprocess.Popen:
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--satellite", url,
         "--worker-id", worker_id, "--claim-limit", "2",
         "--lease-seconds", "30", "--poll-interval", "0.02"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, cwd=str(repo_root),
    )
    line = process.stdout.readline().strip()
    assert line.startswith(f"satellite {worker_id} polling"), line
    return process


def test_two_satellites_beat_one_local_worker(bench, report,
                                              tmp_path_factory):
    """CI scaling gate: two satellites drain >= 1.5x faster than one
    local worker on the identical cold workload (separate queue and
    cache directories, same seeds — no run sees the other's results)."""
    root = tmp_path_factory.mktemp("satellite-bench")
    seeds = list(range(8100, 8116))  # 16 cold dispatch problems
    warmup = [8090, 8091, 8092, 8093]

    def drain(client, seed_list):
        jobs = [client.submit(
            {"spec": ScenarioSpec.make("dispatch", seed).as_dict(),
             "label": "bench-sat"})["id"] for seed in seed_list]
        for job_id in jobs:
            final = client.wait(job_id, timeout=300,
                                poll_interval=POLL_INTERVAL)
            assert final["state"] == "done"

    solo = VerificationService(ServiceConfig(
        queue_dir=root / "solo-q", cache_dir=root / "solo-c",
        workers=1)).start()
    try:
        client = ServiceClient(solo.url)
        drain(client, warmup)  # spin the process pool up untimed
        started = time.perf_counter()
        drain(client, seeds)
        single_worker_seconds = time.perf_counter() - started
    finally:
        solo.stop()

    cluster = VerificationService(ServiceConfig(
        queue_dir=root / "hub-q", cache_dir=root / "hub-c",
        workers=1, local_dispatch=False)).start()
    satellites = [_start_satellite(cluster.url, f"bench-sat-{i}")
                  for i in range(2)]
    try:
        client = ServiceClient(cluster.url)
        # Four warmup jobs, claim limit two: both satellites claim work
        # and pay their lazy solver imports before the clock starts.
        drain(client, warmup)
        started = time.perf_counter()
        drain(client, seeds)
        cluster_seconds = time.perf_counter() - started
        results = client.metrics()["satellite_results"]
    finally:
        for satellite in satellites:
            satellite.kill()
            satellite.wait(timeout=30)
        cluster.stop()

    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # macOS
        cores = os.cpu_count() or 1
    bench.record(cluster_seconds)
    speedup = single_worker_seconds / max(cluster_seconds, 1e-9)
    bench.meta(single_worker_seconds=round(single_worker_seconds, 6),
               speedup_vs_single=round(speedup, 2),
               satellites=2, jobs=len(seeds),
               satellite_results=results, cores=cores)
    report.append(
        f"service scaling: 1 local worker {single_worker_seconds:.3f}s "
        f"vs 2 satellites {cluster_seconds:.3f}s ({speedup:.2f}x, "
        f"{cores} core(s))"
    )
    if cores < 2:
        # The satellites solved the batch (results prove the fabric
        # works) but had no second core to scale onto; the row is
        # recorded either way, only the floor is core-gated.
        pytest.skip(f"scaling gate needs >= 2 cores, have {cores} "
                    f"(measured {speedup:.2f}x)")
    assert speedup >= 1.5, (
        f"two satellites must beat one local worker by >= 1.5x, got "
        f"{speedup:.2f}x ({cluster_seconds:.3f}s vs "
        f"{single_worker_seconds:.3f}s)"
    )
