"""Benchmark: the verification service's submit-to-result latency.

One live :class:`~repro.service.VerificationService` (real HTTP over a
loopback socket, real journal fsyncs, real worker pool) serves the whole
module.  The cold workload is the campaign's ``dispatch`` protocol
family — tens of milliseconds of real exploration per seed — so the
cold rows measure a realistic solve behind the full service stack
rather than socket overhead.

Rows land in ``BENCH_service.json``:

* ``test_submit_to_result_cold`` — a fresh problem through the whole
  stack: POST + journal fsync + dispatch + process-pool solve + durable
  cache write + poll;
* ``test_cache_hit_fast_path`` — a job whose ``cache_key`` is already in
  the shared cache: same POST/journal/dispatch path, zero solving.

``test_cache_hit_at_least_10x_cold`` is the CI regression gate: the
cache-hit fast path must stay at least an order of magnitude faster
than the cold solve it replaces.
"""

import itertools
import time

import pytest

from repro.campaign.specs import ScenarioSpec
from repro.service import ServiceConfig, VerificationService
from repro.service.client import ServiceClient

POLL_INTERVAL = 0.002
"""Tight polling so the rows measure the service, not the poll loop."""

_COLD_SEEDS = itertools.count()
"""One fresh seed per timed call: resubmitting a finished job would be
an idempotent no-op, so every cold measurement needs a new problem."""


def _cold_body():
    spec = ScenarioSpec.make("dispatch", next(_COLD_SEEDS))
    return {"spec": spec.as_dict(), "label": "bench-cold"}


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    root = tmp_path_factory.mktemp("service-bench")
    instance = VerificationService(ServiceConfig(
        queue_dir=root / "queue", cache_dir=root / "cache",
        workers=2)).start()
    yield instance
    instance.stop()


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service.url)


def _submit_and_wait(client, body):
    job = client.submit(body)
    return client.wait(job["id"], timeout=120,
                       poll_interval=POLL_INTERVAL)


def test_submit_to_result_cold(bench, report, client):
    """A fresh problem through POST + journal + pool solve + poll."""

    def run():
        final = _submit_and_wait(client, _cold_body())
        assert final["state"] == "done"
        return final

    final = bench(run)
    bench.meta(verdict=final["result"]["verdict"],
               solves=client.metrics()["solves"])
    report.append(
        f"service cold submit-to-result: {bench._row['seconds']:.4f}s"
    )


def test_cache_hit_fast_path(bench, report, client):
    """A warm job: full queue/dispatch path, result served from cache.

    Each call needs a *distinct* job id over the same cache entry
    (resubmitting an identical finished job short-circuits at the HTTP
    layer), so the calls chain ``delta_of`` anchors: every link is a new
    content address with the same ``cache_key``, and the dispatcher
    completes it from the cache before the delta path is ever consulted.
    """
    body = {"spec": ScenarioSpec.make("dispatch", 9000).as_dict(),
            "label": "bench-warm"}
    state = {"last": _submit_and_wait(client, body)["id"]}
    hits_before = client.metrics()["cache_hits"]

    def run():
        final = _submit_and_wait(client,
                                 {**body, "delta_of": state["last"]})
        assert final["state"] == "done"
        state["last"] = final["id"]
        return final

    bench(run)
    hits = client.metrics()["cache_hits"] - hits_before
    assert hits >= 1, "the warm path never hit the cache"
    bench.meta(cache_hits=hits)
    report.append(
        f"service cache-hit fast path: {bench._row['seconds']:.4f}s"
    )


def test_cache_hit_at_least_10x_cold(report, client):
    """CI gate: the cache-hit path must be >= 10x faster than cold."""

    def best_of(fn, repeats=3):
        times = []
        for _ in range(repeats):
            started = time.perf_counter()
            fn()
            times.append(time.perf_counter() - started)
        return min(times)

    def cold():
        assert _submit_and_wait(client, _cold_body())["state"] == "done"

    warm_body = {"spec": ScenarioSpec.make("dispatch", 9001).as_dict(),
                 "label": "bench-gate"}
    state = {"last": _submit_and_wait(client, warm_body)["id"]}

    def warm():
        final = _submit_and_wait(
            client, {**warm_body, "delta_of": state["last"]})
        assert final["state"] == "done"
        state["last"] = final["id"]

    cold_seconds = best_of(cold)
    warm_seconds = best_of(warm)
    ratio = cold_seconds / max(warm_seconds, 1e-9)
    report.append(
        f"service gate: cold {cold_seconds * 1000:.2f}ms vs cache-hit "
        f"{warm_seconds * 1000:.2f}ms ({ratio:.1f}x)"
    )
    assert warm_seconds * 10 <= cold_seconds, (
        f"cache-hit fast path regressed below 10x cold: "
        f"{warm_seconds:.4f}s vs {cold_seconds:.4f}s ({ratio:.1f}x)"
    )
