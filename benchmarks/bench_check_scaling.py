"""Benchmark: 'push-button' consensus check scaling across scopes.

Paper (Section IV footnote): the consensus assertion at scope (3 pnodes,
2 vnodes) took ~2 hours on the optimized model (1.4 GHz i3, Alloy 4 +
MiniSat).  Absolute times are incomparable; we report how our translation
and check times scale with scope, which is the decision-relevant curve for
anyone extending the model.
"""

import pytest

from repro.analysis import render_table
from repro.model import build_dynamic

SCOPES = [
    ("2p/1v", dict(num_pnodes=2, num_vnodes=1, max_value=3)),
    ("2p/2v", dict(num_pnodes=2, num_vnodes=2, max_value=4)),
    ("3p/1v", dict(num_pnodes=3, num_vnodes=1, max_value=3,
                   edges=[(0, 1), (1, 2)])),
    ("3p/2v", dict(num_pnodes=3, num_vnodes=2, max_value=3,
                   edges=[(0, 1), (1, 2)])),
]


@pytest.mark.parametrize("label,params", SCOPES, ids=[s[0] for s in SCOPES])
def test_consensus_check_at_scope(benchmark, report, label, params):
    def run():
        model = build_dynamic(**params)
        return model.check_consensus()

    solution = benchmark(run)
    assert not solution.satisfiable  # honest consensus holds at all scopes
    report.append(render_table(
        ["scope", "primary vars", "cnf vars", "clauses", "solve (s)"],
        [[label, solution.stats.num_primary_vars, solution.stats.num_cnf_vars,
          solution.stats.num_clauses, f"{solution.solve_seconds:.3f}"]],
        title="check consensus scaling (paper at 3p/2v: <2h on Alloy 4)",
    ))


def test_translation_size_grows_with_scope():
    small = build_dynamic(num_pnodes=2, num_vnodes=1,
                          max_value=3).translate_check()
    large = build_dynamic(num_pnodes=3, num_vnodes=2, max_value=3,
                          edges=[(0, 1), (1, 2)]).translate_check()
    assert large.stats.num_clauses > small.stats.num_clauses
    assert large.stats.num_primary_vars > small.stats.num_primary_vars
