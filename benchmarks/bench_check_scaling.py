"""Benchmark: 'push-button' consensus check scaling across scopes.

Paper (Section IV footnote): the consensus assertion at scope (3 pnodes,
2 vnodes) took ~2 hours on the optimized model (1.4 GHz i3, Alloy 4 +
MiniSat).  Absolute times are incomparable; we report how our translation
and check times scale with scope, which is the decision-relevant curve for
anyone extending the model.
"""

import copy

import pytest

from repro.analysis import render_table
from repro.checking import explore
from repro.mca import AgentNetwork, AgentPolicy, GeometricUtility
from repro.model import build_dynamic

SCOPES = [
    ("2p/1v", dict(num_pnodes=2, num_vnodes=1, max_value=3)),
    ("2p/2v", dict(num_pnodes=2, num_vnodes=2, max_value=4)),
    ("3p/1v", dict(num_pnodes=3, num_vnodes=1, max_value=3,
                   edges=[(0, 1), (1, 2)])),
    ("3p/2v", dict(num_pnodes=3, num_vnodes=2, max_value=3,
                   edges=[(0, 1), (1, 2)])),
]


@pytest.mark.parametrize("label,params", SCOPES, ids=[s[0] for s in SCOPES])
def test_consensus_check_at_scope(bench, report, label, params):
    def run():
        model = build_dynamic(**params)
        return model.check_consensus()

    solution = bench(run)
    assert not solution.satisfiable  # honest consensus holds at all scopes
    report.append(render_table(
        ["scope", "primary vars", "cnf vars", "clauses", "solve (s)",
         "conflicts", "learned", "db reductions"],
        [[label, solution.stats.num_primary_vars, solution.stats.num_cnf_vars,
          solution.stats.num_clauses, f"{solution.seconds:.3f}",
          solution.solver_stats.get("conflicts", 0),
          solution.solver_stats.get("learned", 0),
          solution.solver_stats.get("db_reductions", 0)]],
        title="check consensus scaling (paper at 3p/2v: <2h on Alloy 4)",
    ))


EXPLORER_SCOPES = [
    ("2 agents / 2 items", 2, ["A", "B"]),
    ("3 agents / 2 items", 3, ["A", "B"]),
    ("3 agents / 3 items", 3, ["A", "B", "C"]),
]


@pytest.mark.parametrize("label,agents,items", EXPLORER_SCOPES,
                         ids=[s[0] for s in EXPLORER_SCOPES])
def test_explorer_scaling_without_deepcopy(bench, report, monkeypatch,
                                           label, agents, items):
    """The snapshot/restore explorer never deep-copies on the branch hot
    path: branching over every activation order at every depth runs on one
    engine with O(agents * items) snapshots.  deepcopy is poisoned for the
    whole run to prove it."""
    def poisoned(*_args, **_kwargs):
        raise AssertionError("copy.deepcopy called on the explorer hot path")

    monkeypatch.setattr(copy, "deepcopy", poisoned)
    # One shared policy: all agents interchangeable, maximal memo sharing.
    policy = AgentPolicy(
        utility=GeometricUtility(
            {j: 10 + 2 * k for k, j in enumerate(items)}, growth=0.5
        ),
        target=2,
    )
    policies = {a: policy for a in range(agents)}
    network = AgentNetwork.complete(agents)

    def run():
        return explore(
            network, items, policies, max_rounds=10, max_paths=100_000
        )

    result = bench(run)
    assert result.all_converged
    report.append(render_table(
        ["scope", "paths", "worst rounds", "memo hits", "states memoized"],
        [[label, result.paths_explored, result.max_rounds_to_converge,
          result.memo_hits, result.states_memoized]],
        title="explorer scaling (snapshot/restore, deepcopy poisoned)",
    ))


def test_translation_size_grows_with_scope():
    small = build_dynamic(num_pnodes=2, num_vnodes=1,
                          max_value=3).translate_check()
    large = build_dynamic(num_pnodes=3, num_vnodes=2, max_value=3,
                          edges=[(0, 1), (1, 2)]).translate_check()
    assert large.stats.num_clauses > small.stats.num_clauses
    assert large.stats.num_primary_vars > small.stats.num_primary_vars
