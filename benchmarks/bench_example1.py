"""Benchmark: Figure 1 / Example 1 — two agents, three items, one exchange.

Paper: after the agreement phase both agents hold b = (20, 15, 30),
a = (2, 2, 1) and the protocol has reached consensus.  We assert the exact
final state and measure the end-to-end run.
"""

from repro.mca import consensus_report, example1_engine, example1_expected_allocation


def run_example1():
    engine = example1_engine()
    result = engine.run()
    return engine, result


def test_example1_end_to_end(bench):
    engine, result = bench(run_example1)
    assert result.converged
    # Paper's post-agreement state (0-based agent ids: paper's agent k -> k-1).
    assert result.allocation == example1_expected_allocation()
    reference = engine.agents[0]
    assert reference.beliefs["A"].bid == 20
    assert reference.beliefs["B"].bid == 15
    assert reference.beliefs["C"].bid == 30
    assert consensus_report(engine.agents).consensus


def test_example1_third_agent_learns_via_relay(bench):
    """Paper: 'An additional agent 3, connected to agent 1 but not agent 2,
    would receive the maximum bid so far on each item'."""
    from repro.mca import AgentNetwork, AgentPolicy, SynchronousEngine, TableUtility

    def run_with_relay():
        items = ["A", "B", "C"]
        agent1 = AgentPolicy(
            utility=TableUtility({("A", 0): 10, ("A", 1): 10,
                                  ("C", 0): 30, ("C", 1): 30}),
            target=2,
        )
        agent2 = AgentPolicy(
            utility=TableUtility({("A", 0): 20, ("A", 1): 20,
                                  ("B", 0): 15, ("B", 1): 15}),
            target=2,
        )
        agent3 = AgentPolicy(utility=TableUtility({}), target=0)
        network = AgentNetwork([(0, 1), (0, 2)])  # 2 only reaches 1 via 0
        engine = SynchronousEngine(network, items,
                                   {0: agent1, 1: agent2, 2: agent3})
        return engine, engine.run()

    engine, result = bench(run_with_relay)
    assert result.converged
    relay_view = engine.agents[2]
    assert relay_view.beliefs["A"].bid == 20
    assert relay_view.beliefs["B"].bid == 15
    assert relay_view.beliefs["C"].bid == 30
    assert consensus_report(engine.agents).consensus
