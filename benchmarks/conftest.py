"""Shared fixtures/helpers for the benchmark harness.

Every benchmark prints the rows the paper reports (via ``print``; run with
``pytest benchmarks/ --benchmark-only -s`` to see the tables) and asserts
the paper's qualitative shape.
"""

import pytest


@pytest.fixture(scope="session")
def report():
    """Accumulate and emit report lines at the end of the session."""
    lines: list[str] = []
    yield lines
    if lines:
        print("\n" + "\n".join(lines))
