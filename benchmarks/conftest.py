"""The shared benchmark harness: timing, warmup, and the JSON artifacts.

Every ``bench_*.py`` script measures through the one ``bench`` fixture
defined here (replacing the pytest-benchmark plugin these scripts
previously used ad hoc): call ``bench(fn, *args)`` to get ``fn``'s result
back with the timing recorded, and optionally attach structured metadata
with ``bench.meta(key=value, ...)``.

Timing policy: one untimed warmup call, then repeated timed calls until
either three samples are taken or ~0.6 s of measuring time is spent
(slow subjects get one sample); the *minimum* is recorded, which is the
standard low-noise estimator for deterministic workloads.

At session end the rows are merged into the PR-over-PR perf-trajectory
artifacts, keyed by test id:

* ``BENCH_encoding.json`` — translation-pipeline rows (circuit/CNF sizes,
  polarity savings, translate+solve end-to-end times),
* ``BENCH_solver.json``   — solver-centric rows (consensus checks,
  counterexample searches, search statistics),
* ``BENCH_delta.json``    — delta-verification rows (cold anchor solve,
  warm assumption re-solves, fallback cost),
* ``BENCH_service.json``  — verification-service rows (submit-to-result
  latency through the HTTP + journal + worker-pool stack, cache-hit
  fast path).

Rows whose test id appears in ``BASELINE`` also get ``baseline_seconds``
and ``speedup_vs_baseline`` fields, so the artifact itself documents the
speedup relative to the pinned pre-refactor measurement.  Protocol-engine
rows (figure2, example1, convergence) are timed and printed but not
persisted; ``BENCH_campaign.json`` is produced by ``python -m
repro.campaign``.  Run with ``pytest benchmarks/ -q -s`` to see the
report tables.
"""

import json
import time
from pathlib import Path

import pytest

# Which artifact each bench module's rows land in (None: print-only).
_ARTIFACT_BY_MODULE = {
    "bench_encoding": "encoding",
    "bench_ablation": "encoding",
    "bench_check_scaling": "solver",
    "bench_solver_kernels": "solver",
    "bench_delta": "delta",
    "bench_service": "service",
    "bench_policy_matrix": "solver",
    "bench_rebidding": "solver",
    "bench_example1": None,
    "bench_figure2": None,
    "bench_convergence_bound": None,
    "bench_campaign": None,
}

_ARTIFACT_FILES = {
    "encoding": "BENCH_encoding.json",
    "solver": "BENCH_solver.json",
    "delta": "BENCH_delta.json",
    "service": "BENCH_service.json",
}

# Pre-refactor reference times, measured on this repo at the PR-3 state
# (object-per-gate circuits, bipolar Tseitin, clause-object solver) with
# the same subjects and timing policy.  They pin the perf trajectory: the
# artifact reports each current row's speedup against these.
BASELINE = {
    "encoding": {
        "bench_encoding.py::test_end_to_end_translate_solve[naive]": {
            "seconds": 0.1615, "clauses": 26408,
        },
        "bench_encoding.py::test_end_to_end_translate_solve[optim]": {
            "seconds": 0.0487, "clauses": 6955,
        },
    },
    "solver": {
        # Kernel-bench rows re-measured and re-pinned at the PR-9 state
        # (the PR-6 pin carried the same 0.0437 s for both rows, so the
        # artifact's ratio read as 1.0x).  Each row is pinned to its OWN
        # measured time — speedup_vs_baseline therefore tracks that row's
        # PR-over-PR trajectory, while the vector-vs-pure kernel ratio
        # measured within one run lands in the [vector] rows'
        # `speedup_vs_pure` metadata (0.0493/0.0081 ≈ 6.1x propagation,
        # 0.7561/0.2698 ≈ 2.8x conflict-heavy at pin time).
        # Propagation: 20 warm assumption solves,
        # chain=48/fanout=400/pool=16.
        "bench_solver_kernels.py::test_propagation_throughput[pure]": {
            "seconds": 0.0493, "propagations": 1300,
        },
        "bench_solver_kernels.py::test_propagation_throughput[vector]": {
            "seconds": 0.0081, "propagations": 1300,
        },
        # Conflict-heavy: one cold end-to-end solve of the php6 core with
        # mirror fanout 800 under the -guard assumption (see
        # conflict_cnf); ~830 conflicts of deep _analyze/_minimize work.
        "bench_solver_kernels.py::test_conflict_throughput[pure]": {
            "seconds": 0.7561, "conflicts": 830,
        },
        "bench_solver_kernels.py::test_conflict_throughput[vector]": {
            "seconds": 0.2698, "conflicts": 830,
        },
    },
}

_WARMUP = 1
_MAX_REPEATS = 3
_TIME_BUDGET_SECONDS = 0.6


class _Benchmark:
    """The callable handed to tests as the ``bench`` fixture."""

    def __init__(self, recorder, nodeid: str, artifact: str | None) -> None:
        self._recorder = recorder
        self._name = nodeid
        self._artifact = artifact
        self._row: dict | None = None

    def __call__(self, fn, *args, **kwargs):
        for _ in range(_WARMUP):
            result = fn(*args, **kwargs)
        times = []
        while len(times) < _MAX_REPEATS:
            started = time.perf_counter()
            result = fn(*args, **kwargs)
            times.append(time.perf_counter() - started)
            if sum(times) >= _TIME_BUDGET_SECONDS:
                break
        self._row = {
            "seconds": round(min(times), 6),
            "runs": len(times),
        }
        if self._artifact is not None:
            self._recorder.add(self._artifact, self._name, self._row)
        return result

    def record(self, seconds: float) -> None:
        """Record one manually-timed sample as the row.

        For single-shot subjects the harness cannot call repeatedly —
        multi-process cluster drains, anything whose setup dwarfs the
        repeat budget.  The caller owns warmup and timing.
        """
        self._row = {"seconds": round(seconds, 6), "runs": 1}
        if self._artifact is not None:
            self._recorder.add(self._artifact, self._name, self._row)

    def meta(self, **fields) -> None:
        """Attach structured metadata to the recorded row."""
        if self._row is None:
            raise RuntimeError("bench.meta() called before bench()")
        self._row.setdefault("meta", {}).update(fields)


class _Recorder:
    def __init__(self) -> None:
        self.rows: dict[str, dict[str, dict]] = {
            artifact: {} for artifact in _ARTIFACT_FILES
        }

    def add(self, artifact: str, name: str, row: dict) -> None:
        self.rows[artifact][name] = row

    def flush(self, root: Path) -> None:
        for artifact, filename in _ARTIFACT_FILES.items():
            fresh = self.rows[artifact]
            if not fresh:
                continue
            target = root / filename
            payload = {"benchmark": artifact, "rows": {}}
            if target.exists():
                try:
                    previous = json.loads(target.read_text(encoding="utf-8"))
                    payload["rows"] = previous.get("rows", {})
                except (OSError, ValueError):
                    pass
            for name, row in fresh.items():
                baseline = BASELINE.get(artifact, {}).get(name)
                if baseline:
                    row = dict(row)
                    row["baseline_seconds"] = baseline["seconds"]
                    row["speedup_vs_baseline"] = round(
                        baseline["seconds"] / max(row["seconds"], 1e-9), 2
                    )
                payload["rows"][name] = row
            payload["baseline"] = BASELINE.get(artifact, {})
            target.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )


@pytest.fixture(scope="session")
def _bench_recorder():
    recorder = _Recorder()
    yield recorder
    recorder.flush(Path(__file__).resolve().parent.parent)


@pytest.fixture
def bench(_bench_recorder, request):
    """The shared timing harness; see the module docstring."""
    module = request.node.nodeid.split("/")[-1].split(".py")[0]
    artifact = _ARTIFACT_BY_MODULE.get(module)
    nodeid = request.node.nodeid.split("/")[-1]
    return _Benchmark(_bench_recorder, nodeid, artifact)


@pytest.fixture(scope="session")
def report():
    """Accumulate and emit report lines at the end of the session."""
    lines: list[str] = []
    yield lines
    if lines:
        print("\n" + "\n".join(lines))
