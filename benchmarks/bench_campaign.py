"""Benchmark: campaign throughput and result-cache effectiveness.

Asserts the campaign acceptance shape: a randomized sweep across several
families and oracles completes with zero disagreements, and a warm re-run
is served entirely from the result cache, much faster than the cold run.
"""

import pytest

from repro.analysis import campaign_summary
from repro.campaign import build_default_campaign, run_campaign


@pytest.fixture(scope="module")
def small_campaign():
    return build_default_campaign(instances=36, base_seed=7)


def test_campaign_runs_clean(small_campaign, tmp_path, report):
    cold = run_campaign(small_campaign, shards=1,
                        cache_dir=tmp_path / "cache")
    summary = campaign_summary(cold.results)
    report.append(
        f"[campaign] {cold.total} tasks, "
        f"{summary['totals']['disagreements']} disagreements, "
        f"{summary['totals']['errors']} errors, "
        f"{cold.wall_seconds:.2f}s cold"
    )
    assert cold.clean
    families = {r.family for r in cold.results}
    oracles = {r.oracle for r in cold.results}
    assert len(families) >= 3
    assert len(oracles) >= 4


def test_cache_hit_speedup(small_campaign, tmp_path, report):
    cache_dir = tmp_path / "cache"
    cold = run_campaign(small_campaign, shards=1, cache_dir=cache_dir)
    warm = run_campaign(small_campaign, shards=1, cache_dir=cache_dir)
    speedup = cold.wall_seconds / max(warm.wall_seconds, 1e-9)
    report.append(
        f"[campaign] warm: {warm.cache_hits}/{warm.total} hits, "
        f"{warm.wall_seconds:.3f}s ({speedup:.0f}x vs cold)"
    )
    assert warm.cache_hits == warm.total
    assert warm.executed == 0
    assert speedup >= 5.0


def test_sharded_matches_inline(small_campaign, tmp_path):
    inline = run_campaign(small_campaign, shards=1, cache_dir=None)
    sharded = run_campaign(small_campaign, shards=2, cache_dir=None)
    inline_verdicts = {
        (r.spec_hash, r.oracle): (r.agree, r.error is None)
        for r in inline.results
    }
    sharded_verdicts = {
        (r.spec_hash, r.oracle): (r.agree, r.error is None)
        for r in sharded.results
    }
    assert inline_verdicts == sharded_verdicts
