"""Benchmark: Result 1 — the policy-combination sweep.

Paper: "We checked the assertion consensus over several scopes, for a key
representative combinations of policies.  We found that MCA always reaches
consensus, except when the utility function policy p_u is set to non
sub-modular, and the agents release (and rebid) all subsequent items to an
outbid item i.e., the p_RO policy is set to true."

We regenerate the sweep with the SAT-based checker and print the verdict
table; the explicit-state checker cross-validates in tests/checking.
"""

import pytest

from repro.analysis import render_table
from repro.model import ALL_POLICY_COMBINATIONS, check_combination


@pytest.mark.parametrize(
    "combo", ALL_POLICY_COMBINATIONS, ids=lambda c: c.label
)
def test_policy_cell(bench, report, combo):
    verdict = bench(check_combination, combo, 2, 2, 6)
    expected_converges = not (
        not combo.submodular and combo.release_outbid
    )
    assert verdict.converges == expected_converges
    report.append(render_table(
        ["policy combination", "verdict", "clauses", "solve (s)"],
        [[combo.label,
          "consensus holds" if verdict.converges else "COUNTEREXAMPLE",
          verdict.solution.stats.num_clauses,
          f"{verdict.solution.seconds:.3f}"]],
        title="Result 1 cell",
    ))


def test_policy_matrix_scope_3_agents(bench):
    """A larger scope (3 pnodes, line topology) for the honest cell —
    'checked ... over several scopes'."""
    from repro.model import PolicyCombination, model_for

    def run():
        model = model_for(
            PolicyCombination(submodular=True, release_outbid=False),
            num_pnodes=3, num_vnodes=1, max_value=3,
            edges=[(0, 1), (1, 2)],
        )
        return model.check_consensus()

    solution = bench(run)
    assert not solution.satisfiable  # consensus holds
