"""Ablation benches for the design choices DESIGN.md calls out.

1. Value-chain length: the optimized encoding's cost knob is the scope of
   the ``value`` signature (the paper's replacement for Alloy Int).  We
   sweep it and show translation size grows roughly linearly — versus the
   16-atom jump the naive Int scope forces.
2. Bid-triple sharing: triples are constant value objects shared across
   views; the free-variable count is |views| x |triples| rather than
   per-view copies.  We verify the primary-variable accounting.
3. Scheduler ablation on the executable protocol: FIFO vs random delivery
   message counts (robustness of the asynchronous agreement).
"""

import pytest

from repro.analysis import render_table
from repro.mca import AgentNetwork, AgentPolicy, AsynchronousEngine, GeometricUtility
from repro.model import build_dynamic


@pytest.mark.parametrize("max_value", [3, 5, 7])
def test_value_scope_ablation(bench, report, max_value):
    def run():
        model = build_dynamic(num_pnodes=2, num_vnodes=2, max_value=max_value)
        return model.translate_check()

    translation = bench(run)
    report.append(render_table(
        ["max value", "primary vars", "clauses"],
        [[max_value, translation.stats.num_primary_vars,
          translation.stats.num_clauses]],
        title="Ablation: value-chain length vs translation size",
    ))
    assert translation.stats.num_clauses > 0


def test_value_scope_growth_is_subexponential():
    sizes = []
    for max_value in (3, 5, 7):
        model = build_dynamic(num_pnodes=2, num_vnodes=2, max_value=max_value)
        sizes.append(model.translate_check().stats.num_clauses)
    assert sizes[0] < sizes[1] < sizes[2]
    # Roughly linear growth in the chain length, far from the 16-atom
    # naive Int cliff: doubling the value range must not quadruple clauses.
    assert sizes[2] / sizes[0] < 4


def test_triple_sharing_accounting():
    """Free vars = |bidVectors| x |bidTriples| exactly (one membership bit
    per view/value-object pair), confirming views share triples."""
    model = build_dynamic(num_pnodes=2, num_vnodes=2, max_value=3)
    translation = model.translate_check()
    num_views = model.num_states * model.num_pnodes
    num_triples = model.num_vnodes * (model.max_value + 1) * (model.num_pnodes + 1)
    assert translation.stats.num_primary_vars == num_views * num_triples


@pytest.mark.parametrize("scheduler,seed", [("fifo", 0), ("random", 1),
                                            ("random", 2)])
def test_scheduler_ablation(bench, report, scheduler, seed):
    items = ["A", "B", "C"]
    network = AgentNetwork.ring(4)
    policies = {
        a: AgentPolicy(
            utility=GeometricUtility(
                {j: 10 + 7 * a + 3 * k for k, j in enumerate(items)}, 0.5),
            target=2,
        )
        for a in network.agents()
    }

    def run():
        engine = AsynchronousEngine(network, items, policies,
                                    scheduler=scheduler, seed=seed)
        return engine.run()

    result = bench(run)
    assert result.converged
    report.append(render_table(
        ["scheduler", "seed", "messages to converge"],
        [[scheduler, seed, result.messages_processed]],
        title="Ablation: delivery schedule robustness",
    ))
