"""Benchmark: propagation kernels and the external CDCL path.

The vector kernel (``Solver(kernel="vector")``) bulk-filters watcher
lists with numpy while keeping the search trajectory bit-identical to the
pure interpreter; the workload here is built so almost all propagation
time is spent scanning long watcher lists whose blockers are already
true — the exact shape the kernel vectorizes.  Rows land in
``BENCH_solver.json`` with ``propagations_per_second`` metadata; the
pinned baseline is the pure-kernel time, so the ``[vector]`` row's
``speedup_vs_baseline`` documents the kernel speedup PR over PR.

``test_vector_kernel_not_slower_than_pure`` is the CI regression gate:
it fails whenever the vector kernel falls behind the interpreter on the
kernel-friendly workload.

The external row times a real CDCL binary (picosat/cadical/kissat, if
one is on PATH) against the built-in solver on a campaign-sized consensus
check, and is skipped — not failed — when none is installed.
"""

import shutil
import time

import pytest

from repro.sat.cnf import CNF
from repro.sat.solver import Solver
from repro.sat.types import Status

# Chain + fanout shape: deciding the guard g False triggers a unit chain
# c1 -> c2 -> ... while every chain variable watches `fanout` noise
# clauses (-c_i, -g, x_j) whose blocker -g is already true, so whole
# watcher lists vanish in one vectorized filter.
N_CHAIN = 48
FANOUT = 400
POOL = 16
SOLVES_PER_RUN = 20

REAL_SOLVERS = ("picosat", "cadical", "kissat")


def chain_cnf():
    cnf = CNF()
    g = cnf.new_var()
    chain = [cnf.new_var() for _ in range(N_CHAIN)]
    xs = [cnf.new_var() for _ in range(POOL)]
    cnf.add_clause([g, chain[0]])
    for a, b in zip(chain, chain[1:]):
        cnf.add_clause([-a, b])
    for i, c in enumerate(chain):
        for j in range(FANOUT):
            cnf.add_clause([-c, -g, xs[(i + j) % POOL]])
    return cnf, g


def _warm_solver(kernel):
    cnf, g = chain_cnf()
    solver = Solver(kernel=kernel)
    assert solver.add_cnf(cnf)
    assert solver.solve([-g]) is Status.SAT  # builds watch lists + caches
    return solver, g


def _throughput(kernel, solves=SOLVES_PER_RUN):
    """(propagations, seconds) for ``solves`` warm assumption solves."""
    solver, g = _warm_solver(kernel)
    before = solver.stats["propagations"]
    started = time.perf_counter()
    for _ in range(solves):
        assert solver.solve([-g]) is Status.SAT
    seconds = time.perf_counter() - started
    return solver.stats["propagations"] - before, seconds


@pytest.mark.parametrize("kernel", ["pure", "vector"])
def test_propagation_throughput(bench, report, kernel):
    if kernel == "vector":
        pytest.importorskip("numpy")
    solver, g = _warm_solver(kernel)

    def run():
        before = solver.stats["propagations"]
        for _ in range(SOLVES_PER_RUN):
            assert solver.solve([-g]) is Status.SAT
        return solver.stats["propagations"] - before

    propagations = bench(run)
    seconds = bench._row["seconds"]
    pps = propagations / max(seconds, 1e-9)
    bench.meta(kernel=solver.kernel, propagations=propagations,
               propagations_per_second=round(pps))
    report.append(
        f"kernel={kernel}: {propagations} propagations in {seconds:.4f}s "
        f"({pps / 1000:.0f} kprops/s)"
    )


def test_vector_kernel_not_slower_than_pure():
    """CI regression gate: the vector kernel must not fall behind the
    interpreter on the workload built for it (best-of-3 each)."""
    pytest.importorskip("numpy")
    pure_pps = max(
        props / max(secs, 1e-9)
        for props, secs in (_throughput("pure", solves=5) for _ in range(3))
    )
    vector_pps = max(
        props / max(secs, 1e-9)
        for props, secs in (_throughput("vector", solves=5) for _ in range(3))
    )
    assert vector_pps >= pure_pps, (
        f"vector kernel regressed below pure: "
        f"{vector_pps:.0f} < {pure_pps:.0f} propagations/s"
    )


def _real_solver():
    for name in REAL_SOLVERS:
        if shutil.which(name):
            return name
    return None


@pytest.mark.skipif(_real_solver() is None,
                    reason="no real CDCL solver (picosat/cadical/kissat) "
                           "on PATH")
def test_external_solver_end_to_end(bench, report):
    """A native CDCL binary against the built-in solver on a campaign
    consensus check (3 pnodes / 2 vnodes), subprocess overhead included."""
    from repro.model import build_dynamic
    from repro.sat.external import ExternalSolver
    from repro.sat.solver import solve_cnf

    command = _real_solver()
    translation = build_dynamic(
        num_pnodes=3, num_vnodes=2, max_value=3, edges=[(0, 1), (1, 2)]
    ).translate_check()
    cnf = translation.cnf

    internal_started = time.perf_counter()
    internal_status, _ = solve_cnf(cnf)
    internal_seconds = time.perf_counter() - internal_started

    external = ExternalSolver(command, timeout=120)
    run = bench(external.solve_cnf, cnf)
    assert run.status is internal_status
    seconds = bench._row["seconds"]
    speedup = internal_seconds / max(seconds, 1e-9)
    bench.meta(command=command, external_wall=round(run.wall_seconds, 6),
               internal_seconds=round(internal_seconds, 6),
               speedup_vs_internal=round(speedup, 2))
    report.append(
        f"external={command}: {seconds:.4f}s vs internal "
        f"{internal_seconds:.4f}s ({speedup:.1f}x), verdict {run.status}"
    )
    assert speedup >= 10, (
        f"expected the native solver to be >=10x the built-in one, "
        f"got {speedup:.1f}x"
    )
