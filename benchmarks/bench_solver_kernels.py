"""Benchmark: propagation kernels, the conflict path, and external CDCL.

The vector kernel (``Solver(kernel="vector")``) bulk-filters watcher
lists with numpy while keeping the search trajectory bit-identical to the
pure interpreter.  Two workload shapes are measured:

* **propagation-heavy** (``chain_cnf``): almost all time is spent
  scanning long watcher lists whose blockers are already true — the
  shape the propagation filter vectorizes;
* **conflict-heavy** (``conflict_cnf``): an unsatisfiable pigeonhole
  core whose every core literal fans out into hundreds of never-mutating
  noise clauses, so the solver both dives through ``_analyze`` /
  ``_minimize`` / VSIDS bumping thousands of times *and* scans watcher
  lists the vector filter can prune in one operation — end to end, the
  shape the conflict-path kernel assists target.

Rows land in ``BENCH_solver.json`` with per-row throughput metadata;
each row is pinned against its own re-measured baseline (see
``BASELINE`` in ``conftest.py``), and the cross-kernel ratio of the same
run is recorded in the ``[vector]`` rows' ``speedup_vs_pure`` metadata —
so the artifact reads correctly even when baselines were pinned on
different hardware.

CI regression gates: ``test_vector_kernel_not_slower_than_pure`` (the
propagation workload must never fall behind the interpreter) and
``test_vector_conflict_speedup`` (the conflict-heavy workload must stay
≥2x end to end).

The external row times a real CDCL binary (picosat/cadical/kissat, if
one is on PATH) against the built-in solver on a campaign-sized consensus
check, and is skipped — not failed — when none is installed.

Run as a script for a profiled conflict-heavy sweep (uploaded by the CI
bench-smoke job so future PRs can see what dominates)::

    python benchmarks/bench_solver_kernels.py --profile [PATH]
"""

import shutil
import time

import pytest

from repro.sat.cnf import CNF
from repro.sat.solver import Solver
from repro.sat.types import Status

# Chain + fanout shape: deciding the guard g False triggers a unit chain
# c1 -> c2 -> ... while every chain variable watches `fanout` noise
# clauses (-c_i, -g, x_j) whose blocker -g is already true, so whole
# watcher lists vanish in one vectorized filter.
N_CHAIN = 48
FANOUT = 400
POOL = 16
SOLVES_PER_RUN = 20

REAL_SOLVERS = ("picosat", "cadical", "kissat")


def chain_cnf():
    cnf = CNF()
    g = cnf.new_var()
    chain = [cnf.new_var() for _ in range(N_CHAIN)]
    xs = [cnf.new_var() for _ in range(POOL)]
    cnf.add_clause([g, chain[0]])
    for a, b in zip(chain, chain[1:]):
        cnf.add_clause([-a, b])
    for i, c in enumerate(chain):
        for j in range(FANOUT):
            cnf.add_clause([-c, -g, xs[(i + j) % POOL]])
    return cnf, g


def _warm_solver(kernel):
    cnf, g = chain_cnf()
    solver = Solver(kernel=kernel)
    assert solver.add_cnf(cnf)
    assert solver.solve([-g]) is Status.SAT  # builds watch lists + caches
    return solver, g


def _throughput(kernel, solves=SOLVES_PER_RUN):
    """(propagations, seconds) for ``solves`` warm assumption solves."""
    solver, g = _warm_solver(kernel)
    before = solver.stats["propagations"]
    started = time.perf_counter()
    for _ in range(solves):
        assert solver.solve([-g]) is Status.SAT
    seconds = time.perf_counter() - started
    return solver.stats["propagations"] - before, seconds


# Seconds of the pure row of each workload, stashed so the [vector] row
# of the same session can record the cross-kernel ratio measured on the
# *same* hardware (parametrize order runs pure first).
_PURE_SECONDS: dict[str, float] = {}


def _cross_kernel_meta(bench, workload: str, kernel: str, seconds: float):
    """Record the within-run vector-vs-pure ratio on the [vector] row."""
    if kernel == "pure":
        _PURE_SECONDS[workload] = seconds
    elif workload in _PURE_SECONDS:
        bench.meta(speedup_vs_pure=round(
            _PURE_SECONDS[workload] / max(seconds, 1e-9), 2))


@pytest.mark.parametrize("kernel", ["pure", "vector"])
def test_propagation_throughput(bench, report, kernel):
    if kernel == "vector":
        pytest.importorskip("numpy")
    solver, g = _warm_solver(kernel)

    def run():
        before = solver.stats["propagations"]
        for _ in range(SOLVES_PER_RUN):
            assert solver.solve([-g]) is Status.SAT
        return solver.stats["propagations"] - before

    propagations = bench(run)
    seconds = bench._row["seconds"]
    pps = propagations / max(seconds, 1e-9)
    bench.meta(kernel=solver.kernel, propagations=propagations,
               propagations_per_second=round(pps))
    _cross_kernel_meta(bench, "propagation", kernel, seconds)
    report.append(
        f"kernel={kernel}: {propagations} propagations in {seconds:.4f}s "
        f"({pps / 1000:.0f} kprops/s)"
    )


def test_vector_kernel_not_slower_than_pure():
    """CI regression gate: the vector kernel must not fall behind the
    interpreter on the workload built for it (best-of-3 each)."""
    pytest.importorskip("numpy")
    pure_pps = max(
        props / max(secs, 1e-9)
        for props, secs in (_throughput("pure", solves=5) for _ in range(3))
    )
    vector_pps = max(
        props / max(secs, 1e-9)
        for props, secs in (_throughput("vector", solves=5) for _ in range(3))
    )
    assert vector_pps >= pure_pps, (
        f"vector kernel regressed below pure: "
        f"{vector_pps:.0f} < {pure_pps:.0f} propagations/s"
    )


# Conflict-heavy shape: an unsatisfiable pigeonhole core (clause/var
# ratio >> 4, forces deep repeated _analyze/_minimize/VSIDS churn) whose
# every core literal v gets a mirror m (clause (v, m): falsifying v
# propagates m) fanning out into `fanout` noise clauses (-m, -guard,
# x_j).  Under the assumption -guard those noise lists consist entirely
# of blocker-true entries that never mutate, so the vector filter prunes
# each list in one cached operation while the interpreter walks all
# `fanout` entries — and the conflict-path assists batch the analysis
# work the pigeonhole core generates.
PHP_HOLES = 6
NOISE_FANOUT = 800
CONFLICT_GATE_SPEEDUP = 2.0


def conflict_cnf():
    cnf = CNF()
    pigeons = PHP_HOLES + 1
    v = {}
    for p in range(pigeons):
        for h in range(PHP_HOLES):
            v[p, h] = cnf.new_var()
    guard = cnf.new_var()
    for p in range(pigeons):
        cnf.add_clause([v[p, h] for h in range(PHP_HOLES)])
    for h in range(PHP_HOLES):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause([-v[p1, h], -v[p2, h]])
    for var in [v[p, h] for p in range(pigeons) for h in range(PHP_HOLES)]:
        mirror = cnf.new_var()
        cnf.add_clause([var, mirror])
        for _ in range(NOISE_FANOUT):
            cnf.add_clause([-mirror, -guard, cnf.new_var()])
    return cnf, guard


def _conflict_solve(kernel, cnf, guard):
    """One cold end-to-end solve; returns (conflicts, seconds)."""
    solver = Solver(kernel=kernel)
    assert solver.add_cnf(cnf)
    started = time.perf_counter()
    status = solver.solve([-guard])
    seconds = time.perf_counter() - started
    assert status is Status.UNSAT
    return solver.stats["conflicts"], seconds


@pytest.mark.parametrize("kernel", ["pure", "vector"])
def test_conflict_throughput(bench, report, kernel):
    """End-to-end conflict-heavy solve (cold solver per run)."""
    if kernel == "vector":
        pytest.importorskip("numpy")
    cnf, guard = conflict_cnf()
    conflicts = bench(lambda: _conflict_solve(kernel, cnf, guard)[0])
    seconds = bench._row["seconds"]
    cps = conflicts / max(seconds, 1e-9)
    bench.meta(kernel=kernel, conflicts=conflicts,
               conflicts_per_second=round(cps),
               holes=PHP_HOLES, fanout=NOISE_FANOUT)
    _cross_kernel_meta(bench, "conflict", kernel, seconds)
    report.append(
        f"conflict kernel={kernel}: {conflicts} conflicts in {seconds:.4f}s "
        f"({cps / 1000:.1f} kconf/s)"
    )


def test_vector_conflict_speedup(report):
    """CI regression gate: ≥2x end-to-end on the conflict-heavy workload
    (best-of-2 each; the ratio is hardware-independent)."""
    pytest.importorskip("numpy")
    cnf, guard = conflict_cnf()
    pure_conflicts, pure_secs = min(
        (_conflict_solve("pure", cnf, guard) for _ in range(2)),
        key=lambda pair: pair[1])
    vector_conflicts, vector_secs = min(
        (_conflict_solve("vector", cnf, guard) for _ in range(2)),
        key=lambda pair: pair[1])
    # Bit-identical trajectories are asserted by the differential tests;
    # re-check the cheap invariant here so a divergence cannot masquerade
    # as a speedup.
    assert vector_conflicts == pure_conflicts
    speedup = pure_secs / max(vector_secs, 1e-9)
    report.append(
        f"conflict gate: pure {pure_secs:.4f}s vs vector {vector_secs:.4f}s "
        f"({speedup:.2f}x)"
    )
    assert speedup >= CONFLICT_GATE_SPEEDUP, (
        f"vector kernel below the {CONFLICT_GATE_SPEEDUP}x gate on the "
        f"conflict-heavy workload: pure {pure_secs:.4f}s / "
        f"vector {vector_secs:.4f}s = {speedup:.2f}x"
    )


def _real_solver():
    for name in REAL_SOLVERS:
        if shutil.which(name):
            return name
    return None


@pytest.mark.skipif(_real_solver() is None,
                    reason="no real CDCL solver (picosat/cadical/kissat) "
                           "on PATH")
def test_external_solver_end_to_end(bench, report):
    """A native CDCL binary against the built-in solver on a campaign
    consensus check (3 pnodes / 2 vnodes), subprocess overhead included."""
    from repro.model import build_dynamic
    from repro.sat.external import ExternalSolver
    from repro.sat.solver import solve_cnf

    command = _real_solver()
    translation = build_dynamic(
        num_pnodes=3, num_vnodes=2, max_value=3, edges=[(0, 1), (1, 2)]
    ).translate_check()
    cnf = translation.cnf

    internal_started = time.perf_counter()
    internal_status, _ = solve_cnf(cnf)
    internal_seconds = time.perf_counter() - internal_started

    external = ExternalSolver(command, timeout=120)
    run = bench(external.solve_cnf, cnf)
    assert run.status is internal_status
    seconds = bench._row["seconds"]
    speedup = internal_seconds / max(seconds, 1e-9)
    bench.meta(command=command, external_wall=round(run.wall_seconds, 6),
               internal_seconds=round(internal_seconds, 6),
               speedup_vs_internal=round(speedup, 2))
    report.append(
        f"external={command}: {seconds:.4f}s vs internal "
        f"{internal_seconds:.4f}s ({speedup:.1f}x), verdict {run.status}"
    )
    assert speedup >= 10, (
        f"expected the native solver to be >=10x the built-in one, "
        f"got {speedup:.1f}x"
    )


def main(argv=None) -> int:
    """Profiled conflict-heavy sweep: ``--profile [PATH]`` writes the
    cProfile cumulative table (default ``BENCH_solver.profile.txt``) so
    the CI artifact shows what dominates the conflict path."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_solver_kernels.py",
        description="Run the conflict-heavy kernel sweep under cProfile.")
    parser.add_argument("--profile", nargs="?", metavar="PATH",
                        const="BENCH_solver.profile.txt",
                        default="BENCH_solver.profile.txt",
                        help="cProfile artifact path "
                             "(default: BENCH_solver.profile.txt)")
    args = parser.parse_args(argv)

    from repro.analysis.profiling import run_profiled

    cnf, guard = conflict_cnf()

    def sweep():
        return {kernel: _conflict_solve(kernel, cnf, guard)
                for kernel in ("pure", "vector")}

    results = run_profiled(sweep, args.profile)
    (pure_conflicts, pure_secs) = results["pure"]
    (vector_conflicts, vector_secs) = results["vector"]
    print(f"pure:   {pure_conflicts} conflicts in {pure_secs:.4f}s")
    print(f"vector: {vector_conflicts} conflicts in {vector_secs:.4f}s "
          f"({pure_secs / max(vector_secs, 1e-9):.2f}x)")
    print(f"profile: {args.profile}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
