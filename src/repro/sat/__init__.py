"""SAT substrate: CNF containers, a CDCL solver, enumeration and DIMACS I/O.

This package plays the role MiniSat plays underneath the Alloy Analyzer in
the paper: the backend deciding the boolean satisfiability problems produced
by the relational translation.
"""

from repro.sat.cnf import CNF
from repro.sat.dimacs import dump_file, dumps, load_file, loads
from repro.sat.enumerate import count_models, iter_models
from repro.sat.simplify import simplify
from repro.sat.solver import Solver, luby, solve_cnf
from repro.sat.types import Clause, Lit, Model, Status, Var, clause, negate, var_of

__all__ = [
    "CNF",
    "Clause",
    "Lit",
    "Model",
    "Solver",
    "Status",
    "Var",
    "clause",
    "count_models",
    "dump_file",
    "dumps",
    "iter_models",
    "load_file",
    "loads",
    "luby",
    "negate",
    "simplify",
    "solve_cnf",
    "var_of",
]
