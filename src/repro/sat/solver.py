"""A conflict-driven clause-learning (CDCL) SAT solver.

This module is the bottom of the verification stack: the relational
translator in :mod:`repro.kodkod` compiles Alloy-style models to CNF, and
this solver decides them.  It implements the standard modern architecture:

* two-watched-literal unit propagation with blocker literals,
* first-UIP conflict analysis with clause learning,
* VSIDS variable activities with phase saving,
* Luby-sequence restarts,
* solving under assumptions (used for incremental model enumeration),
* a managed clause database: learned clauses are kept separate from
  problem clauses, carry LBD ("glue") and activity scores, and are
  periodically reduced so long enumeration sessions do not degrade.

Clauses live in a flat literal arena (:class:`repro.sat.types.ClauseArena`):
parallel int arrays indexed by clause id, with every clause a span in one
shared literal array.  Watcher lists are flat interleaved ``[clause id,
blocker literal]`` arrays indexed by encoded literal (``2v`` for the
positive literal of variable ``v``, ``2v + 1`` for the negative), so the
propagation inner loop touches only list indexing — no per-clause heap
objects, no attribute dereferences, no dict hashing.  A blocker is a
literal of the clause (normally the other watched literal) checked before
the clause span itself: when the blocker is already true the clause is
satisfied and the span is never read.

Clause ids are stable between reductions; when the arena accumulates too
much deleted-clause storage, :meth:`Solver.reduce_db` compacts it and
remaps watcher lists and reason references in one sweep.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Sequence

from repro.sat.cnf import CNF
from repro.sat.types import ClauseArena, Lit, Model, Status, Var, VarOrderHeap

_TRUE = 1
_FALSE = -1
_UNASSIGNED = 0

# Reason / conflict sentinel: "no clause".
_NO_CLAUSE = -1

# Clause length at which LBD computation is handed to the vector kernel
# (np.unique over the kernel's level mirror); shorter clauses are faster
# through a Python set.
_VECTOR_LBD_THRESHOLD = 64

# Reason-clause length at which the first-UIP scan is handed to the vector
# kernel (bulk seen/level gather); the numpy round-trip (array build,
# double gather, boolean mask, tolist) breaks even against the interpreted
# scan at roughly this length.
_VECTOR_ANALYZE_THRESHOLD = 64


def luby(i: int) -> int:
    """The i-th term (1-based) of the Luby restart sequence 1,1,2,1,1,2,4,..."""
    if i <= 0:
        raise ValueError("Luby sequence is 1-based")
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x %= size
    return 1 << seq


def _enc(lit: Lit) -> int:
    """Encoded literal: index into the watcher-list table.

    The expression is inlined (not called) in the ``add_cnf`` and
    ``_propagate`` hot loops; keep the two in sync.
    """
    return 2 * lit if lit > 0 else -2 * lit + 1


class Solver:
    """CDCL SAT solver over DIMACS-style integer literals."""

    def __init__(self, restart_base: int = 100, decay: float = 0.95,
                 clause_decay: float = 0.999, max_learned: int = 4000,
                 reduce_growth: float = 1.3, glue_lbd: int = 2,
                 kernel: str = "pure") -> None:
        self._num_vars = 0
        self._arena = ClauseArena()
        self._problem_db: list[int] = []
        self._learned_db: list[int] = []
        # Watcher lists indexed by encoded literal; each is a flat
        # interleaved [clause id, blocker literal, ...] array.
        self._watches: list[list[int]] = [[], []]
        self._assign: list[int] = [_UNASSIGNED]  # index 0 unused
        self._level: list[int] = [0]
        self._reason: list[int] = [_NO_CLAUSE]
        self._phase: list[bool] = [False]
        # float64 activity storage: array('d') so the vector kernel can
        # rescale it through a zero-copy numpy view in one operation.
        self._activity = array("d", [0.0])
        self._trail: list[Lit] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._activity_inc = 1.0
        self._decay = decay
        self._clause_inc = 1.0
        self._clause_decay = clause_decay
        self._max_learned = max_learned
        self._reduce_growth = reduce_growth
        self._glue_lbd = glue_lbd
        self._restart_base = restart_base
        self._ok = True  # False once a top-level conflict is found
        self._assumption_levels: list[int] = []
        # Indexed max-heap over variable activities: one entry per
        # variable, reordered in place on bump (decrease-key), so
        # backtracking re-inserts only consumed variables instead of
        # re-pushing duplicates.
        self._order_heap = VarOrderHeap(self._activity)
        self.stats: dict[str, int] = {
            "conflicts": 0,
            "decisions": 0,
            "propagations": 0,
            "restarts": 0,
            "learned": 0,
            "learned_deleted": 0,
            "db_reductions": 0,
        }
        # Propagation kernel: "pure" is the interpreted loop below,
        # "vector" delegates to repro.sat.kernel (numpy bulk blocker
        # filtering) and falls back to "pure" when numpy is absent.  The
        # two are search-trajectory identical; `self.kernel` records which
        # one actually runs.
        if kernel not in ("pure", "vector"):
            raise ValueError(
                f"unknown kernel {kernel!r}: expected 'pure' (interpreted "
                "propagation loop) or 'vector' (numpy bulk propagation)"
            )
        self._kernel = None
        self.kernel = "pure"
        if kernel == "vector":
            from repro.sat.kernel import make_kernel

            self._kernel = make_kernel(self)
            if self._kernel is not None:
                self.kernel = "vector"

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Number of variables currently known to the solver."""
        return self._num_vars

    def new_var(self) -> Var:
        """Allocate a fresh variable."""
        self._num_vars += 1
        self._assign.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(_NO_CLAUSE)
        self._phase.append(False)
        self._activity.append(0.0)
        self._watches.append([])
        self._watches.append([])
        self._order_heap.push(self._num_vars)
        return self._num_vars

    def _ensure_var(self, var: Var) -> None:
        while self._num_vars < var:
            self.new_var()

    def _watch(self, lit: Lit, cid: int, blocker: Lit) -> None:
        watch_list = self._watches[_enc(lit)]
        watch_list.append(cid)
        watch_list.append(blocker)

    def add_clause(self, lits: Sequence[Lit]) -> bool:
        """Add a problem clause; returns False if the solver becomes UNSAT.

        The solver backtracks to decision level 0 first, so clauses may be
        added between ``solve`` calls (e.g. blocking clauses for model
        enumeration).  Problem clauses are never removed by clause-database
        reduction, so blocking clauses stay in force for the lifetime of
        the solver.
        """
        if not self._ok:
            return False
        self._backtrack(0)
        seen: set[Lit] = set()
        cleaned: list[Lit] = []
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            if -lit in seen:
                return True  # tautology: trivially satisfied
            if lit in seen:
                continue
            seen.add(lit)
            self._ensure_var(abs(lit))
            value = self._value(lit)
            if value == _TRUE and self._level[abs(lit)] == 0:
                return True  # already satisfied at the root
            if value == _FALSE and self._level[abs(lit)] == 0:
                continue  # falsified at the root: drop the literal
            cleaned.append(lit)
        return self._install_clause(cleaned)

    def _install_clause(self, cleaned: list[Lit]) -> bool:
        """Store a root-simplified problem clause and propagate units."""
        if not cleaned:
            self._ok = False
            return False
        if len(cleaned) == 1:
            if not self._enqueue(cleaned[0], _NO_CLAUSE):
                self._ok = False
                return False
            if self._propagate() != _NO_CLAUSE:
                self._ok = False
                return False
            return True
        cid = self._arena.add(cleaned)
        self._problem_db.append(cid)
        self._watch(cleaned[0], cid, cleaned[1])
        self._watch(cleaned[1], cid, cleaned[0])
        return True

    def add_cnf(self, cnf: CNF) -> bool:
        """Load an entire CNF; returns False on trivial UNSAT.

        This is the bulk-load path under :class:`~repro.kodkod.translate.
        Translation`: variables are allocated in one step, clauses are
        simplified against the root-level assignment and appended straight
        into the arena, and unit propagation runs once at the end instead
        of after every unit clause.
        """
        if not self._ok:
            return False
        self._backtrack(0)
        self._ensure_var(cnf.num_vars)
        arena = self._arena
        problem_db = self._problem_db
        assign = self._assign
        watches = self._watches
        for tup in cnf.clauses():
            cleaned: list[Lit] = []
            satisfied = False
            for lit in tup:
                value = assign[lit] if lit > 0 else -assign[-lit]
                if value == _TRUE:
                    satisfied = True
                    break
                if value == _UNASSIGNED:
                    cleaned.append(lit)
                # _FALSE at root: drop the literal.
            if satisfied:
                continue
            n = len(cleaned)
            if n > 1:
                lit_set = set(cleaned)
                tautology = False
                for lit in lit_set:
                    if -lit in lit_set:
                        tautology = True
                        break
                if tautology:
                    continue
                if len(lit_set) != n:
                    seen: set[Lit] = set()
                    dedup: list[Lit] = []
                    for lit in cleaned:
                        if lit not in seen:
                            seen.add(lit)
                            dedup.append(lit)
                    cleaned = dedup
                    n = len(cleaned)
            if n == 0:
                self._ok = False
                return False
            if n == 1:
                lit = cleaned[0]
                # Root assignments made here simplify the clauses that
                # follow (the `assign` reads above see them immediately).
                if not self._enqueue(lit, _NO_CLAUSE):
                    self._ok = False
                    return False
                continue
            cid = arena.add(cleaned)
            problem_db.append(cid)
            first, second = cleaned[0], cleaned[1]
            watch_list = watches[2 * first if first > 0 else -2 * first + 1]
            watch_list.append(cid)
            watch_list.append(second)
            watch_list = watches[2 * second if second > 0 else -2 * second + 1]
            watch_list.append(cid)
            watch_list.append(first)
        if self._propagate() != _NO_CLAUSE:
            self._ok = False
            return False
        return True

    # ------------------------------------------------------------------
    # Assignment plumbing
    # ------------------------------------------------------------------

    def _value(self, lit: Lit) -> int:
        value = self._assign[abs(lit)]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value if lit > 0 else -value

    def _enqueue(self, lit: Lit, reason: int) -> bool:
        value = self._value(lit)
        if value == _FALSE:
            return False
        if value == _TRUE:
            return True
        var = abs(lit)
        self._assign[var] = _TRUE if lit > 0 else _FALSE
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> int:
        """Unit propagation; returns a conflicting clause id or -1."""
        if self._kernel is not None:
            return self._kernel.propagate()
        trail = self._trail
        trail_lim = self._trail_lim
        assign = self._assign
        level = self._level
        reason = self._reason
        phase = self._phase
        watches = self._watches
        arena = self._arena
        lits = arena.lits
        start = arena.start
        size = arena.size
        deleted = arena.deleted
        propagated = 0
        conflict = _NO_CLAUSE
        while self._qhead < len(trail):
            lit = trail[self._qhead]
            self._qhead += 1
            propagated += 1
            false_lit = -lit
            watch_list = watches[2 * false_lit if false_lit > 0
                                 else -2 * false_lit + 1]
            if not watch_list:
                continue
            i = j = 0
            n = len(watch_list)
            while i < n:
                cid = watch_list[i]
                blocker = watch_list[i + 1]
                i += 2
                value = assign[blocker] if blocker > 0 else -assign[-blocker]
                if value == _TRUE:
                    watch_list[j] = cid
                    watch_list[j + 1] = blocker
                    j += 2
                    continue
                if deleted[cid]:
                    continue  # lazily drop clauses removed by reduce_db
                s = start[cid]
                # Normalize: put the false literal in slot 1.
                if lits[s] == false_lit:
                    lits[s] = lits[s + 1]
                    lits[s + 1] = false_lit
                first = lits[s]
                if first != blocker:
                    value = assign[first] if first > 0 else -assign[-first]
                    if value == _TRUE:
                        watch_list[j] = cid
                        watch_list[j + 1] = first
                        j += 2
                        continue
                # Search for a replacement watch.
                end = s + size[cid]
                found = False
                for k in range(s + 2, end):
                    other = lits[k]
                    if (assign[other] if other > 0 else -assign[-other]) \
                            != _FALSE:
                        lits[s + 1] = other
                        lits[k] = false_lit
                        new_list = watches[2 * other if other > 0
                                           else -2 * other + 1]
                        new_list.append(cid)
                        new_list.append(first)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                watch_list[j] = cid
                watch_list[j + 1] = first
                j += 2
                if value == _FALSE:
                    # Conflict: keep remaining watches and report.
                    while i < n:
                        watch_list[j] = watch_list[i]
                        watch_list[j + 1] = watch_list[i + 1]
                        i += 2
                        j += 2
                    conflict = cid
                    break
                # Enqueue the unit (inlined _enqueue: `first` is unassigned).
                var = first if first > 0 else -first
                assign[var] = _TRUE if first > 0 else _FALSE
                level[var] = len(trail_lim)
                reason[var] = cid
                phase[var] = first > 0
                trail.append(first)
            del watch_list[j:]
            if conflict != _NO_CLAUSE:
                break
        self.stats["propagations"] += propagated
        return conflict

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        if self._kernel is not None:
            self._kernel.on_unassign(self._trail[limit:], limit)
        assign = self._assign
        reason = self._reason
        heap = self._order_heap
        for lit in reversed(self._trail[limit:]):
            var = lit if lit > 0 else -lit
            assign[var] = _UNASSIGNED
            reason[var] = _NO_CLAUSE
            heap.push(var)
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------

    def _bump_vars(self, to_bump: Sequence[Var]) -> None:
        """Bump every variable in ``to_bump`` by the current increment.

        Conflict analysis batches its bumps: the adds are applied first,
        then one rescale decision covers the whole batch (the vector
        kernel rescales through a zero-copy numpy view of the float64
        activity array in a single vector multiply; the interpreted path
        loops), then the order-heap reorderings run in batch order.  A
        variable can appear twice (its ``seen`` mark was consumed by
        resolution and re-marked from a later reason clause) and is then
        bumped twice, exactly as the per-literal path did.
        """
        activity = self._activity
        inc = self._activity_inc
        rescale = False
        for var in to_bump:
            bumped = activity[var] + inc
            activity[var] = bumped
            if bumped > 1e100:
                rescale = True
        if rescale:
            if self._kernel is not None:
                self._kernel.rescale_activity(1e-100)
            else:
                for v in range(1, self._num_vars + 1):
                    activity[v] *= 1e-100
            self._activity_inc *= 1e-100
        heap = self._order_heap
        for var in to_bump:
            heap.update(var)

    def _bump_clause(self, cid: int) -> None:
        arena = self._arena
        arena.activity[cid] += self._clause_inc
        if arena.activity[cid] > 1e20:
            for c in self._learned_db:
                arena.activity[c] *= 1e-20
            self._clause_inc *= 1e-20

    def _decay_activities(self) -> None:
        self._activity_inc /= self._decay
        self._clause_inc /= self._clause_decay

    def _analyze(self, conflict: int) -> tuple[list[Lit], int]:
        """First-UIP analysis; returns (learned clause, backjump level).

        Both kernels share this loop; the vector kernel replaces the
        per-literal reason-clause scan (seen marking + level classify) with
        a bulk gather when the clause is long enough, and the two produce
        the same ``learned``/``to_bump`` sequences in the same order, so
        search trajectories stay bit-identical.
        """
        arena = self._arena
        arena_lits = arena.lits
        arena_start = arena.start
        arena_size = arena.size
        level = self._level
        trail = self._trail
        kernel = self._kernel
        learned: list[Lit] = []
        to_bump: list[Var] = []
        seen = ([False] * (self._num_vars + 1) if kernel is None
                else kernel.seen_buffer(self._num_vars))
        counter = 0
        lit: Lit | None = None
        if arena.learned[conflict]:
            self._bump_clause(conflict)
        cid = conflict
        index = len(trail)
        current_level = self._decision_level()
        if kernel is not None:
            kernel.begin_analyze()

        while True:
            s = arena_start[cid]
            n = arena_size[cid]
            if kernel is not None and n >= _VECTOR_ANALYZE_THRESHOLD:
                counter += kernel.scan_reason(
                    s, n, 0 if lit is None else lit, current_level,
                    seen, learned, to_bump)
            else:
                for k in range(s, s + n):
                    q = arena_lits[k]
                    if q == lit:
                        continue
                    var = q if q > 0 else -q
                    if not seen[var] and level[var] > 0:
                        seen[var] = True
                        to_bump.append(var)
                        if level[var] == current_level:
                            counter += 1
                        else:
                            learned.append(q)
            # Pick the next trail literal at the current level to resolve on.
            while True:
                index -= 1
                lit = trail[index]
                if seen[lit if lit > 0 else -lit]:
                    break
            counter -= 1
            seen[lit if lit > 0 else -lit] = False
            if counter == 0:
                learned.insert(0, -lit)
                break
            cid = self._reason[lit if lit > 0 else -lit]
            assert cid != _NO_CLAUSE, "UIP literal must have a reason"
            if arena.learned[cid]:
                self._bump_clause(cid)

        self._bump_vars(to_bump)

        # Clause minimization: drop literals implied by the rest.  After the
        # loop `seen` marks exactly the variables of learned[1:] (everything
        # at the conflict level was consumed by resolution), so it doubles
        # as the membership table once the asserting literal is added.
        seen[learned[0] if learned[0] > 0 else -learned[0]] = True
        learned = self._minimize(learned, seen)

        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest level in the clause.
        levels = sorted((level[abs(q)] for q in learned[1:]), reverse=True)
        backjump = levels[0]
        # Move a literal of the backjump level into slot 1 for watching.
        for k in range(1, len(learned)):
            if level[abs(learned[k])] == backjump:
                learned[1], learned[k] = learned[k], learned[1]
                break
        return learned, backjump

    def _minimize(self, learned: list[Lit], seen) -> list[Lit]:
        """Remove literals whose reasons are subsumed by the learned clause.

        ``seen`` is the analysis buffer, re-used as the membership table:
        truthy exactly for the variables of ``learned``.  Redundancy is a
        pure per-literal predicate over that fixed table, so the kernel
        can evaluate long reason clauses in bulk without changing results.
        """
        if self._kernel is not None:
            return self._kernel.minimize(learned, seen)
        arena = self._arena
        arena_lits = arena.lits
        arena_start = arena.start
        arena_size = arena.size
        level = self._level
        reason_of = self._reason
        result = [learned[0]]
        for q in learned[1:]:
            var_q = q if q > 0 else -q
            reason = reason_of[var_q]
            if reason == _NO_CLAUSE:
                result.append(q)
                continue
            s = arena_start[reason]
            redundant = True
            for k in range(s, s + arena_size[reason]):
                r = arena_lits[k]
                var_r = r if r > 0 else -r
                if var_r == var_q:
                    continue  # the implied literal itself
                if not seen[var_r] and level[var_r] != 0:
                    redundant = False
                    break
            if redundant:
                continue  # q is implied by the rest of the clause
            result.append(q)
        return result

    def _compute_lbd(self, lits: Sequence[Lit]) -> int:
        """Literal block distance: number of distinct decision levels."""
        if self._kernel is not None and len(lits) >= _VECTOR_LBD_THRESHOLD:
            return self._kernel.compute_lbd(lits)
        return len({self._level[abs(q)] for q in lits})

    def _record_learned(self, learned: list[Lit]) -> None:
        self.stats["learned"] += 1
        if len(learned) == 1:
            enqueued = self._enqueue(learned[0], _NO_CLAUSE)
            assert enqueued, "learned unit must be assignable after backjump"
            return
        cid = self._arena.add(learned, learned=True,
                              lbd=self._compute_lbd(learned))
        self._learned_db.append(cid)
        self._watch(learned[0], cid, learned[1])
        self._watch(learned[1], cid, learned[0])
        enqueued = self._enqueue(learned[0], cid)
        assert enqueued, "learned clause must be asserting"

    # ------------------------------------------------------------------
    # Clause database management
    # ------------------------------------------------------------------

    def reduce_db(self) -> int:
        """Discard the less useful half of the learned clauses.

        Clauses currently acting as a reason for an assignment ("locked"),
        binary clauses and low-LBD "glue" clauses are always kept; the rest
        are ranked by (LBD, activity) and the worse half is deleted.
        Deleted clauses are flagged and evicted from watch lists lazily
        during propagation; their arena storage is reclaimed by compaction
        once it outweighs the live clauses.  Returns the number of clauses
        deleted.
        """
        arena = self._arena
        locked = set(r for r in self._reason if r != _NO_CLAUSE)
        keep: list[int] = []
        candidates: list[int] = []
        glue_lbd = self._glue_lbd
        lbd = arena.lbd
        size = arena.size
        deleted_flags = arena.deleted
        for cid in self._learned_db:
            if deleted_flags[cid]:
                continue
            if cid in locked or size[cid] <= 2 or lbd[cid] <= glue_lbd:
                keep.append(cid)
            else:
                candidates.append(cid)
        activity = arena.activity
        candidates.sort(key=lambda c: (lbd[c], -activity[c]))
        half = len(candidates) // 2
        for cid in candidates[half:]:
            arena.delete(cid)
        deleted = len(candidates) - half
        self._learned_db = keep + candidates[:half]
        self.stats["learned_deleted"] += deleted
        self.stats["db_reductions"] += 1
        # Grow the budget geometrically, but never by less than one (small
        # budgets would otherwise truncate to zero growth), and never below
        # the survivors plus slack (an always-kept set at the budget would
        # otherwise re-trigger a no-op reduction on every conflict).
        self._max_learned = max(
            int(self._max_learned * self._reduce_growth),
            self._max_learned + 1,
            len(self._learned_db) + 16,
        )
        wasted = len(arena.lits) - arena.live_lits
        if wasted > 4096 and wasted > arena.live_lits:
            self._compact_arena()
        return deleted

    def _compact_arena(self) -> None:
        """Rebuild the arena without deleted clauses, remapping every
        clause id held by the databases, watcher lists and reasons."""
        old = self._arena
        new = ClauseArena()
        remap: dict[int, int] = {}
        old_lits = old.lits
        old_start = old.start
        old_size = old.size
        for cid in range(len(old.start)):
            if old.deleted[cid]:
                continue
            s = old_start[cid]
            new_cid = new.add(old_lits[s:s + old_size[cid]],
                              learned=bool(old.learned[cid]),
                              lbd=old.lbd[cid])
            new.activity[new_cid] = old.activity[cid]
            remap[cid] = new_cid
        self._problem_db = [remap[c] for c in self._problem_db]
        self._learned_db = [remap[c] for c in self._learned_db]
        self._reason = [remap[r] if r != _NO_CLAUSE else _NO_CLAUSE
                        for r in self._reason]
        for watch_list in self._watches:
            j = 0
            for i in range(0, len(watch_list), 2):
                new_cid = remap.get(watch_list[i])
                if new_cid is None:
                    continue  # deleted clause: evict eagerly while here
                watch_list[j] = new_cid
                watch_list[j + 1] = watch_list[i + 1]
                j += 2
            del watch_list[j:]
        self._arena = new
        if self._kernel is not None:
            # Compaction rewrote watch lists in place; cached arrays no
            # longer match their contents.
            self._kernel.invalidate()

    def clause_db_stats(self) -> dict[str, float]:
        """Snapshot of the clause database (feeds benchmark reports)."""
        arena = self._arena
        learned = [c for c in self._learned_db if not arena.deleted[c]]
        return {
            "problem_clauses": len(self._problem_db),
            "learned_clauses": len(learned),
            "learned_total": self.stats["learned"],
            "learned_deleted": self.stats["learned_deleted"],
            "db_reductions": self.stats["db_reductions"],
            "glue_clauses": sum(
                1 for c in learned if arena.lbd[c] <= self._glue_lbd
            ),
            "avg_lbd": (
                sum(arena.lbd[c] for c in learned) / len(learned)
                if learned else 0.0
            ),
        }

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def _pick_branch_var(self) -> Var | None:
        heap = self._order_heap
        assign = self._assign
        while True:
            var = heap.pop()
            if var is None:
                break
            if assign[var] == _UNASSIGNED:
                return var
        # Heap exhausted (entries consumed while their variables were later
        # assigned by propagation): fall back to a scan that still respects
        # activity order — highest activity wins, ties to the lowest index —
        # so the choice matches what the heap would have produced.
        activity = self._activity
        best: Var | None = None
        best_act = -1.0
        for var in range(1, self._num_vars + 1):
            if assign[var] == _UNASSIGNED and activity[var] > best_act:
                best = var
                best_act = activity[var]
        return best

    # ------------------------------------------------------------------
    # Main search loop
    # ------------------------------------------------------------------

    def solve(self, assumptions: Iterable[Lit] = ()) -> Status:
        """Decide satisfiability under the given assumptions."""
        self._assumption_levels = []
        self._backtrack(0)
        if not self._ok:
            return Status.UNSAT
        if self._propagate() != _NO_CLAUSE:
            self._ok = False
            return Status.UNSAT

        assumption_list = list(assumptions)
        for lit in assumption_list:
            self._ensure_var(abs(lit))

        conflicts_until_restart = self._restart_base * luby(1)
        restart_count = 0
        conflicts_since_restart = 0

        while True:
            conflict = self._propagate()
            if conflict != _NO_CLAUSE:
                self.stats["conflicts"] += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    self._ok = False
                    return Status.UNSAT
                if self._decision_level() <= len(self._assumption_levels):
                    # Conflict depends only on assumptions.
                    self._backtrack(0)
                    return Status.UNSAT
                learned, backjump = self._analyze(conflict)
                backjump = max(backjump, len(self._assumption_levels))
                self._backtrack(backjump)
                self._record_learned(learned)
                self._decay_activities()
                if len(self._learned_db) >= self._max_learned:
                    self.reduce_db()
                continue

            if conflicts_since_restart >= conflicts_until_restart:
                self.stats["restarts"] += 1
                restart_count += 1
                conflicts_since_restart = 0
                conflicts_until_restart = self._restart_base * luby(restart_count + 1)
                self._backtrack(len(self._assumption_levels))
                continue

            # Place any pending assumptions as pseudo-decisions.
            if len(self._assumption_levels) < len(assumption_list):
                lit = assumption_list[len(self._assumption_levels)]
                value = self._value(lit)
                if value == _FALSE:
                    self._backtrack(0)
                    return Status.UNSAT
                self._new_decision_level()
                self._assumption_levels.append(self._decision_level())
                if value == _UNASSIGNED:
                    self._enqueue(lit, _NO_CLAUSE)
                continue

            var = self._pick_branch_var()
            if var is None:
                return Status.SAT
            self.stats["decisions"] += 1
            self._new_decision_level()
            lit = var if self._phase[var] else -var
            self._enqueue(lit, _NO_CLAUSE)

    def solve_with(self, assumptions: Iterable[Lit] = ()) -> Status:
        """Alias of :meth:`solve`, kept for API compatibility."""
        return self.solve(assumptions)

    def model(self) -> Model:
        """Extract the satisfying assignment after a SAT answer.

        Unassigned variables (possible when the formula does not constrain
        them) default to False.
        """
        values = {}
        for var in range(1, self._num_vars + 1):
            values[var] = self._assign[var] == _TRUE
        return Model(values)


def solve_cnf(cnf: CNF, assumptions: Iterable[Lit] = (),
              kernel: str = "pure") -> tuple[Status, Model | None]:
    """One-shot convenience: build a solver, load ``cnf``, solve."""
    solver = Solver(kernel=kernel)
    if not solver.add_cnf(cnf):
        return Status.UNSAT, None
    status = solver.solve_with(assumptions)
    if status is Status.SAT:
        return status, solver.model()
    return status, None
