"""A conflict-driven clause-learning (CDCL) SAT solver.

This module is the bottom of the verification stack: the relational
translator in :mod:`repro.kodkod` compiles Alloy-style models to CNF, and
this solver decides them.  It implements the standard modern architecture:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning,
* VSIDS variable activities with phase saving,
* Luby-sequence restarts,
* solving under assumptions (used for incremental model enumeration),
* a managed clause database: learned clauses are kept separate from
  problem clauses, carry LBD ("glue") and activity scores, and are
  periodically reduced so long enumeration sessions do not degrade.

The implementation favours clarity over raw speed, but is careful about the
data structures that dominate runtime (watch lists, the trail, activity
bumping) so that the bounded-verification scopes used in the paper remain
comfortably tractable.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import heapq

from repro.sat.cnf import CNF
from repro.sat.types import Lit, Model, Status, Var

_TRUE = 1
_FALSE = -1
_UNASSIGNED = 0


def luby(i: int) -> int:
    """The i-th term (1-based) of the Luby restart sequence 1,1,2,1,1,2,4,..."""
    if i <= 0:
        raise ValueError("Luby sequence is 1-based")
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x %= size
    return 1 << seq


class _Clause:
    """One clause in the solver's database.

    Watch lists and reasons reference clause objects directly (rather than
    indices into a shared arena), so learned clauses can be deleted without
    invalidating anything: a deleted clause is flagged and dropped lazily
    the next time a watch list containing it is traversed.
    """

    __slots__ = ("lits", "learned", "lbd", "activity", "deleted")

    def __init__(self, lits: list[Lit], learned: bool = False,
                 lbd: int = 0) -> None:
        self.lits = lits
        self.learned = learned
        self.lbd = lbd
        self.activity = 0.0
        self.deleted = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "learned" if self.learned else "problem"
        return f"_Clause({self.lits}, {kind}, lbd={self.lbd})"


class Solver:
    """CDCL SAT solver over DIMACS-style integer literals."""

    def __init__(self, restart_base: int = 100, decay: float = 0.95,
                 clause_decay: float = 0.999, max_learned: int = 4000,
                 reduce_growth: float = 1.3, glue_lbd: int = 2) -> None:
        self._num_vars = 0
        self._problem_db: list[_Clause] = []
        self._learned_db: list[_Clause] = []
        self._watches: dict[Lit, list[_Clause]] = {}
        self._assign: list[int] = [_UNASSIGNED]  # index 0 unused
        self._level: list[int] = [0]
        self._reason: list[_Clause | None] = [None]
        self._phase: list[bool] = [False]
        self._activity: list[float] = [0.0]
        self._trail: list[Lit] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._activity_inc = 1.0
        self._decay = decay
        self._clause_inc = 1.0
        self._clause_decay = clause_decay
        self._max_learned = max_learned
        self._reduce_growth = reduce_growth
        self._glue_lbd = glue_lbd
        self._restart_base = restart_base
        self._ok = True  # False once a top-level conflict is found
        self._assumption_levels: list[int] = []
        # Lazy max-heap over variable activities; stale entries are skipped
        # on pop and re-pushed on unassignment/bump.
        self._order_heap: list[tuple[float, Var]] = []
        self.stats: dict[str, int] = {
            "conflicts": 0,
            "decisions": 0,
            "propagations": 0,
            "restarts": 0,
            "learned": 0,
            "learned_deleted": 0,
            "db_reductions": 0,
        }

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Number of variables currently known to the solver."""
        return self._num_vars

    def new_var(self) -> Var:
        """Allocate a fresh variable."""
        self._num_vars += 1
        self._assign.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._phase.append(False)
        self._activity.append(0.0)
        heapq.heappush(self._order_heap, (0.0, self._num_vars))
        return self._num_vars

    def _ensure_var(self, var: Var) -> None:
        while self._num_vars < var:
            self.new_var()

    def add_clause(self, lits: Sequence[Lit]) -> bool:
        """Add a problem clause; returns False if the solver becomes UNSAT.

        The solver backtracks to decision level 0 first, so clauses may be
        added between ``solve`` calls (e.g. blocking clauses for model
        enumeration).  Problem clauses are never removed by clause-database
        reduction, so blocking clauses stay in force for the lifetime of
        the solver.
        """
        if not self._ok:
            return False
        self._backtrack(0)
        seen: set[Lit] = set()
        cleaned: list[Lit] = []
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            if -lit in seen:
                return True  # tautology: trivially satisfied
            if lit in seen:
                continue
            seen.add(lit)
            self._ensure_var(abs(lit))
            value = self._value(lit)
            if value == _TRUE and self._level[abs(lit)] == 0:
                return True  # already satisfied at the root
            if value == _FALSE and self._level[abs(lit)] == 0:
                continue  # falsified at the root: drop the literal
            cleaned.append(lit)
        if not cleaned:
            self._ok = False
            return False
        if len(cleaned) == 1:
            if not self._enqueue(cleaned[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        clause = _Clause(cleaned)
        self._problem_db.append(clause)
        self._watch(cleaned[0], clause)
        self._watch(cleaned[1], clause)
        return True

    def add_cnf(self, cnf: CNF) -> bool:
        """Load an entire CNF; returns False on trivial UNSAT."""
        self._ensure_var(cnf.num_vars)
        for cl in cnf.clauses():
            if not self.add_clause(cl):
                return False
        return True

    # ------------------------------------------------------------------
    # Assignment plumbing
    # ------------------------------------------------------------------

    def _value(self, lit: Lit) -> int:
        value = self._assign[abs(lit)]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value if lit > 0 else -value

    def _watch(self, lit: Lit, clause: _Clause) -> None:
        self._watches.setdefault(lit, []).append(clause)

    def _enqueue(self, lit: Lit, reason: _Clause | None) -> bool:
        value = self._value(lit)
        if value == _FALSE:
            return False
        if value == _TRUE:
            return True
        var = abs(lit)
        self._assign[var] = _TRUE if lit > 0 else _FALSE
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> _Clause | None:
        """Unit propagation; returns a conflicting clause or None."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.stats["propagations"] += 1
            false_lit = -lit
            watch_list = self._watches.get(false_lit)
            if not watch_list:
                continue
            kept: list[_Clause] = []
            i = 0
            n = len(watch_list)
            while i < n:
                clause = watch_list[i]
                i += 1
                if clause.deleted:
                    continue  # lazily drop clauses removed by reduce_db
                cl = clause.lits
                # Normalize: put the false literal in slot 1.
                if cl[0] == false_lit:
                    cl[0], cl[1] = cl[1], cl[0]
                first = cl[0]
                if self._value(first) == _TRUE:
                    kept.append(clause)
                    continue
                # Search for a replacement watch.
                found = False
                for k in range(2, len(cl)):
                    if self._value(cl[k]) != _FALSE:
                        cl[1], cl[k] = cl[k], cl[1]
                        self._watch(cl[1], clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                kept.append(clause)
                if not self._enqueue(first, clause):
                    # Conflict: keep remaining watches and report.
                    kept.extend(watch_list[i:n])
                    self._watches[false_lit] = kept
                    return clause
            self._watches[false_lit] = kept
        return None

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = abs(lit)
            self._assign[var] = _UNASSIGNED
            self._reason[var] = None
            heapq.heappush(self._order_heap, (-self._activity[var], var))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------

    def _bump_var(self, var: Var) -> None:
        self._activity[var] += self._activity_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._activity_inc *= 1e-100
        if self._assign[var] == _UNASSIGNED:
            heapq.heappush(self._order_heap, (-self._activity[var], var))

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._clause_inc
        if clause.activity > 1e20:
            for c in self._learned_db:
                c.activity *= 1e-20
            self._clause_inc *= 1e-20

    def _decay_activities(self) -> None:
        self._activity_inc /= self._decay
        self._clause_inc /= self._clause_decay

    def _analyze(self, conflict: _Clause) -> tuple[list[Lit], int]:
        """First-UIP analysis; returns (learned clause, backjump level)."""
        learned: list[Lit] = []
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit: Lit | None = None
        if conflict.learned:
            self._bump_clause(conflict)
        reason_clause: list[Lit] = list(conflict.lits)
        index = len(self._trail)
        current_level = self._decision_level()

        while True:
            for q in reason_clause:
                var = abs(q)
                if q == lit:
                    continue
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._level[var] == current_level:
                        counter += 1
                    else:
                        learned.append(q)
            # Pick the next trail literal at the current level to resolve on.
            while True:
                index -= 1
                lit = self._trail[index]
                if seen[abs(lit)]:
                    break
            counter -= 1
            seen[abs(lit)] = False
            if counter == 0:
                learned.insert(0, -lit)
                break
            reason = self._reason[abs(lit)]
            assert reason is not None, "UIP literal must have a reason"
            if reason.learned:
                self._bump_clause(reason)
            reason_clause = reason.lits

        # Clause minimization: drop literals implied by the rest.
        learned = self._minimize(learned, seen)

        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest level in the clause.
        levels = sorted((self._level[abs(q)] for q in learned[1:]), reverse=True)
        backjump = levels[0]
        # Move a literal of the backjump level into slot 1 for watching.
        for k in range(1, len(learned)):
            if self._level[abs(learned[k])] == backjump:
                learned[1], learned[k] = learned[k], learned[1]
                break
        return learned, backjump

    def _minimize(self, learned: list[Lit], seen: list[bool]) -> list[Lit]:
        """Remove literals whose reasons are subsumed by the learned clause."""
        marked = set(abs(q) for q in learned)
        result = [learned[0]]
        for q in learned[1:]:
            reason = self._reason[abs(q)]
            if reason is None:
                result.append(q)
                continue
            if all(abs(r) in marked or self._level[abs(r)] == 0
                   for r in reason.lits if r != -q):
                continue  # q is redundant
            result.append(q)
        return result

    def _compute_lbd(self, lits: Sequence[Lit]) -> int:
        """Literal block distance: number of distinct decision levels."""
        return len({self._level[abs(q)] for q in lits})

    def _record_learned(self, learned: list[Lit]) -> None:
        self.stats["learned"] += 1
        if len(learned) == 1:
            enqueued = self._enqueue(learned[0], None)
            assert enqueued, "learned unit must be assignable after backjump"
            return
        clause = _Clause(learned, learned=True, lbd=self._compute_lbd(learned))
        self._learned_db.append(clause)
        self._watch(learned[0], clause)
        self._watch(learned[1], clause)
        enqueued = self._enqueue(learned[0], clause)
        assert enqueued, "learned clause must be asserting"

    # ------------------------------------------------------------------
    # Clause database management
    # ------------------------------------------------------------------

    def reduce_db(self) -> int:
        """Discard the less useful half of the learned clauses.

        Clauses currently acting as a reason for an assignment ("locked"),
        binary clauses and low-LBD "glue" clauses are always kept; the rest
        are ranked by (LBD, activity) and the worse half is deleted.
        Deleted clauses are flagged and evicted from watch lists lazily
        during propagation.  Returns the number of clauses deleted.
        """
        locked = {id(c) for c in self._reason if c is not None}
        keep: list[_Clause] = []
        candidates: list[_Clause] = []
        for clause in self._learned_db:
            if clause.deleted:
                continue
            if (id(clause) in locked or len(clause.lits) <= 2
                    or clause.lbd <= self._glue_lbd):
                keep.append(clause)
            else:
                candidates.append(clause)
        candidates.sort(key=lambda c: (c.lbd, -c.activity))
        half = len(candidates) // 2
        for clause in candidates[half:]:
            clause.deleted = True
        deleted = len(candidates) - half
        self._learned_db = keep + candidates[:half]
        self.stats["learned_deleted"] += deleted
        self.stats["db_reductions"] += 1
        # Grow the budget geometrically, but never by less than one (small
        # budgets would otherwise truncate to zero growth), and never below
        # the survivors plus slack (an always-kept set at the budget would
        # otherwise re-trigger a no-op reduction on every conflict).
        self._max_learned = max(
            int(self._max_learned * self._reduce_growth),
            self._max_learned + 1,
            len(self._learned_db) + 16,
        )
        return deleted

    def clause_db_stats(self) -> dict[str, float]:
        """Snapshot of the clause database (feeds benchmark reports)."""
        learned = [c for c in self._learned_db if not c.deleted]
        return {
            "problem_clauses": len(self._problem_db),
            "learned_clauses": len(learned),
            "learned_total": self.stats["learned"],
            "learned_deleted": self.stats["learned_deleted"],
            "db_reductions": self.stats["db_reductions"],
            "glue_clauses": sum(
                1 for c in learned if c.lbd <= self._glue_lbd
            ),
            "avg_lbd": (
                sum(c.lbd for c in learned) / len(learned) if learned else 0.0
            ),
        }

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def _pick_branch_var(self) -> Var | None:
        while self._order_heap:
            neg_activity, var = heapq.heappop(self._order_heap)
            if self._assign[var] != _UNASSIGNED:
                continue  # stale entry
            if -neg_activity < self._activity[var]:
                # Stale activity snapshot: re-push with the current score.
                heapq.heappush(self._order_heap, (-self._activity[var], var))
                continue
            return var
        # Heap exhausted: fall back to a linear scan (covers vars whose heap
        # entries were all consumed as stale).
        for var in range(1, self._num_vars + 1):
            if self._assign[var] == _UNASSIGNED:
                return var
        return None

    # ------------------------------------------------------------------
    # Main search loop
    # ------------------------------------------------------------------

    def solve(self, assumptions: Iterable[Lit] = ()) -> Status:
        """Decide satisfiability under the given assumptions."""
        self._assumption_levels = []
        self._backtrack(0)
        if not self._ok:
            return Status.UNSAT
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return Status.UNSAT

        assumption_list = list(assumptions)
        for lit in assumption_list:
            self._ensure_var(abs(lit))

        conflicts_until_restart = self._restart_base * luby(1)
        restart_count = 0
        conflicts_since_restart = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats["conflicts"] += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    self._ok = False
                    return Status.UNSAT
                if self._decision_level() <= len(self._assumption_levels):
                    # Conflict depends only on assumptions.
                    self._backtrack(0)
                    return Status.UNSAT
                learned, backjump = self._analyze(conflict)
                backjump = max(backjump, len(self._assumption_levels))
                self._backtrack(backjump)
                self._record_learned(learned)
                self._decay_activities()
                if len(self._learned_db) >= self._max_learned:
                    self.reduce_db()
                continue

            if conflicts_since_restart >= conflicts_until_restart:
                self.stats["restarts"] += 1
                restart_count += 1
                conflicts_since_restart = 0
                conflicts_until_restart = self._restart_base * luby(restart_count + 1)
                self._backtrack(len(self._assumption_levels))
                continue

            # Place any pending assumptions as pseudo-decisions.
            if len(self._assumption_levels) < len(assumption_list):
                lit = assumption_list[len(self._assumption_levels)]
                value = self._value(lit)
                if value == _FALSE:
                    self._backtrack(0)
                    return Status.UNSAT
                self._new_decision_level()
                self._assumption_levels.append(self._decision_level())
                if value == _UNASSIGNED:
                    self._enqueue(lit, None)
                continue

            var = self._pick_branch_var()
            if var is None:
                return Status.SAT
            self.stats["decisions"] += 1
            self._new_decision_level()
            lit = var if self._phase[var] else -var
            self._enqueue(lit, None)

    def solve_with(self, assumptions: Iterable[Lit] = ()) -> Status:
        """Alias of :meth:`solve`, kept for API compatibility."""
        return self.solve(assumptions)

    def model(self) -> Model:
        """Extract the satisfying assignment after a SAT answer.

        Unassigned variables (possible when the formula does not constrain
        them) default to False.
        """
        values = {}
        for var in range(1, self._num_vars + 1):
            values[var] = self._assign[var] == _TRUE
        return Model(values)


def solve_cnf(cnf: CNF, assumptions: Iterable[Lit] = ()) -> tuple[Status, Model | None]:
    """One-shot convenience: build a solver, load ``cnf``, solve."""
    solver = Solver()
    if not solver.add_cnf(cnf):
        return Status.UNSAT, None
    status = solver.solve_with(assumptions)
    if status is Status.SAT:
        return status, solver.model()
    return status, None
