"""Vectorized unit-propagation kernel over the flat watcher arrays.

The interpreted loop in :meth:`repro.sat.solver.Solver._propagate` spends
most of its time re-discovering that watched clauses are already satisfied:
on check-shaped problems the overwhelming majority of watcher entries pass
the blocker test and are skipped untouched.  This kernel keeps that
fast-path out of the interpreter: the blocker literals of each long watcher
list are mirrored into contiguous numpy ``int32``/``int8`` buffers, the
current assignment is mirrored into an ``int8`` array (synced in bulk from
the trail delta), and one vector expression

    ``assign[|blockers|] * sign(blockers) != TRUE``

yields the indices of the few entries that actually need clause inspection.
Those survivors are then processed by a scalar completion loop that is a
line-for-line transcription of the interpreted body (normalize the false
literal into slot 1, blocker/first checks, replacement-watch search,
inlined unit enqueue, conflict copy-out).

Equivalence contract
--------------------
The kernel performs *exactly* the same watch-list mutations, literal swaps,
enqueues and statistics updates as the interpreted loop, in the same order.
A blocker that is true at the start of a scan is still true when the
interpreted loop would have reached it (assignments are only added during a
propagation pass), so the snapshot filter skips precisely the entries the
interpreted loop would have kept; every surviving entry re-checks the
current assignment before being processed.  Consequently a ``vector``
solver and a ``pure`` solver fed the same clauses take identical search
trajectories: same models, same learned clauses, same ``stats``.  The
differential oracles (``repro.campaign``, ``repro.fuzz``) rely on this to
compare the two kernels entry for entry, not just verdict for verdict.

Conflict-analysis assists are deliberately modest: the per-conflict ``seen``
buffer is a zeroed numpy array (cheap calloc instead of a Python list
build) and LBD computation switches to ``np.unique`` for long clauses.
Python-level set arithmetic wins below those thresholds, and pretending
otherwise would just slow the solver down.

The kernel is optional: :func:`make_kernel` returns ``None`` when numpy is
not installed and the solver falls back to the interpreted loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via stubbed-import tests
    _np = None  # type: ignore[assignment]

if TYPE_CHECKING:
    from repro.sat.solver import Solver
    from repro.sat.types import Lit

HAVE_NUMPY = _np is not None

# Keep in sync with repro.sat.solver: assignment encoding and the "no
# clause" sentinel are shared between the interpreted and vector paths.
_TRUE = 1
_FALSE = -1
_NO_CLAUSE = -1

# Watch lists shorter than this many [cid, blocker] pairs are scanned with
# plain list indexing: below it the fixed cost of the numpy round-trip
# (array build or cache lookup, gather, nonzero) exceeds the per-pair
# savings of the vector filter.
MIN_VECTOR_PAIRS = 24

# Trail deltas and unassign batches below this size are synced scalar-wise;
# np.fromiter only pays off once the batch amortizes its setup.
_MIN_BULK_SYNC = 8

# _compute_lbd switches to np.unique at this clause length (see
# Solver._compute_lbd); below it a Python set comprehension is faster.
MIN_VECTOR_LBD = 64


def make_kernel(solver: "Solver") -> "VectorKernel | None":
    """Build the vector kernel for ``solver``, or ``None`` without numpy."""
    if _np is None:
        return None
    return VectorKernel(solver)


class VectorKernel:
    """Numpy-backed propagation engine attached to one :class:`Solver`.

    The kernel owns two kinds of mirror state:

    * ``_assign`` — an ``int8`` copy of the solver's assignment array,
      synced lazily from the trail (``_trail_mark`` tracks the synced
      prefix) and zeroed in bulk on backtrack via :meth:`on_unassign`;
    * ``_cache`` — per-encoded-literal ``(|blocker|, sign)`` int arrays for
      long watch lists, so repeated scans of a hot list skip the
      list→ndarray conversion.  An entry is valid only while its length
      matches the live list; any mutation the length check cannot see
      (in-place blocker rewrites on the scalar path, arena compaction)
      drops the entry instead.
    """

    def __init__(self, solver: "Solver") -> None:
        self._solver = solver
        self._assign = _np.zeros(max(len(solver._assign), 16), dtype=_np.int8)
        self._trail_mark = 0
        # encoded literal -> (abs(blockers) int32, sign(blockers) int8)
        self._cache: dict[int, tuple["_np.ndarray", "_np.ndarray"]] = {}
        # The solver may be handed to the kernel mid-life (not the case
        # today, but cheap to be correct about): sync any existing trail.
        self._sync_assign()

    # ------------------------------------------------------------------
    # Mirror maintenance
    # ------------------------------------------------------------------

    def _ensure_capacity(self, n: int) -> "_np.ndarray":
        arr = self._assign
        if arr.shape[0] < n:
            grown = _np.zeros(max(n, 2 * arr.shape[0]), dtype=_np.int8)
            grown[: arr.shape[0]] = arr
            self._assign = arr = grown
        return arr

    def _sync_assign(self) -> None:
        """Fold the unsynced trail suffix into the assignment mirror."""
        trail = self._solver._trail
        mark = self._trail_mark
        n = len(trail)
        if mark >= n:
            return
        np_assign = self._ensure_capacity(len(self._solver._assign))
        if n - mark < _MIN_BULK_SYNC:
            for idx in range(mark, n):
                lit = trail[idx]
                if lit > 0:
                    np_assign[lit] = _TRUE
                else:
                    np_assign[-lit] = _FALSE
        else:
            lits = _np.fromiter(trail[mark:], dtype=_np.int32, count=n - mark)
            np_assign[_np.abs(lits)] = _np.sign(lits).astype(_np.int8)
        self._trail_mark = n

    def on_unassign(self, removed: Sequence["Lit"], new_length: int) -> None:
        """Zero the mirror for the trail suffix the solver is popping."""
        if removed:
            np_assign = self._ensure_capacity(len(self._solver._assign))
            if len(removed) < _MIN_BULK_SYNC:
                for lit in removed:
                    np_assign[lit if lit > 0 else -lit] = 0
            else:
                lits = _np.fromiter(removed, dtype=_np.int32,
                                    count=len(removed))
                np_assign[_np.abs(lits)] = 0
        if self._trail_mark > new_length:
            self._trail_mark = new_length

    def invalidate(self) -> None:
        """Drop all cached watch arrays (arena compaction reorders lists)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def propagate(self) -> int:
        """Unit propagation; returns a conflicting clause id or -1.

        Semantically identical to the interpreted loop in
        ``Solver._propagate`` — see the module docstring for the
        equivalence argument.  Keep the scalar completion below in sync
        with that loop.
        """
        np = _np
        solver = self._solver
        trail = solver._trail
        trail_lim = solver._trail_lim
        assign = solver._assign
        level = solver._level
        reason = solver._reason
        phase = solver._phase
        watches = solver._watches
        arena = solver._arena
        lits = arena.lits
        start = arena.start
        size = arena.size
        deleted = arena.deleted
        cache = self._cache
        np_assign = self._ensure_capacity(len(assign))
        propagated = 0
        conflict = _NO_CLAUSE
        while solver._qhead < len(trail):
            lit = trail[solver._qhead]
            solver._qhead += 1
            propagated += 1
            false_lit = -lit
            e = 2 * false_lit if false_lit > 0 else -2 * false_lit + 1
            wl = watches[e]
            n = len(wl)
            if not n:
                continue
            pairs = n >> 1
            entry = None
            if pairs >= MIN_VECTOR_PAIRS:
                self._sync_assign()
                np_assign = self._assign  # _sync_assign may have grown it
                entry = cache.get(e)
                if entry is None or entry[0].shape[0] != pairs:
                    blockers = np.array(wl[1::2], dtype=np.int32)
                    entry = (np.abs(blockers),
                             np.sign(blockers).astype(np.int8))
                    cache[e] = entry
                signed = np_assign[entry[0]] * entry[1]
                survivors = np.nonzero(signed != _TRUE)[0]
                if survivors.shape[0] == 0:
                    continue  # every entry blocker-satisfied: skip the list
                pending = survivors.tolist()
            else:
                pending = range(pairs)
            removed: set[int] | None = None
            mutated = False
            for kp in pending:
                i = kp << 1
                cid = wl[i]
                blocker = wl[i + 1]
                value = assign[blocker] if blocker > 0 else -assign[-blocker]
                if value == _TRUE:
                    continue
                if deleted[cid]:
                    # Lazily drop clauses removed by reduce_db.
                    if removed is None:
                        removed = set()
                    removed.add(kp)
                    continue
                s = start[cid]
                # Normalize: put the false literal in slot 1.
                if lits[s] == false_lit:
                    lits[s] = lits[s + 1]
                    lits[s + 1] = false_lit
                first = lits[s]
                if first != blocker:
                    value = assign[first] if first > 0 else -assign[-first]
                    if value == _TRUE:
                        wl[i + 1] = first
                        if entry is not None:
                            entry[0][kp] = first if first > 0 else -first
                            entry[1][kp] = 1 if first > 0 else -1
                        else:
                            mutated = True
                        continue
                # Search for a replacement watch.
                end = s + size[cid]
                found = False
                for k in range(s + 2, end):
                    other = lits[k]
                    if (assign[other] if other > 0 else -assign[-other]) \
                            != _FALSE:
                        lits[s + 1] = other
                        lits[k] = false_lit
                        new_list = watches[2 * other if other > 0
                                           else -2 * other + 1]
                        new_list.append(cid)
                        new_list.append(first)
                        if removed is None:
                            removed = set()
                        removed.add(kp)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                wl[i + 1] = first
                if entry is not None:
                    entry[0][kp] = first if first > 0 else -first
                    entry[1][kp] = 1 if first > 0 else -1
                else:
                    mutated = True
                if value == _FALSE:
                    # Conflict: remaining entries are untouched (kept).
                    conflict = cid
                    break
                # Enqueue the unit (inlined _enqueue: `first` is unassigned).
                var = first if first > 0 else -first
                assign[var] = _TRUE if first > 0 else _FALSE
                level[var] = len(trail_lim)
                reason[var] = cid
                phase[var] = first > 0
                trail.append(first)
            if removed:
                new_wl: list[int] = []
                append = new_wl.append
                for kp in range(pairs):
                    if kp in removed:
                        continue
                    idx = kp << 1
                    append(wl[idx])
                    append(wl[idx + 1])
                wl[:] = new_wl
                # Length changed: any cached arrays are stale; and a later
                # append could restore the old length, so drop eagerly.
                cache.pop(e, None)
            elif mutated:
                # Scalar-path blocker rewrite the length check cannot see.
                cache.pop(e, None)
            if conflict != _NO_CLAUSE:
                break
        solver.stats["propagations"] += propagated
        return conflict

    # ------------------------------------------------------------------
    # Conflict-analysis assists
    # ------------------------------------------------------------------

    def seen_buffer(self, num_vars: int) -> "_np.ndarray":
        """Zeroed per-conflict 'seen' marks (calloc beats a list build)."""
        return _np.zeros(num_vars + 1, dtype=bool)

    def compute_lbd(self, clause: Sequence["Lit"]) -> int:
        """Distinct decision levels of ``clause`` via ``np.unique``."""
        level = self._solver._level
        arr = _np.fromiter((level[q if q > 0 else -q] for q in clause),
                           dtype=_np.int64, count=len(clause))
        return int(_np.unique(arr).shape[0])
