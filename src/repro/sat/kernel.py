"""Vectorized unit-propagation kernel over the flat watcher arrays.

The interpreted loop in :meth:`repro.sat.solver.Solver._propagate` spends
most of its time re-discovering that watched clauses are already satisfied:
on check-shaped problems the overwhelming majority of watcher entries pass
the blocker test and are skipped untouched.  This kernel keeps that
fast-path out of the interpreter: the blocker literals of each long watcher
list are mirrored into contiguous numpy ``int32``/``int8`` buffers, the
current assignment is mirrored into an ``int8`` array (synced in bulk from
the trail delta), and one vector expression

    ``assign[|blockers|] * sign(blockers) != TRUE``

yields the indices of the few entries that actually need clause inspection.
Those survivors are then processed by a scalar completion loop that is a
line-for-line transcription of the interpreted body (normalize the false
literal into slot 1, blocker/first checks, replacement-watch search,
inlined unit enqueue, conflict copy-out).

Equivalence contract
--------------------
The kernel performs *exactly* the same watch-list mutations, literal swaps,
enqueues and statistics updates as the interpreted loop, in the same order.
A blocker that is true at the start of a scan is still true when the
interpreted loop would have reached it (assignments are only added during a
propagation pass), so the snapshot filter skips precisely the entries the
interpreted loop would have kept; every surviving entry re-checks the
current assignment before being processed.  Consequently a ``vector``
solver and a ``pure`` solver fed the same clauses take identical search
trajectories: same models, same learned clauses, same ``stats``.  The
differential oracles (``repro.campaign``, ``repro.fuzz``) rely on this to
compare the two kernels entry for entry, not just verdict for verdict.

The conflict path gets the same treatment.  A per-variable decision-level
mirror (``int32``, synced from the trail in :meth:`begin_analyze` — levels
are recomputed positionally from ``trail_lim`` with one ``searchsorted``,
so the sync never touches the solver's Python-level ``_level`` list) backs
three assists: :meth:`scan_reason` marks a reason clause's fresh variables
into the ``seen`` buffer and classifies them by level in one gather,
:meth:`minimize` evaluates the redundancy predicate over a whole reason
clause in bulk, and :meth:`compute_lbd` counts distinct levels with
``np.unique``.  VSIDS activities live in the solver's ``array('d')``
storage, so :meth:`rescale_activity` multiplies all of them through a
transient zero-copy ``np.frombuffer`` view.  Each assist falls back to the
interpreted loop below a clause-length threshold where the numpy
round-trip costs more than it saves; all of them reproduce the interpreted
results literal for literal, so trajectories stay bit-identical.

The kernel is optional: :func:`make_kernel` returns ``None`` when numpy is
not installed and the solver falls back to the interpreted loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via stubbed-import tests
    _np = None  # type: ignore[assignment]

if TYPE_CHECKING:
    from repro.sat.solver import Solver
    from repro.sat.types import Lit

HAVE_NUMPY = _np is not None

# Keep in sync with repro.sat.solver: assignment encoding and the "no
# clause" sentinel are shared between the interpreted and vector paths.
_TRUE = 1
_FALSE = -1
_NO_CLAUSE = -1

# Watch lists shorter than this many [cid, blocker] pairs are scanned with
# plain list indexing: below it the fixed cost of the numpy round-trip
# (array build or cache lookup, gather, nonzero) exceeds the per-pair
# savings of the vector filter.
MIN_VECTOR_PAIRS = 24

# Trail deltas and unassign batches below this size are synced scalar-wise;
# np.fromiter only pays off once the batch amortizes its setup.
_MIN_BULK_SYNC = 8

# Adaptive filter governor.  The blocker filter only pays when it prunes:
# on conflict-heavy lists most blockers are unassigned, every scan mutates
# the list (killing the blocker cache), and the numpy round-trip is pure
# overhead.  A list whose filter prunes less than a quarter of its entries
# _FILTER_PATIENCE scans in a row is demoted to the interpreted scan for
# _SCALAR_MODE_SCANS scans, then given another try.  The filter skips only
# entries whose blocker is true — entries the interpreted scan would skip
# as well — so switching modes never changes the search trajectory.
_FILTER_PATIENCE = 4
_SCALAR_MODE_SCANS = 64

# _compute_lbd switches to np.unique at this clause length (see
# Solver._compute_lbd, which keeps its own copy); below it a Python set
# comprehension is faster.
MIN_VECTOR_LBD = 64

# Reason clauses at least this long go through the vectorized analyze /
# minimize assists (see Solver's _VECTOR_ANALYZE_THRESHOLD); the numpy
# round-trip breaks even against the interpreted scan at roughly this
# length.
MIN_VECTOR_SCAN = 64


def make_kernel(solver: "Solver") -> "VectorKernel | None":
    """Build the vector kernel for ``solver``, or ``None`` without numpy."""
    if _np is None:
        return None
    return VectorKernel(solver)


class VectorKernel:
    """Numpy-backed propagation engine attached to one :class:`Solver`.

    The kernel owns two kinds of mirror state:

    * ``_assign`` — an ``int8`` copy of the solver's assignment array,
      synced lazily from the trail (``_trail_mark`` tracks the synced
      prefix) and zeroed in bulk on backtrack via :meth:`on_unassign`;
    * ``_cache`` — per-encoded-literal ``(|blocker|, sign)`` int arrays for
      long watch lists, so repeated scans of a hot list skip the
      list→ndarray conversion.  An entry is valid only while its length
      matches the live list; any mutation the length check cannot see
      (in-place blocker rewrites on the scalar path, arena compaction)
      drops the entry instead.
    """

    def __init__(self, solver: "Solver") -> None:
        self._solver = solver
        cap = max(len(solver._assign), 16)
        self._assign = _np.zeros(cap, dtype=_np.int8)
        self._trail_mark = 0
        # Decision-level mirror for the conflict-path assists.  Synced
        # lazily (only when analysis runs) from its own trail mark; stale
        # values are never read because every consumer looks up variables
        # that are currently assigned, and those are always synced.
        self._levels = _np.zeros(cap, dtype=_np.int32)
        self._level_mark = 0
        # encoded literal -> (abs(blockers) int32, sign(blockers) int8)
        self._cache: dict[int, tuple["_np.ndarray", "_np.ndarray"]] = {}
        # Per-encoded-literal filter governor: >= 0 counts consecutive
        # low-prune filtered scans, < 0 counts remaining scalar-mode scans.
        self._filter_state: list[int] = []
        # The solver may be handed to the kernel mid-life (not the case
        # today, but cheap to be correct about): sync any existing trail.
        self._sync_assign()

    # ------------------------------------------------------------------
    # Mirror maintenance
    # ------------------------------------------------------------------

    def _ensure_capacity(self, n: int) -> "_np.ndarray":
        arr = self._assign
        if arr.shape[0] < n:
            cap = max(n, 2 * arr.shape[0])
            grown = _np.zeros(cap, dtype=_np.int8)
            grown[: arr.shape[0]] = arr
            self._assign = arr = grown
            grown_levels = _np.zeros(cap, dtype=_np.int32)
            grown_levels[: self._levels.shape[0]] = self._levels
            self._levels = grown_levels
        return arr

    def _sync_assign(self) -> None:
        """Fold the unsynced trail suffix into the assignment mirror."""
        trail = self._solver._trail
        mark = self._trail_mark
        n = len(trail)
        if mark >= n:
            return
        np_assign = self._ensure_capacity(len(self._solver._assign))
        if n - mark < _MIN_BULK_SYNC:
            for idx in range(mark, n):
                lit = trail[idx]
                if lit > 0:
                    np_assign[lit] = _TRUE
                else:
                    np_assign[-lit] = _FALSE
        else:
            lits = _np.fromiter(trail[mark:], dtype=_np.int32, count=n - mark)
            np_assign[_np.abs(lits)] = _np.sign(lits).astype(_np.int8)
        self._trail_mark = n

    def on_unassign(self, removed: Sequence["Lit"], new_length: int) -> None:
        """Zero the mirror for the trail suffix the solver is popping."""
        if removed:
            np_assign = self._ensure_capacity(len(self._solver._assign))
            if len(removed) < _MIN_BULK_SYNC:
                for lit in removed:
                    np_assign[lit if lit > 0 else -lit] = 0
            else:
                lits = _np.fromiter(removed, dtype=_np.int32,
                                    count=len(removed))
                np_assign[_np.abs(lits)] = 0
        if self._trail_mark > new_length:
            self._trail_mark = new_length
        if self._level_mark > new_length:
            self._level_mark = new_length

    def invalidate(self) -> None:
        """Drop all cached watch arrays (arena compaction reorders lists)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def propagate(self) -> int:
        """Unit propagation; returns a conflicting clause id or -1.

        Semantically identical to the interpreted loop in
        ``Solver._propagate`` — see the module docstring for the
        equivalence argument.  Keep the scalar completion below in sync
        with that loop.
        """
        np = _np
        solver = self._solver
        trail = solver._trail
        trail_lim = solver._trail_lim
        assign = solver._assign
        level = solver._level
        reason = solver._reason
        phase = solver._phase
        watches = solver._watches
        arena = solver._arena
        lits = arena.lits
        start = arena.start
        size = arena.size
        deleted = arena.deleted
        cache = self._cache
        filter_state = self._filter_state
        np_assign = self._ensure_capacity(len(assign))
        propagated = 0
        conflict = _NO_CLAUSE
        while solver._qhead < len(trail):
            lit = trail[solver._qhead]
            solver._qhead += 1
            propagated += 1
            false_lit = -lit
            e = 2 * false_lit if false_lit > 0 else -2 * false_lit + 1
            wl = watches[e]
            n = len(wl)
            if not n:
                continue
            pairs = n >> 1
            use_filter = pairs >= MIN_VECTOR_PAIRS
            if use_filter:
                if e >= len(filter_state):
                    filter_state.extend(
                        [0] * (len(watches) - len(filter_state)))
                mode = filter_state[e]
                if mode < 0:
                    filter_state[e] = mode + 1
                    use_filter = False
            if not use_filter:
                # Short list (or one the governor demoted): the
                # interpreted body with in-place j-compaction (identical
                # to Solver._propagate) beats any numpy round-trip.  The
                # cache is popped when the pass changed anything a cached
                # blocker array could reflect.
                i = j = 0
                mutated = False
                while i < n:
                    cid = wl[i]
                    blocker = wl[i + 1]
                    i += 2
                    value = (assign[blocker] if blocker > 0
                             else -assign[-blocker])
                    if value == _TRUE:
                        wl[j] = cid
                        wl[j + 1] = blocker
                        j += 2
                        continue
                    if deleted[cid]:
                        continue  # lazily drop clauses removed by reduce_db
                    s = start[cid]
                    # Normalize: put the false literal in slot 1.
                    if lits[s] == false_lit:
                        lits[s] = lits[s + 1]
                        lits[s + 1] = false_lit
                    first = lits[s]
                    if first != blocker:
                        value = (assign[first] if first > 0
                                 else -assign[-first])
                        if value == _TRUE:
                            wl[j] = cid
                            wl[j + 1] = first
                            j += 2
                            mutated = True
                            continue
                    # Search for a replacement watch.
                    end = s + size[cid]
                    found = False
                    for k in range(s + 2, end):
                        other = lits[k]
                        if (assign[other] if other > 0
                                else -assign[-other]) != _FALSE:
                            lits[s + 1] = other
                            lits[k] = false_lit
                            new_list = watches[2 * other if other > 0
                                               else -2 * other + 1]
                            new_list.append(cid)
                            new_list.append(first)
                            found = True
                            break
                    if found:
                        continue
                    # Clause is unit or conflicting.
                    wl[j] = cid
                    wl[j + 1] = first
                    j += 2
                    if first != blocker:
                        mutated = True
                    if value == _FALSE:
                        # Conflict: keep remaining watches and report.
                        while i < n:
                            wl[j] = wl[i]
                            wl[j + 1] = wl[i + 1]
                            i += 2
                            j += 2
                        conflict = cid
                        break
                    # Enqueue the unit (inlined _enqueue: `first` is
                    # unassigned).
                    var = first if first > 0 else -first
                    assign[var] = _TRUE if first > 0 else _FALSE
                    level[var] = len(trail_lim)
                    reason[var] = cid
                    phase[var] = first > 0
                    trail.append(first)
                del wl[j:]
                if mutated or j != n:
                    cache.pop(e, None)
                if conflict != _NO_CLAUSE:
                    break
                continue
            # Long list: filter out blocker-satisfied entries in bulk and
            # complete the survivors scalar-wise.
            self._sync_assign()
            np_assign = self._assign  # _sync_assign may have grown it
            entry = cache.get(e)
            if entry is None or entry[0].shape[0] != pairs:
                blockers = np.array(wl[1::2], dtype=np.int32)
                entry = (np.abs(blockers),
                         np.sign(blockers).astype(np.int8))
                cache[e] = entry
            signed = np_assign[entry[0]] * entry[1]
            survivors = np.nonzero(signed != _TRUE)[0]
            if survivors.shape[0] * 4 > pairs * 3:
                # Pruned less than a quarter: another strike toward
                # demoting this list to the interpreted scan.
                mode += 1
                filter_state[e] = (-_SCALAR_MODE_SCANS
                                   if mode >= _FILTER_PATIENCE else mode)
            elif mode:
                filter_state[e] = 0
            if survivors.shape[0] == 0:
                continue  # every entry blocker-satisfied: skip the list
            removed: list[int] | None = None
            mutated = False
            for kp in survivors.tolist():
                i = kp << 1
                cid = wl[i]
                blocker = wl[i + 1]
                value = assign[blocker] if blocker > 0 else -assign[-blocker]
                if value == _TRUE:
                    continue
                if deleted[cid]:
                    # Lazily drop clauses removed by reduce_db.
                    if removed is None:
                        removed = []
                    removed.append(kp)
                    continue
                s = start[cid]
                # Normalize: put the false literal in slot 1.
                if lits[s] == false_lit:
                    lits[s] = lits[s + 1]
                    lits[s + 1] = false_lit
                first = lits[s]
                if first != blocker:
                    value = assign[first] if first > 0 else -assign[-first]
                    if value == _TRUE:
                        wl[i + 1] = first
                        mutated = True
                        continue
                # Search for a replacement watch.
                end = s + size[cid]
                found = False
                for k in range(s + 2, end):
                    other = lits[k]
                    if (assign[other] if other > 0 else -assign[-other]) \
                            != _FALSE:
                        lits[s + 1] = other
                        lits[k] = false_lit
                        new_list = watches[2 * other if other > 0
                                           else -2 * other + 1]
                        new_list.append(cid)
                        new_list.append(first)
                        if removed is None:
                            removed = []
                        removed.append(kp)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                wl[i + 1] = first
                if first != blocker:
                    mutated = True
                if value == _FALSE:
                    # Conflict: remaining entries are untouched (kept).
                    conflict = cid
                    break
                # Enqueue the unit (inlined _enqueue: `first` is unassigned).
                var = first if first > 0 else -first
                assign[var] = _TRUE if first > 0 else _FALSE
                level[var] = len(trail_lim)
                reason[var] = cid
                phase[var] = first > 0
                trail.append(first)
            if removed:
                # Compact out the removed pairs with one boolean-mask
                # gather.  The list→array round-trip is taken *after* the
                # scalar loop so in-place blocker rewrites are captured.
                flat = np.array(wl, dtype=np.int64).reshape(pairs, 2)
                keep = np.ones(pairs, dtype=bool)
                keep[removed] = False
                wl[:] = flat[keep].ravel().tolist()
                # Length changed: any cached arrays are stale; and a later
                # append could restore the old length, so drop eagerly.
                cache.pop(e, None)
            elif mutated:
                # In-place blocker rewrite the length check cannot see.
                cache.pop(e, None)
            if conflict != _NO_CLAUSE:
                break
        solver.stats["propagations"] += propagated
        return conflict

    # ------------------------------------------------------------------
    # Conflict-analysis assists
    # ------------------------------------------------------------------

    def seen_buffer(self, num_vars: int) -> "_np.ndarray":
        """Zeroed per-conflict 'seen' marks (calloc beats a list build)."""
        return _np.zeros(num_vars + 1, dtype=bool)

    def begin_analyze(self) -> None:
        """Bring the decision-level mirror up to date with the trail.

        Levels are recomputed positionally instead of gathered from the
        solver's ``_level`` list: a trail entry at index ``i`` was assigned
        at the level equal to the number of ``trail_lim`` boundaries at or
        below ``i`` (``_enqueue`` sets ``level[var] = len(trail_lim)`` and
        then appends), so one ``searchsorted`` over the boundary array
        yields the whole delta without touching a Python list per literal.
        """
        solver = self._solver
        trail = solver._trail
        mark = self._level_mark
        n = len(trail)
        if mark >= n:
            return
        self._ensure_capacity(len(solver._assign))
        levels = self._levels
        if n - mark < _MIN_BULK_SYNC:
            level = solver._level
            for idx in range(mark, n):
                lit = trail[idx]
                var = lit if lit > 0 else -lit
                levels[var] = level[var]
        else:
            np = _np
            lits = np.fromiter(trail[mark:], dtype=np.int32, count=n - mark)
            lims = np.fromiter(solver._trail_lim, dtype=np.int64,
                               count=len(solver._trail_lim))
            levels[np.abs(lits)] = np.searchsorted(
                lims, np.arange(mark, n), side="right"
            ).astype(np.int32)
        self._level_mark = n

    def scan_reason(self, s: int, n: int, skip_lit: int, current_level: int,
                    seen: "_np.ndarray", learned: list, to_bump: list) -> int:
        """One first-UIP resolution step over the clause span ``[s, s+n)``.

        Marks the clause's fresh variables (unseen, level > 0, excluding
        ``skip_lit`` — the literal being resolved on; 0 for the conflict
        clause) into ``seen``, appends them to ``to_bump``, appends the
        below-current-level literals to ``learned``, and returns how many
        sit at the current decision level — exactly what the interpreted
        scan in ``Solver._analyze`` does, in the same clause order.
        """
        np = _np
        arr = np.array(self._solver._arena.lits[s:s + n], dtype=np.int32)
        variables = np.abs(arr)
        lvl = self._levels[variables]
        fresh = (lvl > 0) & ~seen[variables]
        if skip_lit:
            fresh &= arr != skip_lit
        marked = variables[fresh]
        if marked.shape[0] == 0:
            return 0
        seen[marked] = True
        to_bump.extend(marked.tolist())
        at_current = lvl[fresh] == current_level
        count = int(at_current.sum())
        if count != marked.shape[0]:
            learned.extend(arr[fresh][~at_current].tolist())
        return count

    def minimize(self, learned: list, seen: "_np.ndarray") -> list:
        """Learned-clause minimization over the analysis ``seen`` buffer.

        Mirrors ``Solver._minimize``: a literal is redundant when every
        other literal of its reason clause is either in the learned clause
        (``seen``) or assigned at level 0.  The predicate is evaluated in
        one gather for long reason clauses and interpreted for short ones;
        both orders are irrelevant — the table is fixed for the whole pass.
        """
        np = _np
        solver = self._solver
        arena = solver._arena
        lits = arena.lits
        start = arena.start
        size = arena.size
        level = solver._level
        levels = self._levels
        reason_of = solver._reason
        result = [learned[0]]
        for q in learned[1:]:
            var_q = q if q > 0 else -q
            reason = reason_of[var_q]
            if reason == _NO_CLAUSE:
                result.append(q)
                continue
            s = start[reason]
            n = size[reason]
            if n >= MIN_VECTOR_SCAN:
                arr = np.array(lits[s:s + n], dtype=np.int32)
                variables = np.abs(arr)
                ok = (seen[variables] | (levels[variables] == 0)
                      | (variables == var_q))
                if bool(ok.all()):
                    continue
                result.append(q)
                continue
            redundant = True
            for k in range(s, s + n):
                r = lits[k]
                var_r = r if r > 0 else -r
                if var_r != var_q and not seen[var_r] and level[var_r] != 0:
                    redundant = False
                    break
            if not redundant:
                result.append(q)
        return result

    def compute_lbd(self, clause: Sequence["Lit"]) -> int:
        """Distinct decision levels of ``clause`` via ``np.unique``.

        Gathers from the level mirror (valid: ``begin_analyze`` ran for
        this conflict and backtracking rewrites neither the mirror nor the
        solver's ``_level`` entries for popped variables).
        """
        arr = _np.array(clause, dtype=_np.int32)
        return int(_np.unique(self._levels[_np.abs(arr)]).shape[0])

    def rescale_activity(self, factor: float) -> None:
        """Multiply every variable activity by ``factor`` in one sweep.

        The solver stores activities in an ``array('d')``, so a transient
        ``np.frombuffer`` view rescales them zero-copy.  The view must not
        outlive this call: while it exists the buffer is pinned and
        ``array.append`` (``new_var``) would raise ``BufferError``.
        """
        view = _np.frombuffer(self._solver._activity, dtype=_np.float64)
        view *= factor
