"""Round-trip to an external CDCL solver over the DIMACS bridge.

The built-in solver is the differential reference; this module lets any
SAT-competition-conformant binary (picosat, cadical, kissat, minisat
wrappers, ...) serve as a fast production path.  The contract is the
standard one:

* input: a DIMACS CNF file passed as the last command-line argument,
* output: an ``s SATISFIABLE`` / ``s UNSATISFIABLE`` status line and, for
  satisfiable formulas, ``v`` lines listing the model literals terminated
  by ``0``,
* exit code: 10 for SAT, 20 for UNSAT.

``python -m repro.sat.dimacs solve`` speaks exactly this protocol, so the
external path can be exercised end to end without any third-party binary
by pointing it back at the in-tree CLI.

The API layer exposes this through the backend registry as
``Options(solver="dimacs:<command>")`` — see
:class:`repro.api.backends.DimacsBackend`.

For model enumeration the one-shot contract is wasteful: every model pays
a process spawn plus a full DIMACS dump, and the external solver relearns
the formula from scratch each round.  :class:`IncrementalExternalSolver`
keeps **one** long-lived process alive and streams clauses to it over
stdin using the iCNF convention (the incremental-DIMACS dialect IPASIR
tooling and ``picosat --all``-style loops standardized on):

* the client sends a ``p inccnf`` header, then clause lines terminated
  by ``0``, interleaved with solve requests ``a <assumptions> 0``;
* after each ``a`` line the server answers with the usual ``s``/``v``
  lines (``v`` lines terminated by ``v 0``) and keeps reading;
* closing stdin ends the session; the server exits 0.

``python -m repro.sat.dimacs solve --incremental`` implements the server
side of this protocol on top of the in-tree solver's native incremental
API, so the persistent path is testable without third-party binaries.
The API layer exposes it as ``Options(solver="dimacs-inc:<command>")``
— see :class:`repro.api.backends.DimacsIncBackend`.
"""

from __future__ import annotations

import os
import queue
import shlex
import subprocess
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.sat.cnf import CNF
from repro.sat.dimacs import dumps
from repro.sat.types import Model, Status

_EXIT_SAT = 10
_EXIT_UNSAT = 20


class ExternalSolverError(RuntimeError):
    """The external solver could not be run or spoke a broken protocol."""


@dataclass(frozen=True)
class ExternalRun:
    """Outcome of one external-solver invocation."""

    status: Status
    model: Model | None
    wall_seconds: float
    exit_code: int


def parse_solver_output(text: str, num_vars: int,
                        exit_code: int | None = None) -> tuple[Status, Model | None]:
    """Parse SAT-competition ``s``/``v`` lines into a status and model.

    ``exit_code`` (10/20) is authoritative when provided; the ``s`` line is
    the fallback for harnesses that only capture the stream.  Variables the
    solver leaves unmentioned default to False — the same completion rule
    :func:`repro.kodkod.instance.extract_instance` applies to variables the
    simplifier dropped from the CNF.  Returns ``(SAT, None)`` when the
    solver reported SAT but printed no model (model printing disabled).
    """
    status: Status | None = None
    lits: list[int] = []
    saw_v_line = False
    for raw in text.splitlines():
        line = raw.strip()
        if line.startswith("s ") or line == "s":
            word = line[1:].strip().upper()
            if word == "SATISFIABLE":
                status = Status.SAT
            elif word == "UNSATISFIABLE":
                status = Status.UNSAT
        elif line.startswith("v ") or line == "v":
            saw_v_line = True
            for token in line[1:].split():
                try:
                    lit = int(token)
                except ValueError as exc:
                    raise ExternalSolverError(
                        f"malformed v-line token {token!r} in solver output"
                    ) from exc
                if lit != 0:
                    lits.append(lit)
    if exit_code == _EXIT_SAT:
        status = Status.SAT
    elif exit_code == _EXIT_UNSAT:
        status = Status.UNSAT
    if status is None:
        raise ExternalSolverError(
            "solver output carried no 's SATISFIABLE'/'s UNSATISFIABLE' "
            "line and the exit code was neither 10 nor 20"
        )
    if status is not Status.SAT:
        return status, None
    if not saw_v_line:
        return status, None
    values = {var: False for var in range(1, num_vars + 1)}
    for lit in lits:
        var = abs(lit)
        if var > num_vars:
            raise ExternalSolverError(
                f"solver model mentions variable {var} but the formula "
                f"only has {num_vars}; output does not match the input file"
            )
        values[var] = lit > 0
    return status, Model(values)


class ExternalSolver:
    """Run an external CDCL binary on CNF formulas via temp DIMACS files.

    ``command`` is the solver invocation without the file argument, either
    a pre-split argv or a shell-ish string split with :mod:`shlex`
    (``"picosat"``, ``"python -m repro.sat.dimacs solve"``, ...).
    """

    def __init__(self, command: str | list[str],
                 timeout: float | None = None) -> None:
        argv = shlex.split(command) if isinstance(command, str) else list(command)
        if not argv:
            raise ValueError(
                "external solver command is empty: pass e.g. "
                "Options(solver='dimacs:picosat')"
            )
        self.command = argv
        self.timeout = timeout

    def solve_cnf(self, cnf: CNF, comments: list[str] | None = None) -> ExternalRun:
        """Dump ``cnf`` to a temp file, invoke the solver, parse the answer."""
        handle = tempfile.NamedTemporaryFile(
            mode="w", suffix=".cnf", prefix="repro-", encoding="ascii",
            delete=False)
        try:
            with handle:
                handle.write(dumps(cnf, comments=comments))
            started = time.perf_counter()
            try:
                completed = subprocess.run(
                    self.command + [handle.name],
                    capture_output=True,
                    text=True,
                    timeout=self.timeout,
                )
            except FileNotFoundError as exc:
                raise ExternalSolverError(
                    f"external solver command {self.command[0]!r} was not "
                    "found on PATH. Install a CDCL solver (e.g. `apt-get "
                    "install picosat`) and select it with "
                    f"Options(solver='dimacs:{self.command[0]}'), or use "
                    "the dependency-free in-tree CLI: "
                    "Options(solver='dimacs:python -m repro.sat.dimacs "
                    "solve')"
                ) from exc
            except subprocess.TimeoutExpired as exc:
                # subprocess.run kills the child before raising; report
                # the budget that was exceeded.
                raise ExternalSolverError(
                    f"external solver {' '.join(self.command)!r} exceeded "
                    f"the {self.timeout:.1f}s timeout and was killed"
                ) from exc
            wall = time.perf_counter() - started
            if completed.returncode not in (_EXIT_SAT, _EXIT_UNSAT):
                stderr = (completed.stderr or "").strip()
                raise ExternalSolverError(
                    f"external solver {' '.join(self.command)!r} exited "
                    f"with code {completed.returncode} (expected 10 for SAT "
                    f"or 20 for UNSAT)"
                    + (f"; stderr: {stderr[:500]}" if stderr else "")
                )
            status, model = parse_solver_output(
                completed.stdout, cnf.num_vars,
                exit_code=completed.returncode)
            return ExternalRun(status=status, model=model,
                               wall_seconds=wall,
                               exit_code=completed.returncode)
        finally:
            try:
                os.unlink(handle.name)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass


class IncrementalExternalSolver:
    """One persistent external solver process, fed clauses incrementally.

    Speaks the iCNF stdin protocol described in the module docstring.
    The process is spawned lazily on the first :meth:`load_cnf` /
    :meth:`add_clause` / :meth:`solve` call and reused across solves;
    :attr:`spawn_count` / :attr:`solve_count` expose how many spawns and
    solve rounds actually happened, which is what lets tests assert the
    "one spawn for N models" contract of enumeration.

    ``timeout`` is the per-*solve* budget (the spawn itself is not
    budgeted: a hung spawn surfaces as a hung first solve).  On timeout
    or mid-stream death of the child, the process is killed and
    :class:`ExternalSolverError` is raised with the child's stderr; the
    instance is then unusable and must be discarded.

    Usable as a context manager; :meth:`close` shuts stdin down cleanly
    and reaps the child.
    """

    def __init__(self, command: str | list[str],
                 timeout: float | None = None) -> None:
        argv = shlex.split(command) if isinstance(command, str) else list(command)
        if not argv:
            raise ValueError(
                "external solver command is empty: pass e.g. "
                "Options(solver='dimacs-inc:python -m repro.sat.dimacs "
                "solve --incremental')"
            )
        self.command = argv
        self.timeout = timeout
        self.spawn_count = 0
        self.solve_count = 0
        self.num_vars = 0
        self._process: subprocess.Popen | None = None
        self._lines: queue.Queue[str | None] = queue.Queue()
        self._stderr_chunks: list[str] = []
        self._dead = False

    # -- process lifecycle -------------------------------------------------

    def _ensure_process(self) -> subprocess.Popen:
        if self._dead:
            raise ExternalSolverError(
                f"incremental solver {' '.join(self.command)!r} already "
                "failed or was closed; create a fresh instance"
            )
        if self._process is not None:
            return self._process
        try:
            process = subprocess.Popen(
                self.command,
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
        except FileNotFoundError as exc:
            self._dead = True
            raise ExternalSolverError(
                f"incremental solver command {self.command[0]!r} was not "
                "found on PATH. Use the dependency-free in-tree server: "
                "Options(solver='dimacs-inc:python -m repro.sat.dimacs "
                "solve --incremental')"
            ) from exc
        self._process = process
        self.spawn_count += 1
        # Reader threads decouple the protocol from pipe buffering: stdout
        # lines land on a queue the solve loop drains with a deadline, and
        # stderr is slurped so a chatty child can never fill its pipe and
        # deadlock against us.
        threading.Thread(
            target=self._read_stdout, args=(process.stdout,),
            daemon=True).start()
        threading.Thread(
            target=self._read_stderr, args=(process.stderr,),
            daemon=True).start()
        self._send("p inccnf\n")
        return process

    def _read_stdout(self, stream) -> None:
        for line in stream:
            self._lines.put(line)
        self._lines.put(None)

    def _read_stderr(self, stream) -> None:
        for line in stream:
            self._stderr_chunks.append(line)

    def _stderr_tail(self) -> str:
        tail = "".join(self._stderr_chunks).strip()
        return f"; stderr: {tail[:500]}" if tail else ""

    def _kill(self) -> None:
        self._dead = True
        process = self._process
        if process is None:
            return
        if process.poll() is None:
            process.kill()
        process.wait()
        for stream in (process.stdin, process.stdout, process.stderr):
            if stream is not None:
                try:
                    stream.close()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass

    def _fail(self, message: str, cause: BaseException | None = None):
        self._kill()
        error = ExternalSolverError(message + self._stderr_tail())
        if cause is not None:
            raise error from cause
        raise error

    def _send(self, text: str) -> None:
        process = self._ensure_process()
        try:
            process.stdin.write(text)
        except (BrokenPipeError, OSError) as exc:
            self._fail(
                f"incremental solver {' '.join(self.command)!r} died while "
                "clauses were being streamed to it (does the command "
                "implement the iCNF stdin protocol? plain one-shot solvers "
                "need the 'dimacs:' backend instead)", exc)

    # -- protocol ----------------------------------------------------------

    def load_cnf(self, cnf: CNF) -> None:
        """Stream every clause of ``cnf`` to the process (spawning it)."""
        chunks: list[str] = []
        for clause in cnf.clauses():
            chunks.append(" ".join(str(lit) for lit in clause))
            chunks.append(" 0\n" if clause else "0\n")
        self.num_vars = max(self.num_vars, cnf.num_vars)
        self._send("".join(chunks))

    def add_clause(self, lits: Sequence[int]) -> None:
        """Stream one clause (e.g. a blocking clause between solves)."""
        for lit in lits:
            self.num_vars = max(self.num_vars, abs(lit))
        self._send(" ".join(str(lit) for lit in lits) + " 0\n"
                   if lits else "0\n")

    def solve(self, assumptions: Iterable[int] = ()) -> ExternalRun:
        """Request one solve round and parse the ``s``/``v`` answer."""
        process = self._ensure_process()
        started = time.perf_counter()
        self._send("a " + " ".join(str(lit) for lit in assumptions) + " 0\n")
        try:
            process.stdin.flush()
        except (BrokenPipeError, OSError) as exc:
            self._fail(
                f"incremental solver {' '.join(self.command)!r} died "
                "before answering a solve request", exc)
        deadline = (None if self.timeout is None
                    else started + self.timeout)
        response: list[str] = []
        sat_answer = False
        while True:
            remaining = None if deadline is None else deadline - time.perf_counter()
            if remaining is not None and remaining <= 0:
                self._fail(
                    f"incremental solver {' '.join(self.command)!r} "
                    f"exceeded the {self.timeout:.1f}s per-solve timeout "
                    "and was killed")
            try:
                line = self._lines.get(timeout=remaining)
            except queue.Empty:
                self._fail(
                    f"incremental solver {' '.join(self.command)!r} "
                    f"exceeded the {self.timeout:.1f}s per-solve timeout "
                    "and was killed")
            if line is None:
                self._fail(
                    f"incremental solver {' '.join(self.command)!r} exited "
                    "mid-solve without completing its s/v answer")
            response.append(line)
            stripped = line.strip()
            if stripped.startswith("s"):
                word = stripped[1:].strip().upper()
                if word == "UNSATISFIABLE":
                    break
                sat_answer = word == "SATISFIABLE"
            elif sat_answer and stripped.startswith("v"):
                # The model is complete at the "0" terminator; servers may
                # spread it over many v lines.
                if "0" in stripped[1:].split():
                    break
        wall = time.perf_counter() - started
        self.solve_count += 1
        try:
            status, model = parse_solver_output(
                "".join(response), self.num_vars)
        except ExternalSolverError:
            self._kill()
            raise
        exit_code = _EXIT_SAT if status is Status.SAT else _EXIT_UNSAT
        return ExternalRun(status=status, model=model, wall_seconds=wall,
                           exit_code=exit_code)

    def close(self) -> None:
        """End the session: close stdin, reap the child."""
        process = self._process
        self._dead = True
        if process is None:
            return
        try:
            if process.stdin is not None:
                process.stdin.close()
            process.wait(timeout=10)
        except (OSError, subprocess.TimeoutExpired):
            pass
        self._kill()

    def __enter__(self) -> "IncrementalExternalSolver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
