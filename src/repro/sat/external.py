"""Round-trip to an external CDCL solver over the DIMACS bridge.

The built-in solver is the differential reference; this module lets any
SAT-competition-conformant binary (picosat, cadical, kissat, minisat
wrappers, ...) serve as a fast production path.  The contract is the
standard one:

* input: a DIMACS CNF file passed as the last command-line argument,
* output: an ``s SATISFIABLE`` / ``s UNSATISFIABLE`` status line and, for
  satisfiable formulas, ``v`` lines listing the model literals terminated
  by ``0``,
* exit code: 10 for SAT, 20 for UNSAT.

``python -m repro.sat.dimacs solve`` speaks exactly this protocol, so the
external path can be exercised end to end without any third-party binary
by pointing it back at the in-tree CLI.

The API layer exposes this through the backend registry as
``Options(solver="dimacs:<command>")`` — see
:class:`repro.api.backends.DimacsBackend`.
"""

from __future__ import annotations

import os
import shlex
import subprocess
import tempfile
import time
from dataclasses import dataclass

from repro.sat.cnf import CNF
from repro.sat.dimacs import dumps
from repro.sat.types import Model, Status

_EXIT_SAT = 10
_EXIT_UNSAT = 20


class ExternalSolverError(RuntimeError):
    """The external solver could not be run or spoke a broken protocol."""


@dataclass(frozen=True)
class ExternalRun:
    """Outcome of one external-solver invocation."""

    status: Status
    model: Model | None
    wall_seconds: float
    exit_code: int


def parse_solver_output(text: str, num_vars: int,
                        exit_code: int | None = None) -> tuple[Status, Model | None]:
    """Parse SAT-competition ``s``/``v`` lines into a status and model.

    ``exit_code`` (10/20) is authoritative when provided; the ``s`` line is
    the fallback for harnesses that only capture the stream.  Variables the
    solver leaves unmentioned default to False — the same completion rule
    :func:`repro.kodkod.instance.extract_instance` applies to variables the
    simplifier dropped from the CNF.  Returns ``(SAT, None)`` when the
    solver reported SAT but printed no model (model printing disabled).
    """
    status: Status | None = None
    lits: list[int] = []
    saw_v_line = False
    for raw in text.splitlines():
        line = raw.strip()
        if line.startswith("s ") or line == "s":
            word = line[1:].strip().upper()
            if word == "SATISFIABLE":
                status = Status.SAT
            elif word == "UNSATISFIABLE":
                status = Status.UNSAT
        elif line.startswith("v ") or line == "v":
            saw_v_line = True
            for token in line[1:].split():
                try:
                    lit = int(token)
                except ValueError as exc:
                    raise ExternalSolverError(
                        f"malformed v-line token {token!r} in solver output"
                    ) from exc
                if lit != 0:
                    lits.append(lit)
    if exit_code == _EXIT_SAT:
        status = Status.SAT
    elif exit_code == _EXIT_UNSAT:
        status = Status.UNSAT
    if status is None:
        raise ExternalSolverError(
            "solver output carried no 's SATISFIABLE'/'s UNSATISFIABLE' "
            "line and the exit code was neither 10 nor 20"
        )
    if status is not Status.SAT:
        return status, None
    if not saw_v_line:
        return status, None
    values = {var: False for var in range(1, num_vars + 1)}
    for lit in lits:
        var = abs(lit)
        if var > num_vars:
            raise ExternalSolverError(
                f"solver model mentions variable {var} but the formula "
                f"only has {num_vars}; output does not match the input file"
            )
        values[var] = lit > 0
    return status, Model(values)


class ExternalSolver:
    """Run an external CDCL binary on CNF formulas via temp DIMACS files.

    ``command`` is the solver invocation without the file argument, either
    a pre-split argv or a shell-ish string split with :mod:`shlex`
    (``"picosat"``, ``"python -m repro.sat.dimacs solve"``, ...).
    """

    def __init__(self, command: str | list[str],
                 timeout: float | None = None) -> None:
        argv = shlex.split(command) if isinstance(command, str) else list(command)
        if not argv:
            raise ValueError(
                "external solver command is empty: pass e.g. "
                "Options(solver='dimacs:picosat')"
            )
        self.command = argv
        self.timeout = timeout

    def solve_cnf(self, cnf: CNF, comments: list[str] | None = None) -> ExternalRun:
        """Dump ``cnf`` to a temp file, invoke the solver, parse the answer."""
        handle = tempfile.NamedTemporaryFile(
            mode="w", suffix=".cnf", prefix="repro-", encoding="ascii",
            delete=False)
        try:
            with handle:
                handle.write(dumps(cnf, comments=comments))
            started = time.perf_counter()
            try:
                completed = subprocess.run(
                    self.command + [handle.name],
                    capture_output=True,
                    text=True,
                    timeout=self.timeout,
                )
            except FileNotFoundError as exc:
                raise ExternalSolverError(
                    f"external solver command {self.command[0]!r} was not "
                    "found on PATH. Install a CDCL solver (e.g. `apt-get "
                    "install picosat`) and select it with "
                    f"Options(solver='dimacs:{self.command[0]}'), or use "
                    "the dependency-free in-tree CLI: "
                    "Options(solver='dimacs:python -m repro.sat.dimacs "
                    "solve')"
                ) from exc
            except subprocess.TimeoutExpired as exc:
                # subprocess.run kills the child before raising; report
                # the budget that was exceeded.
                raise ExternalSolverError(
                    f"external solver {' '.join(self.command)!r} exceeded "
                    f"the {self.timeout:.1f}s timeout and was killed"
                ) from exc
            wall = time.perf_counter() - started
            if completed.returncode not in (_EXIT_SAT, _EXIT_UNSAT):
                stderr = (completed.stderr or "").strip()
                raise ExternalSolverError(
                    f"external solver {' '.join(self.command)!r} exited "
                    f"with code {completed.returncode} (expected 10 for SAT "
                    f"or 20 for UNSAT)"
                    + (f"; stderr: {stderr[:500]}" if stderr else "")
                )
            status, model = parse_solver_output(
                completed.stdout, cnf.num_vars,
                exit_code=completed.returncode)
            return ExternalRun(status=status, model=model,
                               wall_seconds=wall,
                               exit_code=completed.returncode)
        finally:
            try:
                os.unlink(handle.name)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
