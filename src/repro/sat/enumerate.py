"""Model enumeration via blocking clauses.

The Alloy Analyzer's ``run`` command enumerates satisfying instances; this
module provides the same capability at the CNF level.  After each model is
found, a *blocking clause* over the projection variables excludes it and the
solver is asked again, until UNSAT.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.sat.cnf import CNF
from repro.sat.solver import Solver
from repro.sat.types import Model, Status, Var


def iter_models(
    cnf: CNF,
    projection: Sequence[Var] | None = None,
    limit: int | None = None,
) -> Iterator[Model]:
    """Yield models of ``cnf``, distinct on ``projection`` variables.

    ``projection=None`` means all variables of the CNF.  ``limit`` bounds the
    number of models yielded (None = all).  Auxiliary Tseitin variables are
    typically excluded via ``projection`` so that each *semantic* solution is
    reported once.
    """
    if limit is not None and limit < 0:
        raise ValueError("limit must be non-negative")
    solver = Solver()
    if not solver.add_cnf(cnf):
        return
    if projection is None:
        variables: list[Var] = list(range(1, cnf.num_vars + 1))
    else:
        variables = list(projection)
    count = 0
    while limit is None or count < limit:
        status = solver.solve()
        if status is not Status.SAT:
            return
        model = solver.model()
        yield model
        count += 1
        if not variables:
            return  # a single model exists modulo the empty projection
        blocking = [-var if model[var] else var for var in variables]
        if not solver.add_clause(blocking):
            return


def count_models(cnf: CNF, projection: Sequence[Var] | None = None,
                 limit: int | None = None) -> int:
    """Count models distinct on ``projection`` (up to ``limit``)."""
    return sum(1 for _ in iter_models(cnf, projection, limit))
