"""Lightweight CNF preprocessing: unit propagation and pure literals.

These rewrites preserve satisfiability and every model over the remaining
variables; they mirror the cheap simplification pass Kodkod applies before
handing instances to the SAT backend, and are also used by tests as an
independent (slow but obviously correct) reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sat.cnf import CNF
from repro.sat.types import Lit


@dataclass
class SimplifyResult:
    """Outcome of preprocessing.

    ``fixed`` maps variables to forced truth values; ``unsat`` is True when a
    contradiction was derived; ``cnf`` holds the residual clauses.
    """

    cnf: CNF
    fixed: dict[int, bool] = field(default_factory=dict)
    unsat: bool = False


def propagate_units(cnf: CNF) -> SimplifyResult:
    """Exhaustively apply the unit-clause rule."""
    clauses: list[list[Lit]] = [list(cl) for cl in cnf.clauses()]
    fixed: dict[int, bool] = {}

    def lit_value(lit: Lit) -> bool | None:
        var = abs(lit)
        if var not in fixed:
            return None
        return fixed[var] if lit > 0 else not fixed[var]

    changed = True
    while changed:
        changed = False
        remaining: list[list[Lit]] = []
        for clause in clauses:
            new_clause: list[Lit] = []
            satisfied = False
            for lit in clause:
                value = lit_value(lit)
                if value is True:
                    satisfied = True
                    break
                if value is None:
                    new_clause.append(lit)
            if satisfied:
                changed = True
                continue
            if not new_clause:
                result = CNF(cnf.num_vars)
                return SimplifyResult(result, fixed, unsat=True)
            if len(new_clause) == 1:
                lit = new_clause[0]
                fixed[abs(lit)] = lit > 0
                changed = True
                continue
            if len(new_clause) != len(clause):
                changed = True
            remaining.append(new_clause)
        clauses = remaining
    residual = CNF(cnf.num_vars)
    for clause in clauses:
        residual.add_clause(clause)
    return SimplifyResult(residual, fixed)


def eliminate_pure_literals(cnf: CNF) -> SimplifyResult:
    """Fix variables that occur with a single polarity."""
    polarity: dict[int, set[bool]] = {}
    for clause in cnf.clauses():
        for lit in clause:
            polarity.setdefault(abs(lit), set()).add(lit > 0)
    pure = {var: next(iter(signs)) for var, signs in polarity.items() if len(signs) == 1}
    residual = CNF(cnf.num_vars)
    for clause in cnf.clauses():
        if any(abs(lit) in pure and (lit > 0) == pure[abs(lit)] for lit in clause):
            continue
        residual.add_clause(clause)
    return SimplifyResult(residual, dict(pure))


def simplify(cnf: CNF) -> SimplifyResult:
    """Alternate unit propagation and pure-literal elimination to fixpoint."""
    fixed: dict[int, bool] = {}
    current = cnf
    while True:
        units = propagate_units(current)
        fixed.update(units.fixed)
        if units.unsat:
            return SimplifyResult(units.cnf, fixed, unsat=True)
        pures = eliminate_pure_literals(units.cnf)
        fixed.update(pures.fixed)
        if not units.fixed and not pures.fixed:
            return SimplifyResult(pures.cnf, fixed)
        current = pures.cnf


def brute_force_satisfiable(cnf: CNF) -> bool:
    """Exponential satisfiability test used as a test oracle (<= ~20 vars)."""
    num_vars = cnf.num_vars
    if num_vars > 24:
        raise ValueError("brute force limited to 24 variables")
    clauses = [tuple(cl) for cl in cnf.clauses()]
    for bits in range(1 << num_vars):
        ok = True
        for clause in clauses:
            clause_ok = False
            for lit in clause:
                var = abs(lit)
                value = bool(bits >> (var - 1) & 1)
                if (lit > 0) == value:
                    clause_ok = True
                    break
            if not clause_ok:
                ok = False
                break
        if ok:
            return True
    return False


def brute_force_count(cnf: CNF) -> int:
    """Count all full assignments satisfying ``cnf`` (test oracle)."""
    num_vars = cnf.num_vars
    if num_vars > 24:
        raise ValueError("brute force limited to 24 variables")
    clauses = [tuple(cl) for cl in cnf.clauses()]
    count = 0
    for bits in range(1 << num_vars):
        ok = True
        for clause in clauses:
            clause_ok = False
            for lit in clause:
                var = abs(lit)
                value = bool(bits >> (var - 1) & 1)
                if (lit > 0) == value:
                    clause_ok = True
                    break
            if not clause_ok:
                ok = False
                break
        if ok:
            count += 1
    return count
