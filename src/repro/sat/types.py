"""Core SAT types: variables, literals, clauses and assignments.

Literals follow the DIMACS convention used by most solvers: a variable is a
positive integer ``v >= 1``; the literal ``v`` asserts the variable is true
and ``-v`` asserts it is false.  Internally the solver works with *encoded*
literals (``2*v`` / ``2*v + 1``) for fast array indexing, but everything in
the public API speaks DIMACS literals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator, Sequence

Lit = int
Var = int


def var_of(lit: Lit) -> Var:
    """Return the variable underlying a DIMACS literal."""
    return abs(lit)


def is_positive(lit: Lit) -> bool:
    """True when the literal asserts its variable."""
    return lit > 0


def negate(lit: Lit) -> Lit:
    """Return the complementary literal."""
    return -lit


class Status(Enum):
    """Result of a satisfiability query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class Clause:
    """An immutable disjunction of literals.

    Used at the API boundary; the solver keeps its own mutable clause
    representation for the watched-literal scheme.
    """

    literals: tuple[Lit, ...]

    def __post_init__(self) -> None:
        for lit in self.literals:
            if lit == 0:
                raise ValueError("0 is not a valid DIMACS literal")

    def __iter__(self) -> Iterator[Lit]:
        return iter(self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def variables(self) -> set[Var]:
        """The set of variables mentioned by this clause."""
        return {var_of(lit) for lit in self.literals}

    def is_tautology(self) -> bool:
        """True when the clause contains both a literal and its negation."""
        lits = set(self.literals)
        return any(-lit in lits for lit in lits)

    def simplified(self) -> "Clause":
        """Return an equivalent clause without duplicate literals."""
        seen: dict[Lit, None] = {}
        for lit in self.literals:
            seen.setdefault(lit, None)
        return Clause(tuple(seen))


def clause(*lits: Lit) -> Clause:
    """Convenience constructor: ``clause(1, -2, 3)``."""
    return Clause(tuple(lits))


class ClauseArena:
    """Flat clause storage: one shared literal array plus parallel metadata.

    Clauses are identified by small integer ids indexing parallel arrays:
    ``start[cid]``/``size[cid]`` delimit the clause's span in the shared
    ``lits`` array, and ``lbd``/``activity``/``learned``/``deleted`` carry
    the clause-database metadata the solver's reduction policy needs.

    Compared to one heap object per clause, the arena removes both the
    per-clause allocation on the solver's load path and the attribute
    dereferences on its propagation path; deleted clauses are flagged and
    their storage reclaimed by :meth:`Solver.reduce_db`-driven compaction
    (see :mod:`repro.sat.solver`).
    """

    __slots__ = ("lits", "start", "size", "lbd", "activity", "learned",
                 "deleted", "live_lits")

    def __init__(self) -> None:
        self.lits: list[Lit] = []
        self.start: list[int] = []
        self.size: list[int] = []
        self.lbd: list[int] = []
        self.activity: list[float] = []
        self.learned: bytearray = bytearray()
        self.deleted: bytearray = bytearray()
        # Literal count of live (non-deleted) clauses; len(self.lits) minus
        # this is the wasted space that triggers compaction.
        self.live_lits: int = 0

    def add(self, lits: Sequence[Lit], learned: bool = False,
            lbd: int = 0) -> int:
        """Append a clause; returns its id."""
        cid = len(self.start)
        self.start.append(len(self.lits))
        self.size.append(len(lits))
        self.lits.extend(lits)
        self.lbd.append(lbd)
        self.activity.append(0.0)
        self.learned.append(1 if learned else 0)
        self.deleted.append(0)
        self.live_lits += len(lits)
        return cid

    def delete(self, cid: int) -> None:
        """Flag a clause deleted (evicted lazily from watch lists)."""
        if not self.deleted[cid]:
            self.deleted[cid] = 1
            self.live_lits -= self.size[cid]

    def clause(self, cid: int) -> list[Lit]:
        """The clause's literals (a copy)."""
        s = self.start[cid]
        return self.lits[s:s + self.size[cid]]

    def __len__(self) -> int:
        return len(self.start)


class VarOrderHeap:
    """Indexed binary max-heap over variable activities with decrease-key.

    The solver's VSIDS branching order.  Each variable appears **at most
    once**; ``_pos`` maps a variable to its slot in the heap array (or -1
    when absent), which is what makes in-place reordering possible:
    bumping a variable's activity sifts its existing entry up
    (:meth:`update`) instead of pushing a duplicate the way a lazy
    ``heapq`` scheme does.  Backtracking therefore re-inserts only the
    variables that were actually consumed, and :meth:`pop` never has to
    skip stale entries — the heap size is bounded by the variable count
    rather than growing with the number of backtracks.

    Ordering: higher activity first; ties break toward the smaller
    variable index, so the pop order is deterministic (a total order —
    variable indices are unique).

    ``activity`` is held by reference and shared with the solver, which
    mutates it in place (bump, rescale).  A uniform rescale preserves the
    relative order, so no re-heapify is needed; a bump must be followed
    by :meth:`update` on the bumped variable.
    """

    __slots__ = ("activity", "_heap", "_pos")

    def __init__(self, activity) -> None:
        self.activity = activity
        self._heap: list[Var] = []
        self._pos: list[int] = [-1]  # index 0 unused

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __contains__(self, var: Var) -> bool:
        return var < len(self._pos) and self._pos[var] >= 0

    def grow(self, var: Var) -> None:
        """Extend the position table to cover variables up to ``var``."""
        pos = self._pos
        while len(pos) <= var:
            pos.append(-1)

    def _sift_up(self, i: int) -> None:
        heap, pos, activity = self._heap, self._pos, self.activity
        var = heap[i]
        act = activity[var]
        while i > 0:
            parent = (i - 1) >> 1
            pvar = heap[parent]
            pact = activity[pvar]
            if pact > act or (pact == act and pvar < var):
                break
            heap[i] = pvar
            pos[pvar] = i
            i = parent
        heap[i] = var
        pos[var] = i

    def _sift_down(self, i: int) -> None:
        heap, pos, activity = self._heap, self._pos, self.activity
        n = len(heap)
        var = heap[i]
        act = activity[var]
        while True:
            left = 2 * i + 1
            if left >= n:
                break
            best = left
            bvar = heap[left]
            bact = activity[bvar]
            right = left + 1
            if right < n:
                rvar = heap[right]
                ract = activity[rvar]
                if ract > bact or (ract == bact and rvar < bvar):
                    best, bvar, bact = right, rvar, ract
            if act > bact or (act == bact and var < bvar):
                break
            heap[i] = bvar
            pos[bvar] = i
            i = best
        heap[i] = var
        pos[var] = i

    def push(self, var: Var) -> None:
        """Insert ``var``; a no-op when it is already in the heap."""
        self.grow(var)
        if self._pos[var] >= 0:
            return
        self._heap.append(var)
        self._sift_up(len(self._heap) - 1)

    def pop(self) -> Var | None:
        """Remove and return the highest-activity variable, or ``None``."""
        heap = self._heap
        if not heap:
            return None
        top = heap[0]
        self._pos[top] = -1
        last = heap.pop()
        if heap:
            heap[0] = last
            self._sift_down(0)
        return top

    def update(self, var: Var) -> None:
        """Restore heap order after ``var``'s activity increased."""
        if var < len(self._pos):
            i = self._pos[var]
            if i >= 0:
                self._sift_up(i)


@dataclass
class Model:
    """A satisfying assignment, mapping every variable to a boolean."""

    values: dict[Var, bool] = field(default_factory=dict)

    def __getitem__(self, var: Var) -> bool:
        return self.values[var]

    def __contains__(self, var: Var) -> bool:
        return var in self.values

    def value_of(self, lit: Lit) -> bool:
        """Truth value of a literal under this model."""
        value = self.values[var_of(lit)]
        return value if is_positive(lit) else not value

    def satisfies_clause(self, cl: Clause | Sequence[Lit]) -> bool:
        """True when at least one literal of ``cl`` is true."""
        return any(self.value_of(lit) for lit in cl)

    def satisfies(self, clauses: Iterable[Clause | Sequence[Lit]]) -> bool:
        """True when every clause is satisfied."""
        return all(self.satisfies_clause(cl) for cl in clauses)

    def as_literals(self) -> list[Lit]:
        """Render the model as a sorted list of true literals."""
        return [v if value else -v for v, value in sorted(self.values.items())]
