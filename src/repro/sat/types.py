"""Core SAT types: variables, literals, clauses and assignments.

Literals follow the DIMACS convention used by most solvers: a variable is a
positive integer ``v >= 1``; the literal ``v`` asserts the variable is true
and ``-v`` asserts it is false.  Internally the solver works with *encoded*
literals (``2*v`` / ``2*v + 1``) for fast array indexing, but everything in
the public API speaks DIMACS literals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator, Sequence

Lit = int
Var = int


def var_of(lit: Lit) -> Var:
    """Return the variable underlying a DIMACS literal."""
    return abs(lit)


def is_positive(lit: Lit) -> bool:
    """True when the literal asserts its variable."""
    return lit > 0


def negate(lit: Lit) -> Lit:
    """Return the complementary literal."""
    return -lit


class Status(Enum):
    """Result of a satisfiability query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class Clause:
    """An immutable disjunction of literals.

    Used at the API boundary; the solver keeps its own mutable clause
    representation for the watched-literal scheme.
    """

    literals: tuple[Lit, ...]

    def __post_init__(self) -> None:
        for lit in self.literals:
            if lit == 0:
                raise ValueError("0 is not a valid DIMACS literal")

    def __iter__(self) -> Iterator[Lit]:
        return iter(self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def variables(self) -> set[Var]:
        """The set of variables mentioned by this clause."""
        return {var_of(lit) for lit in self.literals}

    def is_tautology(self) -> bool:
        """True when the clause contains both a literal and its negation."""
        lits = set(self.literals)
        return any(-lit in lits for lit in lits)

    def simplified(self) -> "Clause":
        """Return an equivalent clause without duplicate literals."""
        seen: dict[Lit, None] = {}
        for lit in self.literals:
            seen.setdefault(lit, None)
        return Clause(tuple(seen))


def clause(*lits: Lit) -> Clause:
    """Convenience constructor: ``clause(1, -2, 3)``."""
    return Clause(tuple(lits))


class ClauseArena:
    """Flat clause storage: one shared literal array plus parallel metadata.

    Clauses are identified by small integer ids indexing parallel arrays:
    ``start[cid]``/``size[cid]`` delimit the clause's span in the shared
    ``lits`` array, and ``lbd``/``activity``/``learned``/``deleted`` carry
    the clause-database metadata the solver's reduction policy needs.

    Compared to one heap object per clause, the arena removes both the
    per-clause allocation on the solver's load path and the attribute
    dereferences on its propagation path; deleted clauses are flagged and
    their storage reclaimed by :meth:`Solver.reduce_db`-driven compaction
    (see :mod:`repro.sat.solver`).
    """

    __slots__ = ("lits", "start", "size", "lbd", "activity", "learned",
                 "deleted", "live_lits")

    def __init__(self) -> None:
        self.lits: list[Lit] = []
        self.start: list[int] = []
        self.size: list[int] = []
        self.lbd: list[int] = []
        self.activity: list[float] = []
        self.learned: bytearray = bytearray()
        self.deleted: bytearray = bytearray()
        # Literal count of live (non-deleted) clauses; len(self.lits) minus
        # this is the wasted space that triggers compaction.
        self.live_lits: int = 0

    def add(self, lits: Sequence[Lit], learned: bool = False,
            lbd: int = 0) -> int:
        """Append a clause; returns its id."""
        cid = len(self.start)
        self.start.append(len(self.lits))
        self.size.append(len(lits))
        self.lits.extend(lits)
        self.lbd.append(lbd)
        self.activity.append(0.0)
        self.learned.append(1 if learned else 0)
        self.deleted.append(0)
        self.live_lits += len(lits)
        return cid

    def delete(self, cid: int) -> None:
        """Flag a clause deleted (evicted lazily from watch lists)."""
        if not self.deleted[cid]:
            self.deleted[cid] = 1
            self.live_lits -= self.size[cid]

    def clause(self, cid: int) -> list[Lit]:
        """The clause's literals (a copy)."""
        s = self.start[cid]
        return self.lits[s:s + self.size[cid]]

    def __len__(self) -> int:
        return len(self.start)


@dataclass
class Model:
    """A satisfying assignment, mapping every variable to a boolean."""

    values: dict[Var, bool] = field(default_factory=dict)

    def __getitem__(self, var: Var) -> bool:
        return self.values[var]

    def __contains__(self, var: Var) -> bool:
        return var in self.values

    def value_of(self, lit: Lit) -> bool:
        """Truth value of a literal under this model."""
        value = self.values[var_of(lit)]
        return value if is_positive(lit) else not value

    def satisfies_clause(self, cl: Clause | Sequence[Lit]) -> bool:
        """True when at least one literal of ``cl`` is true."""
        return any(self.value_of(lit) for lit in cl)

    def satisfies(self, clauses: Iterable[Clause | Sequence[Lit]]) -> bool:
        """True when every clause is satisfied."""
        return all(self.satisfies_clause(cl) for cl in clauses)

    def as_literals(self) -> list[Lit]:
        """Render the model as a sorted list of true literals."""
        return [v if value else -v for v, value in sorted(self.values.items())]
