"""DIMACS CNF serialization.

Lets instances produced by the relational translator be exported for
inspection or cross-checking with external solvers, and lets standard
benchmark files be loaded into :class:`repro.sat.solver.Solver`.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

from repro.sat.cnf import CNF


class DimacsError(ValueError):
    """Raised on malformed DIMACS input."""


def dump(cnf: CNF, stream: TextIO, comments: list[str] | None = None) -> None:
    """Write ``cnf`` to ``stream`` in DIMACS format."""
    for comment in comments or []:
        stream.write(f"c {comment}\n")
    stream.write(f"p cnf {cnf.num_vars} {cnf.num_clauses}\n")
    for clause in cnf.clauses():
        stream.write(" ".join(str(lit) for lit in clause))
        stream.write(" 0\n")


def dumps(cnf: CNF, comments: list[str] | None = None) -> str:
    """Render ``cnf`` as a DIMACS string."""
    buffer = io.StringIO()
    dump(cnf, buffer, comments)
    return buffer.getvalue()


def dump_file(cnf: CNF, path: str | Path, comments: list[str] | None = None) -> None:
    """Write ``cnf`` to a file at ``path``."""
    with open(path, "w", encoding="ascii") as stream:
        dump(cnf, stream, comments)


def load(stream: TextIO) -> CNF:
    """Parse a DIMACS CNF from ``stream``."""
    declared_vars: int | None = None
    declared_clauses: int | None = None
    cnf = CNF()
    pending: list[int] = []
    for line_number, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise DimacsError(f"line {line_number}: malformed problem line: {line!r}")
            try:
                declared_vars = int(parts[2])
                declared_clauses = int(parts[3])
            except ValueError as exc:
                raise DimacsError(f"line {line_number}: non-integer header") from exc
            continue
        try:
            tokens = [int(tok) for tok in line.split()]
        except ValueError as exc:
            raise DimacsError(f"line {line_number}: non-integer literal") from exc
        for tok in tokens:
            if tok == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                pending.append(tok)
    if pending:
        # Tolerate a final clause without terminating 0 (some generators
        # omit it on the last line).
        cnf.add_clause(pending)
    if declared_vars is not None and cnf.num_vars > declared_vars:
        raise DimacsError(
            f"header declares {declared_vars} vars but literals mention {cnf.num_vars}"
        )
    if declared_vars is not None:
        # Respect the declared variable count even when some variables are
        # unmentioned.
        while cnf.num_vars < declared_vars:
            cnf.new_var()
    if declared_clauses is not None and cnf.num_clauses != declared_clauses:
        raise DimacsError(
            f"header declares {declared_clauses} clauses but found {cnf.num_clauses}"
        )
    return cnf


def loads(text: str) -> CNF:
    """Parse a DIMACS CNF from a string."""
    return load(io.StringIO(text))


def load_file(path: str | Path) -> CNF:
    """Parse a DIMACS CNF from a file."""
    with open(path, "r", encoding="ascii") as stream:
        return load(stream)
