"""DIMACS CNF serialization and the cross-checking CLI.

Lets instances produced by the relational translator be exported for
inspection or cross-checking with external solvers, and lets standard
benchmark files be loaded into :class:`repro.sat.solver.Solver`.

Run as a module for the command-line interface::

    python -m repro.sat.dimacs export --family relational --seed 3 -o p.cnf
    python -m repro.sat.dimacs solve p.cnf
    python -m repro.sat.dimacs info p.cnf

``export`` translates a seeded campaign scenario (a formula-shaped family
such as ``relational``) to DIMACS, with the primary-variable mapping in the
header comments; ``solve`` decides a DIMACS file with the built-in CDCL
solver and prints SAT-competition style ``s``/``v`` lines (exit code 10 for
SAT, 20 for UNSAT), so our verdicts can be diffed against an external
solver on the exact same file.  ``solve --incremental`` turns the same
command into a persistent iCNF server (clauses and ``a <assumptions> 0``
solve requests over stdin, ``s``/``v`` answers per round) — the
dependency-free counterpart for the ``dimacs-inc:`` backend (see
:mod:`repro.sat.external`).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

from repro.sat.cnf import CNF


class DimacsError(ValueError):
    """Raised on malformed DIMACS input."""


def dump(cnf: CNF, stream: TextIO, comments: list[str] | None = None) -> None:
    """Write ``cnf`` to ``stream`` in DIMACS format."""
    for comment in comments or []:
        stream.write(f"c {comment}\n")
    stream.write(f"p cnf {cnf.num_vars} {cnf.num_clauses}\n")
    for clause in cnf.clauses():
        if clause:
            stream.write(" ".join(str(lit) for lit in clause))
            stream.write(" 0\n")
        else:
            # The canonical empty clause (a trivially-false CNF): a bare
            # terminator, without the leading blank some parsers reject.
            stream.write("0\n")


def dumps(cnf: CNF, comments: list[str] | None = None) -> str:
    """Render ``cnf`` as a DIMACS string."""
    buffer = io.StringIO()
    dump(cnf, buffer, comments)
    return buffer.getvalue()


def dump_file(cnf: CNF, path: str | Path, comments: list[str] | None = None) -> None:
    """Write ``cnf`` to a file at ``path``."""
    with open(path, "w", encoding="ascii") as stream:
        dump(cnf, stream, comments)


def load(stream: TextIO) -> CNF:
    """Parse a DIMACS CNF from ``stream``."""
    declared_vars: int | None = None
    declared_clauses: int | None = None
    cnf = CNF()
    pending: list[int] = []
    for line_number, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise DimacsError(f"line {line_number}: malformed problem line: {line!r}")
            try:
                declared_vars = int(parts[2])
                declared_clauses = int(parts[3])
            except ValueError as exc:
                raise DimacsError(f"line {line_number}: non-integer header") from exc
            continue
        try:
            tokens = [int(tok) for tok in line.split()]
        except ValueError as exc:
            raise DimacsError(f"line {line_number}: non-integer literal") from exc
        for tok in tokens:
            if tok == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                pending.append(tok)
    if pending:
        # Tolerate a final clause without terminating 0 (some generators
        # omit it on the last line).
        cnf.add_clause(pending)
    if declared_vars is not None and cnf.num_vars > declared_vars:
        raise DimacsError(
            f"header declares {declared_vars} vars but literals mention {cnf.num_vars}"
        )
    if declared_vars is not None:
        # Respect the declared variable count even when some variables are
        # unmentioned.
        while cnf.num_vars < declared_vars:
            cnf.new_var()
    if declared_clauses is not None and cnf.num_clauses != declared_clauses:
        raise DimacsError(
            f"header declares {declared_clauses} clauses but found {cnf.num_clauses}"
        )
    return cnf


def loads(text: str) -> CNF:
    """Parse a DIMACS CNF from a string."""
    return load(io.StringIO(text))


def load_file(path: str | Path) -> CNF:
    """Parse a DIMACS CNF from a file."""
    with open(path, "r", encoding="ascii") as stream:
        return load(stream)


# ----------------------------------------------------------------------
# Command-line interface (python -m repro.sat.dimacs)
# ----------------------------------------------------------------------


def _cmd_export(args) -> int:
    # Imported lazily: the campaign package sits above repro.sat in the
    # dependency order; only the CLI needs it.
    from repro.api.problems import FormulaProblem, problem_from_spec
    from repro.campaign.specs import ScenarioSpec
    from repro.kodkod.translate import Translator

    params = {}
    for item in args.param or []:
        key, sep, value = item.partition("=")
        if not sep:
            raise SystemExit(f"--param expects key=value, got {item!r}")
        try:
            # Family params are numeric (ints or floats); keep the int
            # shape where possible so spec hashes match programmatic use.
            params[key] = int(value)
        except ValueError:
            try:
                params[key] = float(value)
            except ValueError:
                raise SystemExit(
                    f"--param {key} expects a numeric value, got {value!r}"
                ) from None
    spec = ScenarioSpec.make(args.family, args.seed, **params)
    problem = problem_from_spec(spec)
    if not isinstance(problem, FormulaProblem):
        raise SystemExit(
            f"family {args.family!r} does not produce a formula problem; "
            "only formula-shaped families (e.g. 'relational') export to DIMACS"
        )
    translation = Translator(
        problem.bounds, symmetry=args.symmetry, cnf_encoding=args.encoding
    ).translate(problem.formula)
    text = translation.to_dimacs(comments=[
        f"spec {spec.label()} hash {spec.content_hash()[:16]}",
        f"encoding {args.encoding} symmetry {args.symmetry}",
    ])
    if args.output:
        Path(args.output).write_text(text, encoding="ascii")
    else:
        print(text, end="")
    return 0


def _print_answer(status, model, quiet: bool) -> None:
    """Emit SAT-competition ``s``/``v`` lines for one solve round."""
    import sys

    from repro.sat.types import Status

    if status is Status.SAT:
        print("s SATISFIABLE")
        if model is not None and not quiet:
            lits = model.as_literals()
            for offset in range(0, len(lits), 20):
                chunk = lits[offset:offset + 20]
                print("v " + " ".join(str(lit) for lit in chunk))
            print("v 0")
    else:
        print("s UNSATISFIABLE")
    # The parent reads our stdout over a pipe (block-buffered): flush so
    # the answer is visible before the next request — or the exit code.
    sys.stdout.flush()


def _cmd_solve_incremental(args) -> int:
    """iCNF server loop: stream clauses in, answer ``a``-line solves.

    The incremental counterpart of :func:`_cmd_solve`, serving
    ``IncrementalExternalSolver`` clients (see :mod:`repro.sat.external`):
    clause lines accumulate into one persistent :class:`Solver`, each
    ``a <assumptions> 0`` line triggers a solve under those assumptions,
    and the answer is printed in the same ``s``/``v`` shape as the
    one-shot path.  EOF on stdin ends the session with exit code 0.
    """
    import sys

    from repro.sat.solver import Solver
    from repro.sat.types import Status

    solver = Solver(kernel=args.kernel)
    ok = True
    if args.file:
        ok = solver.add_cnf(load_file(args.file))
    pending: list[int] = []
    for raw in sys.stdin:
        line = raw.strip()
        if not line or line.startswith("c") or line.startswith("p"):
            continue
        if line.startswith("a ") or line == "a":
            try:
                assumptions = [int(tok) for tok in line[1:].split()]
            except ValueError:
                print(f"c error: non-integer assumption in {line!r}",
                      file=sys.stderr)
                return 1
            if assumptions and assumptions[-1] == 0:
                assumptions.pop()
            if ok:
                for lit in assumptions:
                    solver._ensure_var(abs(lit))
                status = solver.solve(assumptions)
                # A root-level conflict is permanent; remember it so later
                # rounds answer UNSAT without touching the solver again.
                ok = solver._ok
            else:
                status = Status.UNSAT
            model = solver.model() if status is Status.SAT else None
            _print_answer(status, model, args.quiet)
            continue
        try:
            tokens = [int(tok) for tok in line.split()]
        except ValueError:
            print(f"c error: non-integer literal in {line!r}",
                  file=sys.stderr)
            return 1
        for tok in tokens:
            if tok == 0:
                ok = solver.add_clause(pending) and ok
                pending = []
            else:
                pending.append(tok)
    if pending:
        solver.add_clause(pending)
    return 0


def _cmd_solve(args) -> int:
    from repro.sat.solver import solve_cnf
    from repro.sat.types import Status

    if args.incremental:
        return _cmd_solve_incremental(args)
    if not args.file:
        raise SystemExit("solve: a DIMACS file is required "
                         "(only --incremental may omit it)")
    cnf = load_file(args.file)
    status, model = solve_cnf(cnf, assumptions=args.assume or [],
                              kernel=args.kernel)
    _print_answer(status, model, args.quiet)
    return 10 if status is Status.SAT else 20


def _cmd_info(args) -> int:
    cnf = load_file(args.file)
    print(f"vars {cnf.num_vars} clauses {cnf.num_clauses}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.sat.dimacs",
        description="Export translated problems to DIMACS and solve "
                    "DIMACS files with the built-in CDCL solver.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    export = sub.add_parser(
        "export", help="translate a campaign spec to DIMACS")
    export.add_argument("--family", default="relational",
                        help="campaign family (default: relational)")
    export.add_argument("--seed", type=int, default=0)
    export.add_argument("--param", action="append", metavar="KEY=VALUE",
                        help="family parameter override (repeatable)")
    export.add_argument("--symmetry", type=int, default=0,
                        help="lex-leader SBP length (default: 0, off)")
    export.add_argument("--encoding", choices=["pg", "tseitin"],
                        default="pg", help="CNF encoding (default: pg)")
    export.add_argument("-o", "--output", help="output file (default: stdout)")
    export.set_defaults(run=_cmd_export)

    solve = sub.add_parser(
        "solve", help="decide a DIMACS file with the built-in solver")
    solve.add_argument("file", nargs="?",
                       help="DIMACS file (optional with --incremental: "
                            "clauses then arrive on stdin)")
    solve.add_argument("--assume", type=int, action="append", metavar="LIT",
                       help="assumption literal (repeatable)")
    solve.add_argument("--quiet", action="store_true",
                       help="suppress the v-lines of the model")
    solve.add_argument("--incremental", action="store_true",
                       help="iCNF server mode: read clause and "
                            "'a <assumptions> 0' lines from stdin, answer "
                            "each solve with s/v lines, exit 0 on EOF")
    solve.add_argument("--kernel", choices=["pure", "vector"],
                       default="pure",
                       help="propagation kernel (vector falls back to "
                            "pure without numpy)")
    solve.set_defaults(run=_cmd_solve)

    info = sub.add_parser("info", help="print a DIMACS file's dimensions")
    info.add_argument("file")
    info.set_defaults(run=_cmd_info)

    args = parser.parse_args(argv)
    return args.run(args)
