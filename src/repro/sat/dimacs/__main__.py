"""Entry point for ``python -m repro.sat.dimacs``.

A separate ``__main__`` module (rather than an ``if __name__`` guard in
the package body) keeps runpy from re-executing the already-imported
package and emitting a RuntimeWarning on every CLI invocation.
"""

from repro.sat.dimacs import main

if __name__ == "__main__":
    raise SystemExit(main())
