"""CNF formula container and fresh-variable management.

A :class:`CNF` accumulates clauses and hands out fresh variables; it is the
interchange format between the relational translator (:mod:`repro.kodkod`)
and the solver (:mod:`repro.sat.solver`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.sat.types import Clause, Lit, Var, var_of


class CNF:
    """A conjunction of clauses over variables ``1..num_vars``."""

    def __init__(self, num_vars: int = 0) -> None:
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self._num_vars = num_vars
        self._clauses: list[tuple[Lit, ...]] = []

    @property
    def num_vars(self) -> int:
        """Highest variable index allocated so far."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Number of clauses added so far."""
        return len(self._clauses)

    def new_var(self) -> Var:
        """Allocate and return a fresh variable."""
        self._num_vars += 1
        return self._num_vars

    def new_vars(self, count: int) -> list[Var]:
        """Allocate ``count`` fresh variables."""
        return [self.new_var() for _ in range(count)]

    def add_clause(self, lits: Sequence[Lit] | Clause) -> None:
        """Add one clause, growing ``num_vars`` to cover its literals."""
        tup = tuple(lits.literals) if isinstance(lits, Clause) else tuple(lits)
        num_vars = self._num_vars
        for lit in tup:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            var = lit if lit > 0 else -lit
            if var > num_vars:
                num_vars = var
        self._num_vars = num_vars
        self._clauses.append(tup)

    def _append_clause(self, tup: tuple[Lit, ...]) -> None:
        """Trusted fast path: append a clause tuple without validation.

        Callers (the circuit compiler) guarantee non-zero literals over
        variables already allocated via :meth:`new_var`.
        """
        self._clauses.append(tup)

    def extend(self, clauses: Iterable[Sequence[Lit] | Clause]) -> None:
        """Add many clauses."""
        for cl in clauses:
            self.add_clause(cl)

    def clauses(self) -> Iterator[tuple[Lit, ...]]:
        """Iterate over clauses as literal tuples."""
        return iter(self._clauses)

    def __iter__(self) -> Iterator[tuple[Lit, ...]]:
        return self.clauses()

    def __len__(self) -> int:
        return len(self._clauses)

    def copy(self) -> "CNF":
        """Shallow copy (clause tuples are immutable)."""
        dup = CNF(self._num_vars)
        dup._clauses = list(self._clauses)
        return dup

    # ------------------------------------------------------------------
    # Tseitin gate encodings.  Each method constrains an output literal to
    # equal a boolean function of input literals, producing the standard
    # equisatisfiable clause sets.
    # ------------------------------------------------------------------

    def add_and_gate(self, out: Lit, inputs: Sequence[Lit]) -> None:
        """Constrain ``out <-> AND(inputs)``."""
        if not inputs:
            self.add_clause([out])
            return
        for lit in inputs:
            self.add_clause([-out, lit])
        self.add_clause([out] + [-lit for lit in inputs])

    def add_or_gate(self, out: Lit, inputs: Sequence[Lit]) -> None:
        """Constrain ``out <-> OR(inputs)``."""
        if not inputs:
            self.add_clause([-out])
            return
        for lit in inputs:
            self.add_clause([out, -lit])
        self.add_clause([-out] + list(inputs))

    def add_xor_gate(self, out: Lit, a: Lit, b: Lit) -> None:
        """Constrain ``out <-> a XOR b``."""
        self.add_clause([-out, a, b])
        self.add_clause([-out, -a, -b])
        self.add_clause([out, -a, b])
        self.add_clause([out, a, -b])

    def add_ite_gate(self, out: Lit, cond: Lit, then_lit: Lit, else_lit: Lit) -> None:
        """Constrain ``out <-> (cond ? then_lit : else_lit)``."""
        self.add_clause([-cond, -then_lit, out])
        self.add_clause([-cond, then_lit, -out])
        self.add_clause([cond, -else_lit, out])
        self.add_clause([cond, else_lit, -out])

    def add_equiv(self, a: Lit, b: Lit) -> None:
        """Constrain ``a <-> b``."""
        self.add_clause([-a, b])
        self.add_clause([a, -b])

    def add_implies(self, a: Lit, b: Lit) -> None:
        """Constrain ``a -> b``."""
        self.add_clause([-a, b])

    # ------------------------------------------------------------------
    # Cardinality helpers (pairwise encodings: fine at the small scopes
    # used for bounded verification).
    # ------------------------------------------------------------------

    def add_at_most_one(self, lits: Sequence[Lit]) -> None:
        """Pairwise at-most-one constraint over ``lits``."""
        for i in range(len(lits)):
            for j in range(i + 1, len(lits)):
                self.add_clause([-lits[i], -lits[j]])

    def add_exactly_one(self, lits: Sequence[Lit]) -> None:
        """Exactly-one constraint over ``lits``."""
        if not lits:
            raise ValueError("exactly-one over an empty literal list is unsatisfiable")
        self.add_clause(list(lits))
        self.add_at_most_one(lits)
