"""The optimized static MCA model: ``bidTriple`` + ``value`` abstractions.

The paper's second encoding (Section IV): every ternary relation is
replaced by two binary relations routed through the ``bidTriple`` signature

    sig bidTriple {
        bid_v: one vnode,
        bid_b: one Int,    // here: one value
        bid_t: one Int,    //       one value
        bid_w: one (pnode + NULL)
    }

and Alloy's ``Int`` is replaced by the custom ``value`` signature with
``succ``/``pre``.  This reduced the authors' translation from ~259K to
~190K clauses at scope (3 pnodes, 2 vnodes) and the check time from ~a day
to under two hours.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloylite.module import Module, Scope
from repro.alloylite.sig import Sig
from repro.kodkod import ast
from repro.kodkod.bounds import Bounds
from repro.kodkod.universe import Universe
from repro.model.valuemodel import (
    ValueLiteral,
    ValueModel,
    bound_value,
    declare_value,
    value_scope,
)


@dataclass
class OptimStaticModel:
    """Handles to the optimized static model."""

    module: Module
    pnode: Sig
    vnode: Sig
    bid_triple: Sig
    values: ValueModel
    pcp: ast.Relation
    pid: ast.Relation
    init_triples: ast.Relation  # pnode -> bidTriple (binary)
    bid_v: ast.Relation
    bid_b: ast.Relation
    bid_t: ast.Relation
    pconnections: ast.Relation
    p_t: ast.Relation
    literals: list[ValueLiteral]

    def compile(self, num_pnodes: int, num_vnodes: int,
                num_triples: int | None = None
                ) -> tuple[Universe, Bounds, ast.Formula]:
        """Compile at an explicit scope.

        ``num_triples`` defaults to one bid slot per (pnode, vnode) pair —
        enough for every agent to bid on every item.
        """
        if num_triples is None:
            num_triples = num_pnodes * num_vnodes
        scope = value_scope(
            Scope(per_sig={
                "pnode": num_pnodes,
                "vnode": num_vnodes,
                "bidTriple": num_triples,
            }),
            self.values,
        )
        universe, bounds, facts = self.module.compile(scope)
        bound_value(self.values, universe, bounds, self.literals)
        return universe, bounds, facts

    # ------------------------------------------------------------------
    # Assertions (same logical content as the naive model's)
    # ------------------------------------------------------------------

    def unique_id_assertion(self) -> ast.Formula:
        """``assert uniqueID``."""
        n1, n2 = ast.Variable("n1"), ast.Variable("n2")
        return ast.ForAll(
            [(n1, self.pnode.expr), (n2, self.pnode.expr)],
            ast.Not(ast.Equal(n1, n2)).implies(
                ast.Not(ast.Equal(ast.Join(n1, self.pid),
                                  ast.Join(n2, self.pid)))
            ),
        )

    def capacity_assertion(self) -> ast.Formula:
        """Every bid value fits under the bidder's capacity."""
        p, t = ast.Variable("p"), ast.Variable("t")
        return ast.ForAll(
            [(p, self.pnode.expr), (t, ast.Join(p, self.init_triples))],
            self.values.val_le(ast.Join(t, self.bid_b), ast.Join(p, self.pcp)),
        )

    def conflict_free_init_assertion(self) -> ast.Formula:
        """No two pnodes bid on the same vnode (expected to FAIL)."""
        p1, p2 = ast.Variable("p1"), ast.Variable("p2")
        v = ast.Variable("v")
        # Triples of p on vnode v: p.initTriples & bid_v.v
        on_v1 = ast.Join(p1, self.init_triples).intersection(
            ast.Join(self.bid_v, v))
        on_v2 = ast.Join(p2, self.init_triples).intersection(
            ast.Join(self.bid_v, v))
        return ast.ForAll(
            [(p1, self.pnode.expr), (p2, self.pnode.expr),
             (v, self.vnode.expr)],
            ast.Not(ast.Equal(p1, p2)).implies(
                ast.Or([ast.No(on_v1), ast.No(on_v2)])
            ),
        )


def build_optim_static(max_value: int = 3) -> OptimStaticModel:
    """Construct the optimized static module."""
    module = Module("mca_static_optim")
    pnode = module.sig("pnode")
    vnode = module.sig("vnode")
    bid_triple = module.sig("bidTriple")
    values = declare_value(module, max_value)

    pcp = pnode.field("pcp", values.sig, mult="one").relation
    pid = pnode.field("pid", values.sig, mult="one").relation
    init_triples = pnode.field("initTriples", bid_triple).relation
    pconnections = pnode.field("pconnections", pnode, mult="some").relation
    p_t = pnode.field("p_T", values.sig, mult="one").relation
    bid_v = bid_triple.field("bid_v", vnode, mult="one").relation
    bid_b = bid_triple.field("bid_b", values.sig, mult="one").relation
    bid_t = bid_triple.field("bid_t", values.sig, mult="one").relation

    literals: list[ValueLiteral] = [values.literal(0)]

    p = ast.Variable("p")
    v = ast.Variable("v")
    t = ast.Variable("t")
    p1, p2 = ast.Variable("pn1"), ast.Variable("pn2")

    # Each pnode holds at most one triple per vnode (the bundle vector).
    module.fact(
        ast.ForAll(
            [(p, pnode.expr), (v, vnode.expr)],
            ast.Lone(
                ast.Join(p, init_triples).intersection(ast.Join(bid_v, v))
            ),
        ),
        "triplesFunctional",
    )
    # Triples are owned by at most one pnode (views are not shared).
    module.fact(
        ast.ForAll(
            [(t, bid_triple.expr)],
            ast.Lone(ast.Join(init_triples, t)),
        ),
        "triplesOwned",
    )
    # pconnectivity: undirected links, distinct ids.
    module.fact(
        ast.ForAll(
            [(p1, pnode.expr), (p2, pnode.expr)],
            ast.Not(ast.Equal(p1, p2)).implies(
                ast.Not(ast.Equal(ast.Join(p1, pid), ast.Join(p2, pid)))
                & ast.Subset(p1, ast.Join(p2, pconnections)).iff(
                    ast.Subset(p2, ast.Join(p1, pconnections))
                )
            ),
        ),
        "pconnectivity",
    )
    module.fact(
        ast.ForAll([(p, pnode.expr)],
                   ast.Not(ast.Subset(p, ast.Join(p, pconnections)))),
        "noSelfLink",
    )
    # pcapacity (optimized form): each bid fits pointwise under the
    # capacity — the value signature has no ternary adder by design.
    module.fact(
        ast.ForAll(
            [(p, pnode.expr), (t, ast.Join(p, init_triples))],
            values.val_le(ast.Join(t, bid_b), ast.Join(p, pcp)),
        ),
        "pcapacity",
    )

    return OptimStaticModel(
        module=module,
        pnode=pnode,
        vnode=vnode,
        bid_triple=bid_triple,
        values=values,
        pcp=pcp,
        pid=pid,
        init_triples=init_triples,
        bid_v=bid_v,
        bid_b=bid_b,
        bid_t=bid_t,
        pconnections=pconnections,
        p_t=p_t,
        literals=literals,
    )
