"""The naive static MCA model: ternary relations and Alloy-style ``Int``.

This is the paper's first encoding (Section IV, "Abstractions Efficiency"):

    sig pnode {
        pcp: one Int,
        pid: one Int,
        initBids: vnode->Int,       // ternary
        initBidTimes: vnode->Int,   // ternary
        pconnections: some pnode,
        p_T: one Int,
        ...
    }

with the quoted facts ``pcapacity`` (sum of initial bids within the physical
CPU capacity, via Int arithmetic) and ``pconnectivity`` (undirected links,
distinct ids).  It generated ~259K SAT clauses at scope (3 pnodes, 2
vnodes) in the authors' Alloy run; our benchmark reproduces the comparison
against the optimized encoding of :mod:`repro.model.static_optim`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloylite.module import Module, Scope
from repro.alloylite.sig import Sig
from repro.kodkod import ast
from repro.kodkod.bounds import Bounds
from repro.kodkod.universe import Universe
from repro.model.intmodel import IntLiteral, IntModel, bound_int, declare_int, int_scope


@dataclass
class NaiveStaticModel:
    """Handles to the naive static model's sigs, fields and scope plumbing."""

    module: Module
    pnode: Sig
    vnode: Sig
    ints: IntModel
    pcp: ast.Relation
    pid: ast.Relation
    init_bids: ast.Relation
    init_bid_times: ast.Relation
    pconnections: ast.Relation
    p_t: ast.Relation
    literals: list[IntLiteral]
    vnode_atoms: list[ast.Relation]

    def compile(self, num_pnodes: int, num_vnodes: int
                ) -> tuple[Universe, Bounds, ast.Formula]:
        """Compile at an explicit (pnodes, vnodes) scope."""
        scope = int_scope(
            Scope(per_sig={"pnode": num_pnodes, "vnode": num_vnodes}),
            self.ints,
        )
        universe, bounds, facts = self.module.compile(scope)
        bound_int(self.ints, universe, bounds, self.literals)
        for index, atom_rel in enumerate(self.vnode_atoms):
            if index < num_vnodes:
                bounds.bound_exactly(
                    atom_rel, universe.tuple_set(1, [(f"vnode${index}",)])
                )
            else:
                bounds.bound_exactly(atom_rel, universe.empty(1))
        return universe, bounds, facts

    # ------------------------------------------------------------------
    # Assertions from the paper
    # ------------------------------------------------------------------

    def unique_id_assertion(self) -> ast.Formula:
        """``assert uniqueID`` — distinct pnodes carry distinct ids."""
        n1, n2 = ast.Variable("n1"), ast.Variable("n2")
        return ast.ForAll(
            [(n1, self.pnode.expr), (n2, self.pnode.expr)],
            ast.Not(ast.Equal(n1, n2)).implies(
                ast.Not(ast.Equal(ast.Join(n1, self.pid),
                                  ast.Join(n2, self.pid)))
            ),
        )

    def capacity_assertion(self) -> ast.Formula:
        """Every individual bid fits under the bidder's capacity."""
        p, v = ast.Variable("p"), ast.Variable("v")
        bid = ast.Join(v, ast.Join(p, self.init_bids))
        return ast.ForAll(
            [(p, self.pnode.expr), (v, self.vnode.expr)],
            ast.Lone(bid) & (
                ast.No(bid) | self.ints.le(bid, ast.Join(p, self.pcp))
            ),
        )

    def conflict_free_init_assertion(self) -> ast.Formula:
        """No two pnodes bid on the same vnode (expected to FAIL: bidding
        conflicts are precisely what the agreement phase resolves)."""
        p1, p2, v = ast.Variable("p1"), ast.Variable("p2"), ast.Variable("v")
        return ast.ForAll(
            [(p1, self.pnode.expr), (p2, self.pnode.expr),
             (v, self.vnode.expr)],
            ast.Not(ast.Equal(p1, p2)).implies(
                ast.Or([
                    ast.No(ast.Join(v, ast.Join(p1, self.init_bids))),
                    ast.No(ast.Join(v, ast.Join(p2, self.init_bids))),
                ])
            ),
        )


MAX_VNODE_SLOTS = 4


def build_naive_static(max_int: int = 15) -> NaiveStaticModel:
    """Construct the naive static module (compile per scope afterwards).

    ``max_int`` defaults to 15: Alloy's default integer bitwidth is 4, so
    the predefined ``Int`` signature contributes 16 atoms to every scope —
    the main reason the paper's naive model exploded.
    """
    module = Module("mca_static_naive")
    pnode = module.sig("pnode")
    vnode = module.sig("vnode")
    ints = declare_int(module, max_int)

    pcp = pnode.field("pcp", ints.sig, mult="one").relation
    pid = pnode.field("pid", ints.sig, mult="one").relation
    init_bids = pnode.field("initBids", vnode, ints.sig).relation
    init_bid_times = pnode.field("initBidTimes", vnode, ints.sig).relation
    pconnections = pnode.field("pconnections", pnode, mult="some").relation
    p_t = pnode.field("p_T", ints.sig, mult="one").relation

    literals: list[IntLiteral] = [ints.literal(0)]
    zero = literals[0]
    # Constant singletons naming each potential vnode atom (used to fold the
    # capacity sum, since relational logic has no variadic arithmetic).
    vnode_atoms = [ast.Relation(f"vnodeAtom#{i}", 1) for i in range(MAX_VNODE_SLOTS)]

    p = ast.Variable("p")
    v = ast.Variable("v")
    p1, p2 = ast.Variable("pn1"), ast.Variable("pn2")

    # Bids and times are partial functions vnode -> Int.
    module.fact(
        ast.ForAll(
            [(p, pnode.expr), (v, vnode.expr)],
            ast.Lone(ast.Join(v, ast.Join(p, init_bids)))
            & ast.Lone(ast.Join(v, ast.Join(p, init_bid_times))),
        ),
        "bidsFunctional",
    )
    # A bid exists exactly when its generation time exists.
    module.fact(
        ast.ForAll(
            [(p, pnode.expr), (v, vnode.expr)],
            ast.Some(ast.Join(v, ast.Join(p, init_bids))).iff(
                ast.Some(ast.Join(v, ast.Join(p, init_bid_times)))
            ),
        ),
        "bidsTimed",
    )
    # pconnectivity: undirected links and distinct ids (quoted in the paper).
    module.fact(
        ast.ForAll(
            [(p1, pnode.expr), (p2, pnode.expr)],
            ast.Not(ast.Equal(p1, p2)).implies(
                ast.Not(ast.Equal(ast.Join(p1, pid), ast.Join(p2, pid)))
                & ast.Subset(p1, ast.Join(p2, pconnections)).iff(
                    ast.Subset(p2, ast.Join(p1, pconnections))
                )
            ),
        ),
        "pconnectivity",
    )
    module.fact(
        ast.ForAll([(p, pnode.expr)],
                   ast.Not(ast.Subset(p, ast.Join(p, pconnections)))),
        "noSelfLink",
    )
    # pcapacity: the *sum* of a pnode's initial bids fits its capacity —
    # folded through the constant ternary plus relation (this arithmetic is
    # exactly what the optimized encoding eliminates).
    sum_expr: ast.Expr = zero
    for atom_rel in vnode_atoms:
        bid = ast.Join(atom_rel, ast.Join(p, init_bids))
        # Missing bids contribute zero: (some bid) => bid else 0.
        contribution = ast.IfExpr(ast.Some(bid), bid, zero)
        sum_expr = ints.sum_of(sum_expr, contribution)
    module.fact(
        ast.ForAll([(p, pnode.expr)],
                   ints.le(sum_expr, ast.Join(p, pcp))),
        "pcapacity",
    )
    # Targets are positive: every agent may win at least one item.
    module.fact(
        ast.ForAll([(p, pnode.expr)],
                   ints.ge(ast.Join(p, p_t), zero)),
        "targetNonNegative",
    )

    return NaiveStaticModel(
        module=module,
        pnode=pnode,
        vnode=vnode,
        ints=ints,
        pcp=pcp,
        pid=pid,
        init_bids=init_bids,
        init_bid_times=init_bid_times,
        pconnections=pconnections,
        p_t=p_t,
        literals=literals,
        vnode_atoms=vnode_atoms,
    )
