"""The paper's Alloy MCA model, re-encoded on the alloylite/kodkod stack.

Static sub-models in both the naive (ternary + Int) and optimized
(bidTriple + value) abstractions, the dynamic transition system with the
consensus assertion, and policy-combination check drivers.
"""

from repro.model.build import (
    ALL_POLICY_COMBINATIONS,
    CheckVerdict,
    EncodingComparison,
    PolicyCombination,
    check_combination,
    compare_encodings,
    model_for,
    policy_matrix,
)
from repro.model.dynamic import DynamicModel, build_dynamic
from repro.model.intmodel import IntModel, declare_int
from repro.model.static_naive import NaiveStaticModel, build_naive_static
from repro.model.static_optim import OptimStaticModel, build_optim_static
from repro.model.valuemodel import ValueModel, declare_value

__all__ = [
    "ALL_POLICY_COMBINATIONS",
    "CheckVerdict",
    "DynamicModel",
    "EncodingComparison",
    "IntModel",
    "NaiveStaticModel",
    "OptimStaticModel",
    "PolicyCombination",
    "ValueModel",
    "build_dynamic",
    "build_naive_static",
    "build_optim_static",
    "check_combination",
    "compare_encodings",
    "declare_int",
    "declare_value",
    "model_for",
    "policy_matrix",
]
