"""The paper's ``value`` signature: custom naturals for the optimized model.

    sig value { succ: set value, pre: set value }

"To avoid using the Alloy's predefined integers (signature Int) we model
natural numbers with the signature value ... Using the two relations succ
and pre we model binary operators <, <=, > and >=" (Section IV).

We bind ``succ`` to the constant successor chain over the value atoms (the
paper constrains it with facts; a constant exact bound is the
translation-level effect) and define the comparison predicates
``valL/valLE/valG/valGE`` on top of it.  No ternary relation is involved —
this is the abstraction that shrank the paper's SAT instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloylite.module import Module, Scope
from repro.alloylite.sig import Sig
from repro.kodkod import ast
from repro.kodkod.bounds import Bounds
from repro.kodkod.universe import Universe


@dataclass
class ValueModel:
    """Handles to the value sig and its successor relation."""

    sig: Sig
    succ: ast.Relation
    max_value: int

    def atom_name(self, value: int) -> str:
        """Universe atom encoding ``value``."""
        if not 0 <= value <= self.max_value:
            raise ValueError(f"{value} outside 0..{self.max_value}")
        return f"{self.sig.name}${value}"

    def literal(self, value: int) -> "ValueLiteral":
        """Constant singleton value expression."""
        return ValueLiteral(self, value)

    # The paper's predicates: valL, valLE, valG, valGE.

    def val_le(self, a: ast.Expr, b: ast.Expr) -> ast.Formula:
        """``valLE[a, b]``: a <= b, i.e. b in a.*succ."""
        return ast.Subset(b, ast.Join(a, ast.Union(ast.Closure(self.succ),
                                                   ast.Iden())))

    def val_l(self, a: ast.Expr, b: ast.Expr) -> ast.Formula:
        """``valL[a, b]``: a < b, i.e. b in a.^succ."""
        return ast.Subset(b, ast.Join(a, ast.Closure(self.succ)))

    def val_ge(self, a: ast.Expr, b: ast.Expr) -> ast.Formula:
        """``valGE[a, b]``: a >= b."""
        return self.val_le(b, a)

    def val_g(self, a: ast.Expr, b: ast.Expr) -> ast.Formula:
        """``valG[a, b]``: a > b."""
        return self.val_l(b, a)


class ValueLiteral(ast.Relation):
    """A constant singleton value relation."""

    def __init__(self, model: ValueModel, value: int) -> None:
        super().__init__(f"value#{value}", 1)
        self.model = model
        self.value = value


def declare_value(module: Module, max_value: int) -> ValueModel:
    """Declare the value sig; bounds added by :func:`bound_value`."""
    if max_value < 0:
        raise ValueError("max_value must be >= 0")
    sig = module.sig("value")
    return ValueModel(sig=sig, succ=ast.Relation("value.succ", 2),
                      max_value=max_value)


def bound_value(model: ValueModel, universe: Universe, bounds: Bounds,
                literals: list[ValueLiteral]) -> None:
    """Exactly bound the successor chain and the literals used."""
    names = [model.atom_name(v) for v in range(model.max_value + 1)]
    succ_tuples = list(zip(names, names[1:]))
    bounds.bound_exactly(model.succ, universe.tuple_set(2, succ_tuples))
    seen: set[int] = set()
    for literal in literals:
        if literal.value in seen:
            continue
        seen.add(literal.value)
        bounds.bound_exactly(
            literal, universe.tuple_set(1, [(model.atom_name(literal.value),)])
        )


def value_scope(scope: Scope, model: ValueModel) -> Scope:
    """Force the value sig's scope to exactly max_value + 1 atoms."""
    per_sig = dict(scope.per_sig)
    per_sig[model.sig.name] = model.max_value + 1
    return Scope(default=scope.default, per_sig=per_sig)
