"""Top-level builders: policy-combination checks and encoding comparisons.

The paper's Section V workflow: pick a policy instantiation, build the
model, run ``check consensus`` — "push-button" analysis.  This module also
drives the Section IV encoding comparison (naive vs optimized clause
counts) used by the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Result
from repro.model.dynamic import DynamicModel, build_dynamic
from repro.model.static_naive import NaiveStaticModel, build_naive_static
from repro.model.static_optim import OptimStaticModel, build_optim_static


@dataclass(frozen=True)
class PolicyCombination:
    """One cell of the paper's policy grid."""

    submodular: bool
    release_outbid: bool
    rebid_allowed: bool = False  # True models removing the Remark-1 rule

    @property
    def label(self) -> str:
        parts = [
            "sub" if self.submodular else "nonsub",
            "release" if self.release_outbid else "keep",
        ]
        if self.rebid_allowed:
            parts.append("rebid-attack")
        return "+".join(parts)


ALL_POLICY_COMBINATIONS = [
    PolicyCombination(submodular=True, release_outbid=False),
    PolicyCombination(submodular=True, release_outbid=True),
    PolicyCombination(submodular=False, release_outbid=False),
    PolicyCombination(submodular=False, release_outbid=True),
]


@dataclass
class CheckVerdict:
    """Outcome of checking consensus under one policy combination."""

    combination: PolicyCombination
    converges: bool
    solution: Result
    """The unified façade result of the underlying ``check consensus``."""

    @property
    def counterexample_found(self) -> bool:
        """Inverse of :attr:`converges`."""
        return not self.converges


def model_for(combination: PolicyCombination, num_pnodes: int = 2,
              num_vnodes: int = 2, max_value: int = 6,
              edges: list[tuple[int, int]] | None = None) -> DynamicModel:
    """Instantiate the dynamic model gated by a policy combination.

    Only the non-sub-modular + release combination enables the deviant
    rebid transition (Remark 2's refresh exceeding the standing maximum);
    the rebid-attack flag enables the never-concede attacker regardless of
    utilities (Result 2's misbehaviour).
    """
    release_nonsub = (
        set(range(num_pnodes))
        if (not combination.submodular and combination.release_outbid)
        else set()
    )
    attackers = {num_pnodes - 1} if combination.rebid_allowed else set()
    return build_dynamic(
        num_pnodes=num_pnodes,
        num_vnodes=num_vnodes,
        max_value=max_value,
        edges=edges,
        release_nonsub=release_nonsub,
        rebid_attackers=attackers,
    )


def check_combination(combination: PolicyCombination, num_pnodes: int = 2,
                      num_vnodes: int = 2, max_value: int = 6) -> CheckVerdict:
    """Run ``check consensus`` for one policy combination."""
    model = model_for(combination, num_pnodes, num_vnodes, max_value)
    solution = model.check_consensus()
    return CheckVerdict(
        combination=combination,
        converges=not solution.satisfiable,
        solution=solution,
    )


def policy_matrix(num_pnodes: int = 2, num_vnodes: int = 2,
                  max_value: int = 6) -> list[CheckVerdict]:
    """Result 1's sweep: check consensus across the policy grid."""
    return [
        check_combination(combo, num_pnodes, num_vnodes, max_value)
        for combo in ALL_POLICY_COMBINATIONS
    ]


@dataclass
class EncodingComparison:
    """Section IV's measurement: translation sizes of both encodings."""

    num_pnodes: int
    num_vnodes: int
    naive_clauses: int
    optim_clauses: int
    naive_vars: int
    optim_vars: int
    naive_seconds: float
    optim_seconds: float

    @property
    def clause_ratio(self) -> float:
        """optimized / naive clause count (< 1 reproduces the paper)."""
        return self.optim_clauses / self.naive_clauses


def compare_encodings(num_pnodes: int = 3, num_vnodes: int = 2,
                      naive_max_int: int = 15,
                      optim_max_value: int = 3) -> EncodingComparison:
    """Translate the same static model in both encodings and compare."""
    naive = build_naive_static(max_int=naive_max_int)
    _, naive_bounds, naive_facts = naive.compile(num_pnodes, num_vnodes)
    from repro.kodkod.engine import translate as _translate

    naive_tr = _translate(naive_facts, naive_bounds)
    optim = build_optim_static(max_value=optim_max_value)
    _, optim_bounds, optim_facts = optim.compile(num_pnodes, num_vnodes)
    optim_tr = _translate(optim_facts, optim_bounds)
    return EncodingComparison(
        num_pnodes=num_pnodes,
        num_vnodes=num_vnodes,
        naive_clauses=naive_tr.stats.num_clauses,
        optim_clauses=optim_tr.stats.num_clauses,
        naive_vars=naive_tr.stats.num_cnf_vars,
        optim_vars=optim_tr.stats.num_cnf_vars,
        naive_seconds=naive_tr.stats.translation_seconds,
        optim_seconds=optim_tr.stats.translation_seconds,
    )


__all__ = [
    "ALL_POLICY_COMBINATIONS",
    "CheckVerdict",
    "EncodingComparison",
    "NaiveStaticModel",
    "OptimStaticModel",
    "PolicyCombination",
    "build_naive_static",
    "build_optim_static",
    "check_combination",
    "compare_encodings",
    "model_for",
    "policy_matrix",
]
