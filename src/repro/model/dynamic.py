"""The dynamic MCA sub-model: ordered states, views, and transitions.

Re-encodes the paper's dynamic model (Section IV) in the optimized
abstraction style: states are an ordered ``netState`` signature; each
``(state, pnode)`` pair owns a ``bidVector`` of shared, constant
``bidTriple`` value objects; the ``stateTransition`` fact relates each
state to its successor.

**Execution abstraction.** The paper processes one buffered message per
transition.  We abstract a transition to one synchronous *gossip round*:
every pnode merges the previous views of itself and its first-hop neighbors
by the max-rule (higher bid wins, ties impossible by a distinct-bids fact).
This preserves the D-round convergence structure while keeping the SAT
instance tractable for a pure-Python solver.  Misbehaviour is modelled by
two policy-gated deviations:

* ``release_nonsub`` agents (utility = non-sub-modular AND p_RO = release)
  may additionally *rebid*: replace one item's merged view with a fresh,
  strictly higher claim of their own — the release frees the budget and the
  non-sub-modular utility lets the refreshed bid exceed the standing
  maximum (Remark 2 + Figure 2).  Sub-modular or keep-policy agents have no
  such move: their refreshed marginals never beat a standing max bid.
* ``rebid_attackers`` (Remark 1 removed) never concede: they keep their own
  claim on any item they claimed instead of merging, the denial-of-service
  rebidding attack of Result 2.

The consensus assertion is the paper's: once the trace is ``val`` states
long (``val = D * |vnode|``), the views must agree — here checked at the
last state, which for honest agents is also a fixpoint.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.api import FormulaProblem, Result
from repro.api import solve as api_solve
from repro.kodkod import ast
from repro.kodkod.bounds import Bounds
from repro.kodkod.engine import translate
from repro.kodkod.translate import Translation
from repro.kodkod.universe import Universe


@dataclass
class DynamicModel:
    """A fully bounded dynamic MCA problem, ready to check."""

    universe: Universe
    bounds: Bounds
    facts: ast.Formula
    consensus_assertion: ast.Formula
    num_pnodes: int
    num_vnodes: int
    num_states: int
    max_value: int
    view: ast.Relation  # bidVector -> bidTriple (the only free relation)

    def check_consensus(self) -> Result:
        """``check consensus``: SAT means a counterexample trace exists."""
        goal = ast.And([self.facts, ast.Not(self.consensus_assertion)])
        return api_solve(FormulaProblem(goal, self.bounds))

    def run_consistency(self) -> Result:
        """``run {}``: find any legal trace (sanity: the model is live)."""
        return api_solve(FormulaProblem(self.facts, self.bounds))

    def translate_check(self) -> Translation:
        """Translate the check without solving (for size benchmarks)."""
        goal = ast.And([self.facts, ast.Not(self.consensus_assertion)])
        return translate(goal, self.bounds)


def build_dynamic(
    num_pnodes: int = 2,
    num_vnodes: int = 2,
    num_states: int | None = None,
    max_value: int = 5,
    edges: list[tuple[int, int]] | None = None,
    release_nonsub: set[int] | None = None,
    rebid_attackers: set[int] | None = None,
) -> DynamicModel:
    """Assemble the bounded dynamic model.

    ``edges`` default to a complete graph.  ``num_states`` defaults to the
    paper's bound plus one initial state: ``D * |vnode| + 1``.
    """
    release_nonsub = release_nonsub or set()
    rebid_attackers = rebid_attackers or set()
    if edges is None:
        edges = [
            (i, j) for i in range(num_pnodes) for j in range(i + 1, num_pnodes)
        ]
    diameter = _diameter(num_pnodes, edges)
    if num_states is None:
        num_states = diameter * num_vnodes + 1

    pnames = [f"pnode${i}" for i in range(num_pnodes)]
    vnames = [f"vnode${j}" for j in range(num_vnodes)]
    bnames = [f"value${k}" for k in range(max_value + 1)]
    null_name = "NULL$0"
    winners = pnames + [null_name]
    triples = list(itertools.product(range(num_vnodes), range(max_value + 1),
                                     range(len(winners))))
    tnames = [f"bt${i}" for i in range(len(triples))]
    snames = [f"ns${s}" for s in range(num_states)]
    bvnames = [
        f"bv${s}_{p}" for s in range(num_states) for p in range(num_pnodes)
    ]
    universe = Universe(
        pnames + vnames + bnames + [null_name] + tnames + snames + bvnames
    )
    bounds = Bounds(universe)

    # --- constant structural relations --------------------------------
    pnode = ast.Relation("pnode", 1)
    vnode = ast.Relation("vnode", 1)
    null_rel = ast.Relation("NULL", 1)
    bounds.bound_exactly(pnode, universe.tuple_set(1, [(n,) for n in pnames]))
    bounds.bound_exactly(vnode, universe.tuple_set(1, [(n,) for n in vnames]))
    bounds.bound_exactly(null_rel, universe.tuple_set(1, [(null_name,)]))

    succ = ast.Relation("value.succ", 2)
    bounds.bound_exactly(succ, universe.tuple_set(2, list(zip(bnames, bnames[1:]))))
    zero = ast.Relation("value#0", 1)
    bounds.bound_exactly(zero, universe.tuple_set(1, [(bnames[0],)]))

    bid_v = ast.Relation("bidTriple.bid_v", 2)
    bid_b = ast.Relation("bidTriple.bid_b", 2)
    bid_w = ast.Relation("bidTriple.bid_w", 2)
    bounds.bound_exactly(bid_v, universe.tuple_set(
        2, [(tnames[i], vnames[v]) for i, (v, _, _) in enumerate(triples)]))
    bounds.bound_exactly(bid_b, universe.tuple_set(
        2, [(tnames[i], bnames[b]) for i, (_, b, _) in enumerate(triples)]))
    bounds.bound_exactly(bid_w, universe.tuple_set(
        2, [(tnames[i], winners[w]) for i, (_, _, w) in enumerate(triples)]))

    net_state = ast.Relation("netState", 1)
    ns_next = ast.Relation("netState.next", 2)
    ns_first = ast.Relation("netState.first", 1)
    ns_last = ast.Relation("netState.last", 1)
    bounds.bound_exactly(net_state, universe.tuple_set(1, [(n,) for n in snames]))
    bounds.bound_exactly(ns_next, universe.tuple_set(2, list(zip(snames, snames[1:]))))
    bounds.bound_exactly(ns_first, universe.tuple_set(1, [(snames[0],)]))
    bounds.bound_exactly(ns_last, universe.tuple_set(1, [(snames[-1],)]))

    bid_vector = ast.Relation("bidVector", 1)
    bv_state = ast.Relation("bidVector.state", 2)
    bv_owner = ast.Relation("bidVector.owner", 2)
    bounds.bound_exactly(bid_vector, universe.tuple_set(1, [(n,) for n in bvnames]))
    bounds.bound_exactly(bv_state, universe.tuple_set(2, [
        (f"bv${s}_{p}", snames[s])
        for s in range(num_states) for p in range(num_pnodes)
    ]))
    bounds.bound_exactly(bv_owner, universe.tuple_set(2, [
        (f"bv${s}_{p}", pnames[p])
        for s in range(num_states) for p in range(num_pnodes)
    ]))

    pconn = ast.Relation("pconnections", 2)
    conn_tuples = []
    for a, b in edges:
        conn_tuples.append((pnames[a], pnames[b]))
        conn_tuples.append((pnames[b], pnames[a]))
    bounds.bound_exactly(pconn, universe.tuple_set(2, conn_tuples))

    # Policy gates as constant unary relations.
    release_rel = ast.Relation("releaseNonsubAgents", 1)
    attacker_rel = ast.Relation("rebidAttackers", 1)
    bounds.bound_exactly(release_rel, universe.tuple_set(
        1, [(pnames[i],) for i in sorted(release_nonsub)]))
    bounds.bound_exactly(attacker_rel, universe.tuple_set(
        1, [(pnames[i],) for i in sorted(rebid_attackers)]))

    # --- the single free relation: views ------------------------------
    view = ast.Relation("bidVector.triples", 2)
    view_upper = universe.tuple_set(2, [
        (bv, t) for bv in bvnames for t in tnames
    ])
    bounds.bound(view, universe.empty(2), view_upper)

    # --- helper expressions --------------------------------------------
    def vge(a: ast.Expr, b: ast.Expr) -> ast.Formula:
        """valGE[a, b]: a >= b over the value chain."""
        return ast.Subset(a, ast.Join(b, ast.Union(ast.Closure(succ), ast.Iden())))

    def vgt(a: ast.Expr, b: ast.Expr) -> ast.Formula:
        """valG[a, b]: a > b."""
        return ast.Subset(a, ast.Join(b, ast.Closure(succ)))

    def bv_of(state: ast.Expr, agent: ast.Expr) -> ast.Expr:
        """The bidVector owned by ``agent`` at ``state``."""
        return ast.Join(bv_state, state).intersection(ast.Join(bv_owner, agent))

    def triple_at(state: ast.Expr, agent: ast.Expr, item: ast.Expr) -> ast.Expr:
        """The triple held by ``agent`` for ``item`` at ``state``."""
        return ast.Join(bv_of(state, agent), view).intersection(
            ast.Join(bid_v, item))

    s = ast.Variable("s")
    s2 = ast.Variable("s'")
    p = ast.Variable("p")
    q = ast.Variable("q")
    v = ast.Variable("v")
    t = ast.Variable("t")
    c = ast.Variable("c")
    p1, p2v = ast.Variable("p1"), ast.Variable("p2")

    facts: list[ast.Formula] = []

    # Every (state, pnode, vnode) has exactly one triple.
    facts.append(ast.ForAll(
        [(s, net_state), (p, pnode), (v, vnode)],
        ast.One(triple_at(s, p, v)),
    ))

    # Initial state: own claims or NULL; NULL means bid zero; claims are
    # positive and pairwise distinct per item (the tie-free abstraction).
    init_triple = triple_at(ns_first, p, v)
    facts.append(ast.ForAll(
        [(p, pnode), (v, vnode)],
        ast.Subset(ast.Join(init_triple, bid_w), p.union(null_rel)),
    ))
    facts.append(ast.ForAll(
        [(p, pnode), (v, vnode)],
        ast.Equal(ast.Join(init_triple, bid_w), null_rel).iff(
            ast.Equal(ast.Join(init_triple, bid_b), zero)
        ),
    ))
    facts.append(ast.ForAll(
        [(p1, pnode), (p2v, pnode), (v, vnode)],
        ast.Not(ast.Equal(p1, p2v)).implies(
            ast.Or([
                ast.Equal(ast.Join(triple_at(ns_first, p1, v), bid_w), null_rel),
                ast.Equal(ast.Join(triple_at(ns_first, p2v, v), bid_w), null_rel),
                ast.Not(ast.Equal(
                    ast.Join(triple_at(ns_first, p1, v), bid_b),
                    ast.Join(triple_at(ns_first, p2v, v), bid_b),
                )),
            ])
        ),
    ))

    # Transition semantics.
    def candidates(state: ast.Expr, agent: ast.Expr, item: ast.Expr) -> ast.Expr:
        neighborhood = agent.union(ast.Join(agent, pconn))
        return ast.Join(
            ast.Join(bv_state, state).intersection(
                ast.Join(bv_owner, neighborhood)),
            view,
        ).intersection(ast.Join(bid_v, item))

    def merge_semantics(agent, item) -> ast.Formula:
        """t'(p, v) is the max-bid candidate from the previous state."""
        new_triple = triple_at(s2, agent, item)
        cand = candidates(s, agent, item)
        keep_own = ast.And([
            ast.Subset(agent, attacker_rel),
            ast.Equal(ast.Join(triple_at(s, agent, item), bid_w), agent),
            ast.Equal(new_triple, triple_at(s, agent, item)),
        ])
        honest = ast.And([
            ast.Subset(new_triple, cand),
            ast.ForAll([(c, cand)], vge(ast.Join(new_triple, bid_b),
                                        ast.Join(c, bid_b))),
        ])
        return ast.Or([keep_own, honest])

    def rebid_semantics(agent, item) -> ast.Formula:
        """A release-enabled non-sub-modular agent refreshes one item with a
        strictly higher own claim (Remark 2 gone wrong, Figure 2)."""
        new_triple = triple_at(s2, agent, item)
        cand = candidates(s, agent, item)
        return ast.And([
            ast.Subset(agent, release_rel),
            ast.Equal(ast.Join(new_triple, bid_w), agent),
            ast.ForAll([(c, cand)], vgt(ast.Join(new_triple, bid_b),
                                        ast.Join(c, bid_b))),
        ])

    honest_step = ast.ForAll([(p, pnode), (v, vnode)], merge_semantics(p, v))
    deviant_step = ast.Exists(
        [(q, pnode), (t, vnode)],
        ast.And([
            rebid_semantics(q, t),
            ast.ForAll(
                [(p, pnode), (v, vnode)],
                ast.Or([
                    ast.And([ast.Equal(p, q), ast.Equal(v, t)]),
                    merge_semantics(p, v),
                ]),
            ),
        ]),
    )
    step = honest_step if not release_nonsub else ast.Or([honest_step,
                                                          deviant_step])
    facts.append(ast.ForAll(
        [(s, net_state), (s2, ast.Join(s, ns_next))], step,
    ))

    # The consensus assertion: at the last state (the trace is exactly
    # val = D*|vnode| transitions long) all views agree per item.
    last = ast.Variable("last")
    consensus = ast.ForAll(
        [(last, ns_last), (p1, pnode), (p2v, pnode), (v, vnode)],
        ast.Equal(triple_at(last, p1, v), triple_at(last, p2v, v)),
    )

    return DynamicModel(
        universe=universe,
        bounds=bounds,
        facts=ast.and_all(facts),
        consensus_assertion=consensus,
        num_pnodes=num_pnodes,
        num_vnodes=num_vnodes,
        num_states=num_states,
        max_value=max_value,
        view=view,
    )


def _diameter(num_pnodes: int, edges: list[tuple[int, int]]) -> int:
    """Graph diameter via Floyd-Warshall (tiny scopes)."""
    if num_pnodes == 1:
        return 1
    inf = float("inf")
    dist = [[0 if i == j else inf for j in range(num_pnodes)]
            for i in range(num_pnodes)]
    for a, b in edges:
        dist[a][b] = dist[b][a] = 1
    for k in range(num_pnodes):
        for i in range(num_pnodes):
            for j in range(num_pnodes):
                if dist[i][k] + dist[k][j] < dist[i][j]:
                    dist[i][j] = dist[i][k] + dist[k][j]
    result = max(max(row) for row in dist)
    if result is inf:
        raise ValueError("agent graph must be connected")
    return int(result)
