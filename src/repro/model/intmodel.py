"""Emulation of Alloy's built-in ``Int`` for the naive encoding.

The paper's first model used Alloy's predefined integers, "predefined and
more complex abstractions in Alloy" (Section IV).  We emulate that style: an
``Int`` sig whose atoms denote 0..max, with *constant* relations for
ordering (``lte``) and saturating addition (``plus``) — the relational
counterpart of the arithmetic circuitry Alloy instantiates for Int.  The
ternary ``plus`` relation is exactly the kind of abstraction the optimized
encoding eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloylite.module import Module, Scope
from repro.alloylite.sig import Sig
from repro.kodkod import ast
from repro.kodkod.bounds import Bounds
from repro.kodkod.universe import Universe


@dataclass
class IntModel:
    """Handles to the Int sig and its constant arithmetic relations."""

    sig: Sig
    lte: ast.Relation    # binary: (a, b) with a <= b
    plus: ast.Relation   # ternary: (a, b, a+b) saturating at max
    max_value: int

    def atom_name(self, value: int) -> str:
        """Universe atom encoding ``value``."""
        if not 0 <= value <= self.max_value:
            raise ValueError(f"{value} outside 0..{self.max_value}")
        return f"{self.sig.name}${value}"

    def literal(self, value: int) -> ast.Expr:
        """Constant expression denoting ``value`` (bounded exactly later)."""
        return IntLiteral(self, value)

    def le(self, a: ast.Expr, b: ast.Expr) -> ast.Formula:
        """``a <= b`` for singleton Int expressions."""
        return ast.Subset(ast.Product(a, b), self.lte)

    def lt(self, a: ast.Expr, b: ast.Expr) -> ast.Formula:
        """``a < b``."""
        return ast.And([self.le(a, b), ast.Not(ast.Equal(a, b))])

    def ge(self, a: ast.Expr, b: ast.Expr) -> ast.Formula:
        """``a >= b``."""
        return self.le(b, a)

    def gt(self, a: ast.Expr, b: ast.Expr) -> ast.Formula:
        """``a > b``."""
        return self.lt(b, a)

    def sum_of(self, a: ast.Expr, b: ast.Expr) -> ast.Expr:
        """Saturating ``a + b`` via the constant ternary plus relation."""
        return ast.Join(b, ast.Join(a, self.plus))


class IntLiteral(ast.Relation):
    """A constant singleton Int relation (one per literal value used)."""

    def __init__(self, model: IntModel, value: int) -> None:
        super().__init__(f"Int#{value}", 1)
        self.model = model
        self.value = value


def declare_int(module: Module, max_value: int) -> IntModel:
    """Declare the Int sig in a module; bounds added by :func:`bound_int`."""
    if max_value < 0:
        raise ValueError("max_value must be >= 0")
    sig = module.sig("Int")
    return IntModel(
        sig=sig,
        lte=ast.Relation("Int.lte", 2),
        plus=ast.Relation("Int.plus", 3),
        max_value=max_value,
    )


def bound_int(model: IntModel, universe: Universe, bounds: Bounds,
              literals: list[IntLiteral]) -> None:
    """Exactly bound the constant arithmetic relations and literals."""
    names = [model.atom_name(v) for v in range(model.max_value + 1)]
    lte_tuples = [
        (names[a], names[b])
        for a in range(model.max_value + 1)
        for b in range(a, model.max_value + 1)
    ]
    bounds.bound_exactly(model.lte, universe.tuple_set(2, lte_tuples))
    plus_tuples = [
        (names[a], names[b], names[min(a + b, model.max_value)])
        for a in range(model.max_value + 1)
        for b in range(model.max_value + 1)
    ]
    bounds.bound_exactly(model.plus, universe.tuple_set(3, plus_tuples))
    seen: set[int] = set()
    for literal in literals:
        if literal.value in seen:
            continue
        seen.add(literal.value)
        bounds.bound_exactly(
            literal, universe.tuple_set(1, [(model.atom_name(literal.value),)])
        )


def int_scope(scope: Scope, model: IntModel) -> Scope:
    """Force the Int sig's scope to exactly max_value + 1 atoms."""
    per_sig = dict(scope.per_sig)
    per_sig[model.sig.name] = model.max_value + 1
    return Scope(default=scope.default, per_sig=per_sig)
