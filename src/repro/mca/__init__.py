"""The Max-Consensus Auction (MCA) protocol: executable reference model.

The paper's two invariant mechanisms — bidding and agreement — with
pluggable policies (utility sub-modularity, target bundle size, release on
outbid, honest/malicious rebidding), synchronous and asynchronous execution
engines, and convergence analysis.
"""

from repro.mca.agent import Agent, AgentSnapshot, OutbidEvent
from repro.mca.conflict import ConflictResolver, ResolutionOutcome
from repro.mca.convergence import (
    ConsensusReport,
    consensus_report,
    detect_cycle,
    max_consensus_target,
    message_bound,
    round_bound,
)
from repro.mca.engine import (
    AsynchronousEngine,
    EngineSnapshot,
    Outcome,
    RoundRecord,
    RunResult,
    SynchronousEngine,
    build_agents,
)
from repro.mca.items import AgentId, ItemBelief, ItemId, Timestamp, ZERO_TIME
from repro.mca.messages import BidMessage
from repro.mca.network import AgentNetwork
from repro.mca.policies import (
    AgentPolicy,
    GeometricUtility,
    RebidStrategy,
    ResidualCapacityUtility,
    TableUtility,
    UtilityFunction,
    non_submodular_policy,
    submodular_policy,
)
from repro.mca.scenarios import (
    example1_engine,
    example1_expected_allocation,
    figure2_engine,
)

__all__ = [
    "Agent",
    "AgentId",
    "AgentNetwork",
    "AgentPolicy",
    "AgentSnapshot",
    "AsynchronousEngine",
    "BidMessage",
    "EngineSnapshot",
    "ConflictResolver",
    "ConsensusReport",
    "GeometricUtility",
    "ItemBelief",
    "ItemId",
    "Outcome",
    "OutbidEvent",
    "RebidStrategy",
    "ResidualCapacityUtility",
    "ResolutionOutcome",
    "RoundRecord",
    "RunResult",
    "SynchronousEngine",
    "TableUtility",
    "Timestamp",
    "UtilityFunction",
    "ZERO_TIME",
    "build_agents",
    "consensus_report",
    "detect_cycle",
    "example1_engine",
    "example1_expected_allocation",
    "figure2_engine",
    "max_consensus_target",
    "message_bound",
    "non_submodular_policy",
    "round_bound",
    "submodular_policy",
]
