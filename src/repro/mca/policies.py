"""MCA policies: the variant aspects of the bidding/agreement mechanisms.

The paper separates the invariant *mechanisms* of MCA from its *policies*
(Section I): the utility function (sub-modular or not, ``p_u``), the target
number of items (``p_T``), the release-outbid behaviour (``p_RO``) and the
honest/malicious rebidding behaviour (the Remark-1 condition).  This module
implements each as a first-class object so that policy combinations can be
swept — the exact experiment of Section V.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.mca.items import ItemId


class UtilityFunction(ABC):
    """Marginal utility ``u(j, m)`` of adding item ``j`` to bundle ``m``."""

    @abstractmethod
    def marginal(self, item: ItemId, bundle: Sequence[ItemId]) -> float:
        """The bid an agent with bundle ``m`` would place on ``j``."""

    def is_submodular_on(self, items: Sequence[ItemId], max_bundle: int) -> bool:
        """Empirically verify Definition 2 on all bundles up to a size.

        ``u(j, m') >= u(j, m)`` for every ``m' ⊂ m`` — checked for every
        item and every pair of nested bundles drawn from ``items``.
        """
        import itertools

        pool = list(items)
        for j in pool:
            others = [i for i in pool if i != j]
            for size in range(min(max_bundle, len(others)) + 1):
                for bundle in itertools.combinations(others, size):
                    value = self.marginal(j, list(bundle))
                    for smaller_size in range(size):
                        for sub in itertools.combinations(bundle, smaller_size):
                            if self.marginal(j, list(sub)) < value:
                                return False
        return True


class GeometricUtility(UtilityFunction):
    """``u(j, m) = base[j] * growth^|m|``.

    ``growth < 1`` gives a sub-modular (diminishing) utility, ``growth > 1``
    a non-sub-modular (increasing) one — the single knob that flips the
    paper's Figure 2 from convergence to oscillation.
    """

    def __init__(self, base: Mapping[ItemId, float], growth: float) -> None:
        if growth <= 0:
            raise ValueError("growth must be positive")
        self._base = dict(base)
        self._growth = growth

    @property
    def growth(self) -> float:
        """The per-bundle-slot growth factor."""
        return self._growth

    def marginal(self, item: ItemId, bundle: Sequence[ItemId]) -> float:
        base = self._base.get(item, 0.0)
        return base * self._growth ** len(bundle)


class TableUtility(UtilityFunction):
    """Explicit ``(item, bundle size) -> value`` table.

    Used to reproduce the paper's figures with their exact bid values.
    Missing entries default to 0 (the agent does not bid).
    """

    def __init__(self, table: Mapping[tuple[ItemId, int], float]) -> None:
        self._table = dict(table)

    def marginal(self, item: ItemId, bundle: Sequence[ItemId]) -> float:
        return self._table.get((item, len(bundle)), 0.0)


class ResidualCapacityUtility(UtilityFunction):
    """The canonical sub-modular utility of the VN-mapping case study.

    The bid on a virtual node is the physical node's *residual* CPU capacity
    after hosting the bundle: "the residual (CPU) capacity can in fact only
    decrease as virtual nodes to be supported are added" (Section II-A).
    A bid of 0 is returned when the demand no longer fits.
    """

    def __init__(self, capacity: float, demands: Mapping[ItemId, float]) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._capacity = capacity
        self._demands = dict(demands)

    def marginal(self, item: ItemId, bundle: Sequence[ItemId]) -> float:
        used = sum(self._demands.get(i, 0.0) for i in bundle)
        residual = self._capacity - used
        demand = self._demands.get(item, 0.0)
        if demand <= 0 or residual < demand:
            return 0.0
        return residual


class RebidStrategy(enum.Enum):
    """How an agent behaves after being outbid (the Remark-1 axis)."""

    HONEST = "honest"
    """Never re-claim a lost item unless the current marginal utility
    genuinely beats the known winning bid (the necessary condition of
    Remark 1 under sub-modular utilities)."""

    ESCALATE = "escalate"
    """Malicious: re-claim every lost item at (known winning bid + 1),
    lying about the private utility.  Hijacks allocations."""

    FLIPFLOP = "flipflop"
    """Malicious: alternately overbid on and release lost items, producing
    a livelock — the denial-of-service rebidding attack of Result 2."""


@dataclass
class AgentPolicy:
    """The complete policy instantiation of one agent."""

    utility: UtilityFunction
    target: int = 1
    """``p_T``: maximum bundle size (target number of items)."""
    release_outbid: bool = False
    """``p_RO``: release (and later rebid) bundle items subsequent to an
    outbid item (Remark 2)."""
    rebid: RebidStrategy = RebidStrategy.HONEST
    """Honest/malicious rebidding behaviour (Remark 1)."""
    extra: dict = field(default_factory=dict)
    """Free-form extension point ("add your policy here" in the paper's
    pnode signature)."""

    def __post_init__(self) -> None:
        if self.target < 0:
            raise ValueError("target bundle size must be non-negative")


def submodular_policy(base: Mapping[ItemId, float], target: int = 2,
                      release_outbid: bool = False) -> AgentPolicy:
    """Convenience: diminishing geometric utility (growth 1/2)."""
    return AgentPolicy(
        utility=GeometricUtility(base, growth=0.5),
        target=target,
        release_outbid=release_outbid,
    )


def non_submodular_policy(base: Mapping[ItemId, float], target: int = 2,
                          release_outbid: bool = True) -> AgentPolicy:
    """Convenience: increasing geometric utility (growth 2)."""
    return AgentPolicy(
        utility=GeometricUtility(base, growth=2.0),
        target=target,
        release_outbid=release_outbid,
    )
