"""MCA agents: the bidding mechanism plus message processing.

An agent holds its item view (the vectors ``a``, ``b``, ``t`` of Section
II-A), its ordered bundle ``m``, a Lamport clock, and its policy
instantiation.  The two mechanism entry points are

* :meth:`Agent.bid_phase` — greedy bundle construction: repeatedly claim
  the item with the highest marginal utility that beats the currently known
  winning bid, until the target ``T`` is reached (plus the malicious
  variants of Result 2); and
* :meth:`Agent.receive` — agreement: merge an incoming bid message through
  the conflict-resolution table, then detect outbids and apply the
  release-outbid policy (Remarks 1 and 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mca.conflict import ConflictResolver
from repro.mca.items import AgentId, ItemBelief, ItemId, Timestamp
from repro.mca.messages import BidMessage
from repro.mca.policies import AgentPolicy, RebidStrategy

DEFAULT_BID_CAP = 10 ** 6


@dataclass
class OutbidEvent:
    """Record of one outbid detection (used for traces and analysis)."""

    item: ItemId
    new_winner: AgentId | None
    released: tuple[ItemId, ...]


@dataclass(frozen=True)
class AgentSnapshot:
    """Cheap, immutable capture of one agent's complete state.

    Beliefs and outbid events are immutable records, so the snapshot only
    copies containers (no deep copy).  Taking and restoring a snapshot is
    O(items), versus O(object graph) for ``copy.deepcopy`` — the
    difference that makes exhaustive schedule exploration tractable.
    """

    beliefs: tuple[tuple[ItemId, ItemBelief], ...]
    bundle: tuple[ItemId, ...]
    clock: int
    outbid_log: tuple[OutbidEvent, ...]
    attack_claims: frozenset[ItemId]
    freshness: dict


class Agent:
    """One MCA agent (a physical node in the VN-mapping case study)."""

    def __init__(self, agent_id: AgentId, policy: AgentPolicy,
                 items: list[ItemId]) -> None:
        if agent_id < 0:
            raise ValueError("agent ids must be non-negative")
        self.id = agent_id
        self.policy = policy
        self.items = list(items)
        self.beliefs: dict[ItemId, ItemBelief] = {
            item: ItemBelief.unassigned() for item in items
        }
        self.bundle: list[ItemId] = []
        self.clock = 0
        self.outbid_log: list[OutbidEvent] = []
        self._resolver = ConflictResolver(agent_id)
        self._attack_claims: set[ItemId] = set()
        self._bid_cap = policy.extra.get("bid_cap", DEFAULT_BID_CAP)

    # ------------------------------------------------------------------
    # Clock & belief plumbing
    # ------------------------------------------------------------------

    def _tick(self) -> Timestamp:
        self.clock += 1
        return Timestamp(self.clock, self.id)

    def _generate(self, item: ItemId, winner: AgentId | None,
                  bid: float) -> None:
        """Record a locally generated claim/reset with a fresh timestamp."""
        belief = ItemBelief(winner=winner, bid=bid, time=self._tick(),
                            origin=self.id)
        self.beliefs[item] = belief
        # Register our own generation so echoes of older info are stale.
        self._resolver.resolve(item, belief, belief)

    # ------------------------------------------------------------------
    # Bidding mechanism
    # ------------------------------------------------------------------

    def bid_phase(self) -> bool:
        """Greedy bundle construction; returns True when new bids were made."""
        changed = self._honest_bids()
        if self.policy.rebid is RebidStrategy.ESCALATE:
            changed = self._escalate_bids() or changed
        elif self.policy.rebid is RebidStrategy.FLIPFLOP:
            changed = self._flipflop_bids() or changed
        return changed

    def _honest_bids(self) -> bool:
        changed = False
        while len(self.bundle) < self.policy.target:
            best_item: ItemId | None = None
            best_value = 0.0
            for item in self.items:
                if item in self.bundle:
                    continue
                value = self.policy.utility.marginal(item, self.bundle)
                if value <= 0:
                    continue
                candidate = ItemBelief(self.id, value, Timestamp(0, self.id),
                                       self.id)
                if not candidate.beats(self.beliefs[item]):
                    continue  # Remark 1: cannot beat the known winning bid
                if best_item is None or value > best_value:
                    best_item = item
                    best_value = value
            if best_item is None:
                break
            self._generate(best_item, self.id, best_value)
            self.bundle.append(best_item)
            changed = True
        return changed

    def _escalate_bids(self) -> bool:
        """Malicious: re-claim every lost item at (winning bid + 1)."""
        changed = False
        for item in self.items:
            belief = self.beliefs[item]
            if belief.winner in (None, self.id):
                continue
            lie = belief.bid + 1
            if lie > self._bid_cap:
                continue
            self._generate(item, self.id, lie)
            if item not in self.bundle:
                self.bundle.append(item)
            changed = True
        return changed

    def _flipflop_bids(self) -> bool:
        """Malicious: alternately hijack and release items (DoS livelock)."""
        changed = False
        for item in self.items:
            belief = self.beliefs[item]
            if belief.winner == self.id and item in self._attack_claims:
                # We won via an attack claim: release, forcing re-auction.
                self._generate(item, None, 0.0)
                self._attack_claims.discard(item)
                if item in self.bundle:
                    self.bundle.remove(item)
                changed = True
            elif belief.winner not in (None, self.id):
                lie = belief.bid + 1
                if lie > self._bid_cap:
                    continue
                self._generate(item, self.id, lie)
                self._attack_claims.add(item)
                if item not in self.bundle:
                    self.bundle.append(item)
                changed = True
        return changed

    # ------------------------------------------------------------------
    # Agreement mechanism
    # ------------------------------------------------------------------

    def receive(self, message: BidMessage) -> bool:
        """Merge an incoming bid message; returns True when beliefs changed."""
        self.clock = max(self.clock, message.clock) + 1
        changed = False
        for item, incoming in message.view().items():
            if item not in self.beliefs:
                continue
            outcome = self._resolver.resolve(item, self.beliefs[item], incoming)
            if outcome.changed:
                self.beliefs[item] = outcome.adopted
                changed = True
        if changed:
            self._handle_outbids()
        return changed

    def _handle_outbids(self) -> None:
        """Drop lost items; with ``p_RO`` release all subsequent items."""
        while True:
            lost_positions = [
                k for k, item in enumerate(self.bundle)
                if self.beliefs[item].winner != self.id
            ]
            if not lost_positions:
                return
            first = lost_positions[0]
            lost_item = self.bundle[first]
            if self.policy.release_outbid:
                released = tuple(self.bundle[first + 1:])
                self.bundle = self.bundle[:first]
                for item in released:
                    # Remark 2: bids generated after an outbid item were
                    # computed with an outdated budget — release them.
                    if self.beliefs[item].winner == self.id:
                        self._generate(item, None, 0.0)
                self.outbid_log.append(
                    OutbidEvent(lost_item, self.beliefs[lost_item].winner,
                                released)
                )
            else:
                del self.bundle[first]
                self.outbid_log.append(
                    OutbidEvent(lost_item, self.beliefs[lost_item].winner, ())
                )

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def outgoing_message(self, receiver: AgentId) -> BidMessage:
        """The agreement-phase broadcast of the full current view."""
        return BidMessage.from_view(self.id, receiver, self.beliefs, self.clock)

    def winning_items(self) -> list[ItemId]:
        """Items this agent currently believes it is winning."""
        return [
            item for item in self.items if self.beliefs[item].winner == self.id
        ]

    # ------------------------------------------------------------------
    # Snapshot protocol (cheap state save/restore for the explorer)
    # ------------------------------------------------------------------

    def snapshot(self) -> AgentSnapshot:
        """Capture the full agent state for later :meth:`restore`."""
        return AgentSnapshot(
            beliefs=tuple(self.beliefs.items()),
            bundle=tuple(self.bundle),
            clock=self.clock,
            outbid_log=tuple(self.outbid_log),
            attack_claims=frozenset(self._attack_claims),
            freshness=self._resolver.snapshot(),
        )

    def restore(self, snapshot: AgentSnapshot) -> None:
        """Reset the agent to a previously captured snapshot."""
        self.beliefs = dict(snapshot.beliefs)
        self.bundle = list(snapshot.bundle)
        self.clock = snapshot.clock
        self.outbid_log = list(snapshot.outbid_log)
        self._attack_claims = set(snapshot.attack_claims)
        self._resolver.restore(snapshot.freshness)

    def view_signature(self) -> tuple:
        """Hashable snapshot of (winner, bid) per item plus the bundle.

        Timestamps are deliberately excluded: oscillation detection needs
        recurring *logical* states even though clocks keep advancing.
        """
        return (
            tuple(
                (item, self.beliefs[item].winner, self.beliefs[item].bid)
                for item in self.items
            ),
            tuple(self.bundle),
        )

    def __repr__(self) -> str:
        return f"Agent({self.id}, bundle={self.bundle})"
