"""Items, beliefs and timestamps for the MCA protocol.

Items are opaque string identifiers (virtual nodes in the VN-mapping case
study, tasks for a UAV fleet, generation duties in a smart grid — per the
paper's Remark 4 only the names change).

A :class:`Timestamp` is a Lamport-style pair ``(counter, agent_id)``: totally
ordered, causally consistent, and unique per generation event.  Bid
generation times are the mechanism the paper uses "to resolve assignment
conflicts in an asynchronous fashion; when transmitted among agents, bids
can in fact arrive out of order" (Section II-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

AgentId = int
ItemId = str


@dataclass(frozen=True, order=True)
class Timestamp:
    """Lamport timestamp: (counter, tie-broken by agent id)."""

    counter: int
    agent_id: AgentId

    def next_for(self, agent_id: AgentId) -> "Timestamp":
        """The successor event timestamp for ``agent_id``."""
        return Timestamp(self.counter + 1, agent_id)


ZERO_TIME = Timestamp(0, -1)


@dataclass(frozen=True)
class ItemBelief:
    """An agent's current knowledge about one item.

    ``winner`` is the believed winning agent (None = unassigned), ``bid``
    the winning bid, ``time`` the generation timestamp of this information
    and ``origin`` the agent that generated it (the winner for claims, the
    releasing agent for resets).
    """

    winner: Optional[AgentId]
    bid: float
    time: Timestamp
    origin: AgentId

    @staticmethod
    def unassigned() -> "ItemBelief":
        """The initial belief: nobody wins, zero bid."""
        return ItemBelief(winner=None, bid=0.0, time=ZERO_TIME, origin=-1)

    def is_claim(self) -> bool:
        """True when some agent is believed to win the item."""
        return self.winner is not None

    def key(self) -> tuple:
        """Comparison key for winner determination: bid desc, id asc.

        A claim beats another iff it has a strictly higher bid, or an equal
        bid from a lower agent id (the deterministic tie-break that keeps
        winner determination consistent across agents).
        """
        if self.winner is None:
            return (0.0, float("inf"))
        return (self.bid, -self.winner)

    def beats(self, other: "ItemBelief") -> bool:
        """True when this claim displaces ``other`` under the max-rule."""
        if self.winner is None:
            return False
        if other.winner is None:
            return True
        if self.bid != other.bid:
            return self.bid > other.bid
        return self.winner < other.winner
