"""Protocol engines: synchronous rounds and asynchronous message delivery.

The synchronous engine is the Figure-1/Figure-2 execution model: every round
each agent runs its bidding phase, then all agents exchange their views with
their neighbors simultaneously.  The asynchronous engine delivers one
message at a time under a pluggable scheduler — the execution model of the
paper's dynamic sub-model (``netState``/``buffMsgs``).

Both engines record traces and terminate on convergence, on a detected
oscillation (a repeated global logical state), or at a round/message cap.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.mca.agent import Agent, AgentSnapshot
from repro.mca.items import AgentId, ItemId
from repro.mca.messages import BidMessage
from repro.mca.network import AgentNetwork
from repro.mca.policies import AgentPolicy


@dataclass(frozen=True)
class EngineSnapshot:
    """Capture of an engine's complete state (one snapshot per agent).

    Built by ``SynchronousEngine.snapshot`` / ``AsynchronousEngine.snapshot``
    and applied by their ``restore``; the explorer uses these instead of
    ``copy.deepcopy`` to branch over schedules in O(agents * items).
    """

    agents: tuple[tuple[AgentId, AgentSnapshot], ...]
    messages_processed: int
    buffer: tuple[BidMessage, ...] = ()


class Outcome(enum.Enum):
    """Terminal verdict of a protocol run."""

    CONVERGED = "converged"
    OSCILLATION = "oscillation"
    EXHAUSTED = "exhausted"


@dataclass
class RoundRecord:
    """Snapshot of one synchronous round."""

    round_index: int
    bids: dict[AgentId, dict[ItemId, float]]
    bundles: dict[AgentId, tuple[ItemId, ...]]
    allocation: dict[ItemId, AgentId | None]


@dataclass
class RunResult:
    """Everything a protocol run produced."""

    outcome: Outcome
    rounds: int
    messages_processed: int
    allocation: dict[ItemId, AgentId | None]
    trace: list[RoundRecord] = field(default_factory=list)
    cycle_start: int | None = None
    cycle_length: int | None = None

    @property
    def converged(self) -> bool:
        """True when a stable agreement was reached."""
        return self.outcome is Outcome.CONVERGED

    @property
    def oscillated(self) -> bool:
        """True when a repeating logical state (livelock) was detected."""
        return self.outcome is Outcome.OSCILLATION


def build_agents(network: AgentNetwork, items: list[ItemId],
                 policies: dict[AgentId, AgentPolicy]) -> dict[AgentId, Agent]:
    """Instantiate one agent per network node with its policy."""
    missing = [a for a in network.agents() if a not in policies]
    if missing:
        raise ValueError(f"no policy for agents {missing}")
    return {
        agent_id: Agent(agent_id, policies[agent_id], items)
        for agent_id in network.agents()
    }


class SynchronousEngine:
    """Lock-step rounds: bid, then exchange with all neighbors."""

    def __init__(self, network: AgentNetwork, items: list[ItemId],
                 policies: dict[AgentId, AgentPolicy]) -> None:
        self.network = network
        self.items = list(items)
        self.agents = build_agents(network, items, policies)
        self.messages_processed = 0

    def global_signature(self) -> tuple:
        """Hashable logical state: every agent's view signature, in order."""
        return tuple(
            self.agents[a].view_signature() for a in self.network.agents()
        )

    # Backwards-compatible private alias.
    _global_signature = global_signature

    def snapshot(self) -> EngineSnapshot:
        """Capture all agent states for later :meth:`restore`."""
        return EngineSnapshot(
            agents=tuple(
                (a, self.agents[a].snapshot()) for a in self.network.agents()
            ),
            messages_processed=self.messages_processed,
        )

    def restore(self, snapshot: EngineSnapshot) -> None:
        """Reset every agent to a previously captured snapshot."""
        for agent_id, agent_snapshot in snapshot.agents:
            self.agents[agent_id].restore(agent_snapshot)
        self.messages_processed = snapshot.messages_processed

    def _allocation(self) -> dict[ItemId, AgentId | None]:
        """Winner per item according to agent 0's view (post-convergence all
        views agree; pre-convergence this is just a progress indicator)."""
        first = self.agents[self.network.agents()[0]]
        return {item: first.beliefs[item].winner for item in self.items}

    def _record(self, round_index: int) -> RoundRecord:
        return RoundRecord(
            round_index=round_index,
            bids={
                a: {j: ag.beliefs[j].bid for j in self.items}
                for a, ag in self.agents.items()
            },
            bundles={a: tuple(ag.bundle) for a, ag in self.agents.items()},
            allocation=self._allocation(),
        )

    def run(self, max_rounds: int = 100) -> RunResult:
        """Run until convergence, oscillation, or ``max_rounds``."""
        trace: list[RoundRecord] = []
        seen: dict[tuple, int] = {}
        for round_index in range(max_rounds):
            any_bid = False
            for agent_id in self.network.agents():
                if self.agents[agent_id].bid_phase():
                    any_bid = True
            # Simultaneous exchange: snapshot all messages, then deliver.
            outbox: list[BidMessage] = []
            for sender in self.network.agents():
                for receiver in self.network.neighbors(sender):
                    outbox.append(self.agents[sender].outgoing_message(receiver))
            any_change = False
            for message in outbox:
                self.messages_processed += 1
                if self.agents[message.receiver].receive(message):
                    any_change = True
            trace.append(self._record(round_index))
            if not any_bid and not any_change:
                return RunResult(
                    outcome=Outcome.CONVERGED,
                    rounds=round_index + 1,
                    messages_processed=self.messages_processed,
                    allocation=self._allocation(),
                    trace=trace,
                )
            signature = self._global_signature()
            if signature in seen:
                return RunResult(
                    outcome=Outcome.OSCILLATION,
                    rounds=round_index + 1,
                    messages_processed=self.messages_processed,
                    allocation=self._allocation(),
                    trace=trace,
                    cycle_start=seen[signature],
                    cycle_length=round_index - seen[signature],
                )
            seen[signature] = round_index
        return RunResult(
            outcome=Outcome.EXHAUSTED,
            rounds=max_rounds,
            messages_processed=self.messages_processed,
            allocation=self._allocation(),
            trace=trace,
        )


class AsynchronousEngine:
    """One-message-at-a-time delivery under a pluggable scheduler.

    Schedulers: ``"fifo"`` processes the buffer in order; ``"random"``
    picks a buffered message uniformly (seeded).  After every delivery the
    receiver re-runs its bidding phase and, if its view changed or it placed
    new bids, broadcasts to its neighbors.
    """

    def __init__(self, network: AgentNetwork, items: list[ItemId],
                 policies: dict[AgentId, AgentPolicy],
                 scheduler: str = "fifo", seed: int = 0) -> None:
        if scheduler not in ("fifo", "random"):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        self.network = network
        self.items = list(items)
        self.agents = build_agents(network, items, policies)
        self.scheduler = scheduler
        self._rng = random.Random(seed)
        self.buffer: list[BidMessage] = []
        self.messages_processed = 0

    def _broadcast(self, sender: AgentId) -> None:
        for receiver in self.network.neighbors(sender):
            self.buffer.append(self.agents[sender].outgoing_message(receiver))

    def snapshot(self) -> EngineSnapshot:
        """Capture agent states and the pending message buffer."""
        return EngineSnapshot(
            agents=tuple(
                (a, self.agents[a].snapshot()) for a in self.network.agents()
            ),
            messages_processed=self.messages_processed,
            buffer=tuple(self.buffer),
        )

    def restore(self, snapshot: EngineSnapshot) -> None:
        """Reset agents and the message buffer to a captured snapshot."""
        for agent_id, agent_snapshot in snapshot.agents:
            self.agents[agent_id].restore(agent_snapshot)
        self.messages_processed = snapshot.messages_processed
        self.buffer = list(snapshot.buffer)

    def _signature(self) -> tuple:
        views = tuple(
            self.agents[a].view_signature() for a in self.network.agents()
        )
        pending = tuple(sorted(
            (m.sender, m.receiver, tuple(
                (j, -1 if b.winner is None else b.winner, b.bid)
                for j, b in m.beliefs
            ))
            for m in self.buffer
        ))
        return views, pending

    def run(self, max_messages: int = 10000) -> RunResult:
        """Run until the buffer drains (convergence), a repeated logical
        state (oscillation), or the message cap."""
        for agent_id in self.network.agents():
            if self.agents[agent_id].bid_phase():
                self._broadcast(agent_id)
        seen: dict[tuple, int] = {self._signature(): 0}
        while self.buffer:
            if self.messages_processed >= max_messages:
                return self._result(Outcome.EXHAUSTED)
            if self.scheduler == "random":
                index = self._rng.randrange(len(self.buffer))
            else:
                index = 0
            message = self.buffer.pop(index)
            self.messages_processed += 1
            receiver = self.agents[message.receiver]
            changed = receiver.receive(message)
            rebid = receiver.bid_phase()
            if changed or rebid:
                self._broadcast(message.receiver)
            signature = self._signature()
            if signature in seen:
                result = self._result(Outcome.OSCILLATION)
                result.cycle_start = seen[signature]
                result.cycle_length = self.messages_processed - seen[signature]
                return result
            seen[signature] = self.messages_processed
        return self._result(Outcome.CONVERGED)

    def _allocation(self) -> dict[ItemId, AgentId | None]:
        first = self.agents[self.network.agents()[0]]
        return {item: first.beliefs[item].winner for item in self.items}

    def _result(self, outcome: Outcome) -> RunResult:
        return RunResult(
            outcome=outcome,
            rounds=0,
            messages_processed=self.messages_processed,
            allocation=self._allocation(),
        )
