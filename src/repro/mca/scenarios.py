"""Canonical scenarios from the paper: Example 1 (Figure 1) and Figure 2.

These are the concrete workloads the paper walks through; the benchmark
harness replays them and asserts the published behaviour.
"""

from __future__ import annotations

from repro.mca.engine import SynchronousEngine
from repro.mca.network import AgentNetwork
from repro.mca.policies import AgentPolicy, GeometricUtility, TableUtility


def example1_engine() -> SynchronousEngine:
    """Figure 1: agents 1 and 2 bid on items A, B, C.

    Agent 1 bids 10 on A and 30 on C; agent 2 bids 20 on A and 15 on B.
    After one exchange both agree: b = (20, 15, 30), a = (2, 2, 1) — in our
    0-based ids, winners (agent 1, agent 1, agent 0).

    The paper's bid values are position-independent, so a flat table (the
    same value regardless of bundle size) reproduces them exactly.
    """
    items = ["A", "B", "C"]
    # Agent ids are 0-based here: paper agent 1 -> 0, agent 2 -> 1.
    agent1 = AgentPolicy(
        utility=TableUtility({("A", 0): 10, ("A", 1): 10,
                              ("C", 0): 30, ("C", 1): 30}),
        target=2,
    )
    agent2 = AgentPolicy(
        utility=TableUtility({("A", 0): 20, ("A", 1): 20,
                              ("B", 0): 15, ("B", 1): 15}),
        target=2,
    )
    network = AgentNetwork.complete(2)
    return SynchronousEngine(network, items, {0: agent1, 1: agent2})


def example1_expected_allocation() -> dict[str, int]:
    """The agreed assignment of Figure 1 (0-based agent ids)."""
    return {"A": 1, "B": 1, "C": 0}


def figure2_engine(submodular: bool, release_outbid: bool = True
                   ) -> SynchronousEngine:
    """Figure 2: two agents, two items, symmetric preferences.

    Each agent prefers a different item first; bids on the second bundle
    slot shrink (sub-modular, growth 1/2) or grow (non-sub-modular, growth
    2).  With ``release_outbid`` and non-sub-modular utilities the run
    oscillates — the paper's headline counterexample.
    """
    items = ["VN1", "VN2"]
    growth = 0.5 if submodular else 2.0
    agent1 = AgentPolicy(
        utility=GeometricUtility({"VN1": 10, "VN2": 8}, growth=growth),
        target=2,
        release_outbid=release_outbid,
    )
    agent2 = AgentPolicy(
        utility=GeometricUtility({"VN1": 8, "VN2": 10}, growth=growth),
        target=2,
        release_outbid=release_outbid,
    )
    network = AgentNetwork.complete(2)
    return SynchronousEngine(network, items, {0: agent1, 1: agent2})
