"""Agent communication networks and standard topologies.

The agreement mechanism exchanges bids with *first-hop neighbors* only; the
network's diameter ``D`` bounds convergence time (``D * |J|`` messages,
Section V).  Built on :mod:`networkx` for diameter/connectivity queries.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator

import networkx as nx

from repro.mca.items import AgentId


class AgentNetwork:
    """An undirected, connected communication graph over agent ids."""

    def __init__(self, edges: Iterable[tuple[AgentId, AgentId]],
                 nodes: Iterable[AgentId] | None = None) -> None:
        graph = nx.Graph()
        if nodes is not None:
            graph.add_nodes_from(nodes)
        for a, b in edges:
            if a == b:
                raise ValueError("self-loops are not allowed")
            graph.add_edge(a, b)
        if graph.number_of_nodes() == 0:
            raise ValueError("network needs at least one agent")
        if graph.number_of_nodes() > 1 and not nx.is_connected(graph):
            raise ValueError("agent network must be connected")
        self._graph = graph

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph."""
        return self._graph

    def agents(self) -> list[AgentId]:
        """All agent ids, sorted."""
        return sorted(self._graph.nodes)

    def neighbors(self, agent: AgentId) -> list[AgentId]:
        """First-hop neighbors of ``agent``, sorted."""
        return sorted(self._graph.neighbors(agent))

    def diameter(self) -> int:
        """Graph diameter ``D`` (0 for a single agent)."""
        if self._graph.number_of_nodes() == 1:
            return 0
        return nx.diameter(self._graph)

    def edges(self) -> Iterator[tuple[AgentId, AgentId]]:
        """All undirected edges."""
        return iter(sorted(tuple(sorted(e)) for e in self._graph.edges))

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __contains__(self, agent: object) -> bool:
        return agent in self._graph

    # ------------------------------------------------------------------
    # Topology factories
    # ------------------------------------------------------------------

    @staticmethod
    def complete(n: int) -> "AgentNetwork":
        """Fully connected network of ``n`` agents."""
        _require_positive(n)
        return AgentNetwork(
            ((i, j) for i in range(n) for j in range(i + 1, n)), nodes=range(n)
        )

    @staticmethod
    def line(n: int) -> "AgentNetwork":
        """Path topology: diameter n-1."""
        _require_positive(n)
        return AgentNetwork(zip(range(n - 1), range(1, n)), nodes=range(n))

    @staticmethod
    def ring(n: int) -> "AgentNetwork":
        """Cycle topology (n >= 3)."""
        if n < 3:
            raise ValueError("a ring needs at least 3 agents")
        edges = list(zip(range(n - 1), range(1, n))) + [(n - 1, 0)]
        return AgentNetwork(edges, nodes=range(n))

    @staticmethod
    def star(n: int) -> "AgentNetwork":
        """Hub-and-spoke: agent 0 is the hub."""
        _require_positive(n)
        return AgentNetwork(((0, i) for i in range(1, n)), nodes=range(n))

    @staticmethod
    def random_connected(n: int, extra_edge_prob: float = 0.3,
                         seed: int = 0) -> "AgentNetwork":
        """Random spanning tree plus extra random edges; always connected."""
        _require_positive(n)
        rng = random.Random(seed)
        nodes = list(range(n))
        rng.shuffle(nodes)
        edges = set()
        for i in range(1, n):
            parent = nodes[rng.randrange(i)]
            edges.add(tuple(sorted((parent, nodes[i]))))
        for i in range(n):
            for j in range(i + 1, n):
                if (i, j) not in edges and rng.random() < extra_edge_prob:
                    edges.add((i, j))
        return AgentNetwork(edges, nodes=range(n))


def _require_positive(n: int) -> None:
    if n < 1:
        raise ValueError("need at least one agent")
