"""Convergence analysis: consensus predicates and the D*|J| message bound.

Implements Definition 1 (max-consensus) and the paper's convergence notion:
"the attainment of a distributed conflict-free assignment of the items on
auction", plus the classic bound that consensus requires at most
``D * |J|`` communication rounds on a connected agent network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mca.agent import Agent
from repro.mca.engine import RoundRecord
from repro.mca.items import AgentId, ItemId
from repro.mca.network import AgentNetwork


@dataclass
class ConsensusReport:
    """Breakdown of the consensus predicate over a set of agents."""

    views_agree: bool
    conflict_free: bool
    bundles_consistent: bool

    @property
    def consensus(self) -> bool:
        """The paper's ``consensusPred``: equal winners and winner-bids,
        plus a conflict-free assignment."""
        return self.views_agree and self.conflict_free and self.bundles_consistent


def consensus_report(agents: dict[AgentId, Agent]) -> ConsensusReport:
    """Evaluate the consensus predicate on the agents' current views."""
    agent_list = list(agents.values())
    if not agent_list:
        raise ValueError("no agents")
    reference = agent_list[0]
    views_agree = all(
        {j: (a.beliefs[j].winner, a.beliefs[j].bid) for j in a.items}
        == {j: (reference.beliefs[j].winner, reference.beliefs[j].bid)
            for j in reference.items}
        for a in agent_list[1:]
    )
    # Conflict freedom: every item has at most one winner across all local
    # views (an item may legitimately stay unassigned when nobody bids).
    winners_per_item: dict[ItemId, set[AgentId]] = {}
    for agent in agent_list:
        for item in agent.items:
            winner = agent.beliefs[item].winner
            if winner is not None:
                winners_per_item.setdefault(item, set()).add(winner)
    conflict_free = all(len(ws) <= 1 for ws in winners_per_item.values())
    # Bundle consistency: an agent's bundle must match what it believes it
    # wins, and two agents' bundles must not overlap.
    bundles_consistent = True
    claimed: dict[ItemId, AgentId] = {}
    for agent in agent_list:
        for item in agent.bundle:
            if agent.beliefs[item].winner != agent.id:
                bundles_consistent = False
            if item in claimed and claimed[item] != agent.id:
                bundles_consistent = False
            claimed[item] = agent.id
    return ConsensusReport(views_agree, conflict_free, bundles_consistent)


def message_bound(network: AgentNetwork, items: list[ItemId]) -> int:
    """The paper's ``val`` parameter: consensus needs <= D * |J| rounds.

    "the number of messages required to reach consensus is upper bounded by
    D * |V_H| ... because the maximum bid for each item only has to
    traverse the network of agents once" (Section V).
    """
    return max(1, network.diameter()) * max(1, len(items))


def round_bound(network: AgentNetwork, items: list[ItemId],
                targets: dict[AgentId, int] | None = None) -> int:
    """Upper bound on *synchronous rounds* to converge with bundles.

    ``message_bound`` covers the single-bid flooding of Definition 1, but
    with greedy bundle construction (targets > 1) an outbid can empty an
    agent's bundle and *raise* its first-slot marginal (sub-modular
    utilities diminish with bundle size), triggering a re-auction wave for
    an item whose winner looked settled.  Each agent can start at most
    ``target`` such waves per item (its marginal takes one of ``target``
    values, each beating the standing bid at most once), so rounds are
    bounded by the flooding term plus one wave term per bundle slot.
    """
    if targets is None:
        slots = len(network)
    else:
        slots = sum(max(1, t) for t in targets.values())
    return message_bound(network, items) + slots + 1


def max_consensus_target(initial_bids: dict[AgentId, dict[ItemId, float]]
                         ) -> dict[ItemId, float]:
    """Definition 1's fixpoint: the component-wise maximum of initial bids."""
    target: dict[ItemId, float] = {}
    for bids in initial_bids.values():
        for item, value in bids.items():
            target[item] = max(target.get(item, float("-inf")), value)
    return target


def detect_cycle(trace: list[RoundRecord]) -> tuple[int, int] | None:
    """Find a repeated (bids, bundles, allocation) snapshot in a trace.

    Returns (first occurrence index, cycle length) or None.  This is the
    trace-level view of the oscillation the paper's Figure 2 depicts:
    iteration 3 identical to iteration 1.
    """
    seen: dict[tuple, int] = {}
    for record in trace:
        key = (
            tuple(sorted(
                (a, tuple(sorted(bids.items()))) for a, bids in record.bids.items()
            )),
            tuple(sorted(record.bundles.items())),
            tuple(sorted(record.allocation.items())),
        )
        if key in seen:
            return seen[key], record.round_index - seen[key]
        seen[key] = record.round_index
    return None
