"""Bid messages exchanged during the agreement phase.

Mirrors the paper's ``message`` signature: sender, receiver, and the
sender's full view — winners (``msgWinners``), bids (``msgBids``) and bid
generation times (``msgBidTimes``) for every item.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mca.items import AgentId, ItemBelief, ItemId


@dataclass(frozen=True)
class BidMessage:
    """One agreement-phase message: the sender's complete item view."""

    sender: AgentId
    receiver: AgentId
    beliefs: tuple[tuple[ItemId, ItemBelief], ...]
    clock: int
    """Sender's Lamport clock at send time (receivers join clocks)."""

    @staticmethod
    def from_view(sender: AgentId, receiver: AgentId,
                  view: dict[ItemId, ItemBelief], clock: int) -> "BidMessage":
        """Build a message from an agent's belief dictionary."""
        ordered = tuple(sorted(view.items()))
        return BidMessage(sender, receiver, ordered, clock)

    def view(self) -> dict[ItemId, ItemBelief]:
        """The carried beliefs as a dictionary."""
        return dict(self.beliefs)

    def __repr__(self) -> str:
        summary = ", ".join(
            f"{item}:{belief.winner}@{belief.bid:g}" for item, belief in self.beliefs
        )
        return f"BidMessage({self.sender}->{self.receiver}, {summary})"
