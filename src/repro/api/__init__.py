"""``repro.api`` — the unified verification façade.

One stable surface over the whole stack: describe a problem
(:class:`FormulaProblem`, :class:`ModuleProblem` or
:class:`ProtocolProblem`), tune one validated :class:`Options`, call
:func:`solve` / :func:`check` / :func:`enumerate` / :func:`run_protocol`
(or :func:`solve_many` for cached, sharded batches), and read one
uniform :class:`Result`.  Backends plug in behind the :class:`Backend`
protocol via :func:`register_backend`.

Quickstart::

    from repro import api
    from repro.kodkod import Bounds, Universe, ast

    u = Universe(["a", "b", "c"])
    r = ast.Relation("r", 1)
    bounds = Bounds(u)
    bounds.bound(r, u.empty(1), u.all_tuples(1))
    result = api.solve(ast.Some(r), bounds)
    assert result.satisfiable
    print(result.describe())
"""

from repro.api.options import Options
from repro.api.problems import (
    FormulaProblem,
    ModuleProblem,
    Problem,
    ProtocolProblem,
    problem_fingerprint,
    problem_from_spec,
    problem_kind,
)
from repro.api.result import (
    Result,
    Verdict,
    describe_verdict,
    instance_payload,
    result_from_json,
    result_to_json,
)
from repro.api.backends import (
    Backend,
    ExplorerBackend,
    KodkodBackend,
    available_backends,
    backend_for,
    get_backend,
    register_backend,
)
from repro.api.facade import check, enumerate, run_protocol, solve, solve_delta
from repro.api.batch import (
    BATCH_SCHEMA,
    DEFAULT_TASK_TIMEOUT,
    batch_cache_key,
    solve_many,
)
# Imported last: the delta module imports the facade/backends modules
# above at load time (and pulls repro.fuzz in lazily at call time).
from repro.api.delta import DeltaSession, ProblemDelta, diff_problems

__all__ = [
    "BATCH_SCHEMA",
    "Backend",
    "DEFAULT_TASK_TIMEOUT",
    "DeltaSession",
    "ExplorerBackend",
    "FormulaProblem",
    "KodkodBackend",
    "ModuleProblem",
    "Options",
    "Problem",
    "ProblemDelta",
    "ProtocolProblem",
    "Result",
    "Verdict",
    "available_backends",
    "backend_for",
    "batch_cache_key",
    "check",
    "describe_verdict",
    "diff_problems",
    "enumerate",
    "get_backend",
    "instance_payload",
    "problem_fingerprint",
    "problem_from_spec",
    "problem_kind",
    "register_backend",
    "result_from_json",
    "result_to_json",
    "run_protocol",
    "solve",
    "solve_delta",
    "solve_many",
]
