"""Top-level façade: one call surface for the whole verification stack.

``solve``/``check``/``enumerate``/``run_protocol`` accept either a
ready-made problem object or the natural positional spelling
(formula+bounds, module+assertion, network+items+policies), resolve a
backend from the registry, and return the uniform
:class:`~repro.api.result.Result`.  Keyword overrides are merged into a
validated :class:`~repro.api.options.Options`, so every entry point
shares one option vocabulary.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.api.backends import backend_for
from repro.api.options import Options, resolve_options
from repro.api.problems import (
    FormulaProblem,
    ModuleProblem,
    Problem,
    ProtocolProblem,
)
from repro.api.result import Result, Verdict
from repro.alloylite.module import Module, Scope
from repro.kodkod import ast
from repro.kodkod.bounds import Bounds
from repro.mca.network import AgentNetwork

_PROBLEM_TYPES = (FormulaProblem, ModuleProblem, ProtocolProblem)


def _as_problem(problem, bounds) -> Problem:
    if isinstance(problem, _PROBLEM_TYPES):
        if bounds is not None:
            raise ValueError(
                "bounds must be omitted when a Problem object is passed "
                "(the problem already carries its bounds)"
            )
        return problem
    if isinstance(problem, ast.Formula):
        if bounds is None:
            raise ValueError(
                "solving a raw formula requires bounds: "
                "solve(formula, bounds) or solve(FormulaProblem(...))"
            )
        return FormulaProblem(problem, bounds)
    if isinstance(problem, Module):
        if bounds is not None and not isinstance(bounds, Scope):
            raise ValueError(
                f"the second argument for a Module must be a Scope, got "
                f"{type(bounds).__name__}"
            )
        return ModuleProblem(problem, "run", None, bounds)
    raise ValueError(
        f"cannot interpret {type(problem).__name__} as a problem; pass a "
        f"FormulaProblem/ModuleProblem/ProtocolProblem, a formula with "
        f"bounds, or a Module"
    )


def solve(problem, bounds=None, *, options: Options | None = None,
          **overrides) -> Result:
    """Decide a problem: find one witnessing instance or refute.

    Accepts a problem object, ``(formula, bounds)``, or a module (its
    facts are run at the default scope).  Verdicts: SAT/UNSAT for
    satisfiability problems, HOLDS/COUNTEREXAMPLE for ``check``-command
    module problems and protocol problems.
    """
    opts = resolve_options(options, overrides)
    resolved = _as_problem(problem, bounds)
    return backend_for(resolved, opts).solve(resolved, opts)


def solve_delta(prev, new_problem, *, options: Options | None = None,
                **overrides) -> Result:
    """Decide ``new_problem``, reusing solver state from ``prev`` when safe.

    ``prev`` is a previously-solved problem or (for amortized chains) a
    ``repro.api.DeltaSession``.  When the two problems differ only in
    delta-safe ways (identical, or free-tuple bounds narrowed), the
    answer comes from the anchored live solver via assumptions; any other
    edit — structure changed, bounds widened, symmetry requested — falls
    back to a fresh full solve.  The verdict always equals a fresh
    ``solve(new_problem)``; ``result.detail["delta"]`` records the path
    taken.  See :mod:`repro.api.delta` for the edit taxonomy.
    """
    # Imported lazily: the delta module imports this one at load time.
    from repro.api.delta import solve_delta as _solve_delta

    return _solve_delta(prev, new_problem, options=options, **overrides)


def check(module, assertion=None, scope: Scope | None = None, *,
          options: Options | None = None, **overrides) -> Result:
    """Check an assertion: search for a counterexample.

    Accepts ``(module, assertion[, scope])``, a ``FormulaProblem`` (the
    formula is the assertion, checked for validity within its bounds), a
    ``check``-command ``ModuleProblem``, or a ``ProtocolProblem``.
    Verdict is always HOLDS or COUNTEREXAMPLE.
    """
    opts = resolve_options(options, overrides)
    if isinstance(module, _PROBLEM_TYPES):
        if assertion is not None or scope is not None:
            raise ValueError(
                "assertion/scope must be omitted when a Problem object "
                "is passed"
            )
        if isinstance(module, FormulaProblem):
            # Validity of a raw formula: a counterexample is a model of
            # its negation within the same bounds.
            negated = FormulaProblem(ast.Not(module.formula), module.bounds)
            result = backend_for(negated, opts).solve(negated, opts)
            result.verdict = (Verdict.COUNTEREXAMPLE if result.satisfiable
                              else Verdict.HOLDS)
            return result
        if isinstance(module, ModuleProblem) and module.command != "check":
            raise ValueError(
                "check() needs a ModuleProblem with command='check' (a "
                "'run' problem answers satisfiability, not validity); "
                "use solve() for it, or rebuild the problem with "
                "command='check' and the assertion as its goal"
            )
        problem: Problem = module
    else:
        if not isinstance(module, Module):
            raise ValueError(
                f"check() needs an alloylite Module (or a Problem object), "
                f"got {type(module).__name__}"
            )
        if assertion is None:
            raise ValueError(
                "check() requires an assertion formula to refute"
            )
        problem = ModuleProblem(module, "check", assertion, scope)
    return backend_for(problem, opts).solve(problem, opts)


def enumerate(problem, bounds=None, *, limit: int | None = None,
              options: Options | None = None, **overrides) -> Result:
    """Enumerate witnessing instances (distinct relational valuations).

    ``limit`` is shorthand for ``max_instances``.  Symmetry breaking
    defaults to *off* here so every model is produced; pass
    ``symmetry > 0`` to enumerate canonical orbit representatives only.
    """
    opts = resolve_options(options, overrides)
    if limit is not None:
        opts = opts.replace(max_instances=limit)
    resolved = _as_problem(problem, bounds)
    return backend_for(resolved, opts).enumerate(resolved, opts)


def run_protocol(network, items: Iterable = None,
                 policies: Mapping | None = None, *,
                 options: Options | None = None, **overrides) -> Result:
    """Exhaustively explore a protocol instance's schedules.

    Accepts a ``ProtocolProblem`` or ``(network, items, policies)``.
    Verdict is HOLDS when every schedule converges within
    ``options.max_rounds``, COUNTEREXAMPLE (with ``trace``) otherwise.
    """
    opts = resolve_options(options, overrides)
    if isinstance(network, ProtocolProblem):
        if items is not None or policies is not None:
            raise ValueError(
                "items/policies must be omitted when a ProtocolProblem "
                "is passed"
            )
        problem = network
    else:
        if not isinstance(network, AgentNetwork):
            raise ValueError(
                f"run_protocol() needs an AgentNetwork (or a "
                f"ProtocolProblem), got {type(network).__name__}"
            )
        if items is None or policies is None:
            raise ValueError(
                "run_protocol(network, items, policies) requires items "
                "and policies"
            )
        problem = ProtocolProblem(network, tuple(items), dict(policies))
    return backend_for(problem, opts).solve(problem, opts)
