"""``solve_many``: the façade's batch path.

Fans a list of problems out over the campaign runner's process-pool
machinery (:func:`repro.campaign.runner.map_jobs`) and shares its
content-addressed on-disk cache format (:class:`repro.campaign.runner.ResultCache`):
each (problem fingerprint, result-affecting options) pair is computed
once, and warm re-runs — from any process, with any worker count — are
pure cache reads.  Error results (crash, stalled worker) are returned as
``Verdict.ERROR`` rows and never cached, mirroring the campaign runner's
retry-on-next-run policy.
"""

from __future__ import annotations

import hashlib
import json
import time
import traceback
from pathlib import Path
from typing import Callable, Sequence

from repro.api.facade import solve
from repro.api.options import Options, resolve_options
from repro.api.problems import Problem, problem_fingerprint
from repro.api.result import Result, result_from_json, result_to_json

BATCH_SCHEMA = 1
"""Bump to invalidate every cached batch result (semantic change)."""

DEFAULT_TASK_TIMEOUT = 120.0
"""Default pool *stall* bound for the sharded path (seconds without any
task completing before the pool is declared wedged).  Independent of
``Options.timeout``, which budgets a single solve."""


def batch_cache_key(problem: Problem, options: Options) -> str:
    """Content hash identifying one (problem, options) solve."""
    payload = json.dumps(
        {
            "schema": BATCH_SCHEMA,
            "op": "solve",
            "problem": problem_fingerprint(problem),
            "options": options.cache_signature(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _solve_worker(problem: Problem, options: Options) -> dict:
    """Process-pool worker: solve one problem, always return a JSON dict.

    Module-level (picklable); exceptions become ``error`` payloads so one
    crashing problem cannot abort the batch.
    """
    started = time.perf_counter()
    try:
        result = solve(problem, options=options)
    except Exception:
        return {
            "verdict": "error",
            "seconds": time.perf_counter() - started,
            "error": traceback.format_exc(limit=8),
        }
    return result_to_json(result)


def solve_many(
    problems: Sequence[Problem],
    options: Options | None = None,
    *,
    workers: int | None = None,
    cache_dir: str | Path | None = None,
    task_timeout: float | None = None,
    progress: Callable[[int, Result], None] | None = None,
    **overrides,
) -> list[Result]:
    """Solve every problem; return results in input order.

    ``workers``/``cache_dir`` default to the corresponding
    :class:`Options` fields (``workers=1`` runs inline).  With a cache
    directory, results are content-addressed by (problem fingerprint,
    result-affecting options), so a warm re-run is pure cache reads —
    cache hits carry ``detail["cached"] = True``.

    Timeouts are two separate knobs:

    * ``task_timeout`` — the sharded path's *pool stall* bound: when no
      task completes for that long, every worker is considered wedged and
      the remaining tasks are recorded as ``Verdict.ERROR``.  Defaults to
      :data:`DEFAULT_TASK_TIMEOUT` — deliberately **not** to
      ``Options.timeout``, which is a per-solve budget: a tight 5 s
      per-problem budget must not kill an otherwise-healthy batch whose
      individual solves simply take 6 s each.
    * ``Options.timeout`` — the per-invocation budget each backend
      enforces where it can (the external ``dimacs:`` backends kill the
      solver process at the deadline).  In-process backends cannot
      preempt a running solve; neither can the inline (``workers=1``)
      path.

    ``progress`` contract: the callback fires exactly once per problem
    with ``(input index, result)`` — first for every cache hit during the
    upfront scan (in input order), then for each miss as its worker
    completes (in completion order, which is *not* input order).  The
    returned list is always in input order regardless.
    """
    # Imported lazily: repro.campaign's oracles import this package, so a
    # module-level import here would cycle.
    from repro.campaign.runner import ResultCache, map_jobs

    opts = resolve_options(options, overrides)
    shards = opts.workers if workers is None else workers
    if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
        raise ValueError(
            f"workers must be an integer >= 1 (1 runs inline, N > 1 fans "
            f"out over a process pool), got {shards!r}"
        )
    if cache_dir is None:
        cache_dir = opts.cache_dir
    if task_timeout is None:
        # Never fall back to opts.timeout: that is a *per-solve* budget,
        # and using it as the pool's stall bound would kill a healthy
        # batch whose solves are individually slower than it.
        task_timeout = DEFAULT_TASK_TIMEOUT

    cache = ResultCache(cache_dir) if cache_dir is not None else None
    results: list[Result] = [None] * len(problems)  # type: ignore[list-item]
    # Fingerprinting compiles module problems, so only pay for it when a
    # cache is actually in play.
    keys = ([batch_cache_key(problem, opts) for problem in problems]
            if cache is not None else None)
    misses: list[int] = []
    for index, problem in enumerate(problems):
        hit = cache.get(keys[index]) if cache is not None else None
        # Never serve an error from cache: crashes and timeouts may be
        # environmental, so they are retried on the next run.
        if hit is not None and hit.get("error") is None:
            result = result_from_json(hit)
            result.detail["cached"] = True
            results[index] = result
            if progress:
                progress(index, result)
        else:
            misses.append(index)

    def record(index: int, payload: dict) -> None:
        result = result_from_json(payload)
        results[index] = result
        if cache is not None and result.error is None:
            cache.put(keys[index], payload)
        if progress:
            progress(index, result)

    def failure(index: int, error: str, seconds: float) -> dict:
        return {"verdict": "error", "seconds": seconds, "error": error}

    map_jobs(
        [(index, (problems[index], opts)) for index in misses],
        _solve_worker,
        record,
        failure,
        shards=shards,
        task_timeout=task_timeout,
    )
    return results
