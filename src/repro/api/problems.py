"""The ``Problem`` union: everything the façade knows how to decide.

Three problem kinds cover the repo's verification surface:

* :class:`FormulaProblem` — a raw relational formula plus bounds (the
  mini-Kodkod level);
* :class:`ModuleProblem` — an alloylite module with a ``run`` or
  ``check`` command at a scope (the Alloy level);
* :class:`ProtocolProblem` — a concrete MCA protocol instance whose
  schedules are explored exhaustively (the dynamic-checking level).

Problems are plain picklable data, so the batch path can ship them to
worker processes, and every problem has a deterministic
:func:`problem_fingerprint` so results are content-addressable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence, Union

from repro.alloylite.module import Module, Scope
from repro.kodkod import ast
from repro.kodkod.bounds import Bounds
from repro.mca.network import AgentNetwork
from repro.mca.policies import AgentPolicy


@dataclass(frozen=True)
class FormulaProblem:
    """Satisfiability of a relational formula within bounds."""

    formula: ast.Formula
    bounds: Bounds

    def __post_init__(self) -> None:
        if not isinstance(self.formula, ast.Formula):
            raise ValueError(
                f"FormulaProblem.formula must be a repro.kodkod.ast.Formula, "
                f"got {type(self.formula).__name__}"
            )
        if not isinstance(self.bounds, Bounds):
            raise ValueError(
                f"FormulaProblem.bounds must be a repro.kodkod.bounds.Bounds, "
                f"got {type(self.bounds).__name__}"
            )


@dataclass(frozen=True)
class ModuleProblem:
    """An alloylite command: ``run`` (find instance) or ``check`` (refute).

    ``goal`` is the extra predicate for ``run`` (optional) and the
    assertion for ``check`` (required).
    """

    module: Module
    command: str = "run"
    goal: ast.Formula | None = None
    scope: Scope | None = None

    def __post_init__(self) -> None:
        if self.command not in ("run", "check"):
            raise ValueError(
                f"ModuleProblem.command must be 'run' or 'check', "
                f"got {self.command!r}"
            )
        if self.command == "check" and self.goal is None:
            raise ValueError(
                "ModuleProblem with command='check' requires a goal "
                "(the assertion to refute)"
            )


@dataclass(frozen=True)
class ProtocolProblem:
    """Exhaustive schedule exploration of a concrete MCA protocol run."""

    network: AgentNetwork
    items: tuple = ()
    policies: Mapping[int, AgentPolicy] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))
        object.__setattr__(self, "policies", dict(self.policies))
        missing = [a for a in self.network.agents()
                   if a not in self.policies]
        if missing:
            raise ValueError(
                f"ProtocolProblem is missing a policy for agent(s) "
                f"{missing}; every network agent needs one"
            )


Problem = Union[FormulaProblem, ModuleProblem, ProtocolProblem]


def problem_kind(problem: Problem) -> str:
    """The problem's kind tag: ``"formula"``, ``"module"`` or ``"protocol"``.

    The vocabulary matches the codec/corpus payloads and the
    ``detail["delta"]`` provenance emitted by the delta-verification path
    (:func:`repro.api.solve_delta`).
    """
    if isinstance(problem, FormulaProblem):
        return "formula"
    if isinstance(problem, ModuleProblem):
        return "module"
    if isinstance(problem, ProtocolProblem):
        return "protocol"
    raise ValueError(
        f"not a façade problem: {type(problem).__name__} (expected "
        f"FormulaProblem, ModuleProblem or ProtocolProblem)"
    )


def problem_from_spec(spec) -> Problem:
    """Lift a campaign :class:`~repro.campaign.specs.ScenarioSpec` into a
    façade problem: relational specs become :class:`FormulaProblem`,
    auction specs become :class:`ProtocolProblem`."""
    # Imported lazily: repro.campaign imports repro.api (the oracles run
    # through the façade), so a module-level import here would cycle.
    from repro.campaign.specs import (
        AuctionScenario,
        RelationalProblem,
        materialize,
    )

    scenario = materialize(spec)
    if isinstance(scenario, RelationalProblem):
        return FormulaProblem(scenario.formula, scenario.bounds)
    if isinstance(scenario, AuctionScenario):
        return ProtocolProblem(scenario.network, tuple(scenario.items),
                               scenario.policies)
    raise ValueError(
        f"cannot lift family {spec.family!r} into a façade problem "
        f"(materialized to {type(scenario).__name__})"
    )


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------


def _bounds_payload(bounds: Bounds) -> dict:
    return {
        "universe": list(bounds.universe.atoms),
        "relations": {
            relation.name: {
                "arity": relation.arity,
                "lower": sorted(list(t) for t in bounds.lower(relation)),
                "upper": sorted(list(t) for t in bounds.upper(relation)),
            }
            for relation in sorted(bounds.relations(), key=lambda r: r.name)
        },
    }


def _auction_payload(network: AgentNetwork, items: Sequence[str],
                     policies: Mapping[int, AgentPolicy]) -> dict:
    # Probe marginals against several bundle prefixes (mirrors
    # campaign.specs.scenario_fingerprint): capacity-style utilities are
    # constant on the empty bundle, so one probe would miss their shape.
    probes = [list(items[:size]) for size in range(3)]
    return {
        "agents": list(network.agents()),
        "edges": [list(e) for e in network.edges()],
        "items": list(items),
        "policies": {
            str(agent): {
                "target": policy.target,
                "release_outbid": policy.release_outbid,
                "rebid": policy.rebid.value,
                "marginals": {
                    item: [
                        round(policy.utility.marginal(item, probe), 6)
                        for probe in probes
                    ]
                    for item in items
                },
            }
            for agent, policy in sorted(policies.items())
        },
    }


def problem_payload(problem: Problem) -> dict:
    """Deterministic JSON-able identity of a problem.

    Formulas are identified by their ``repr`` (deterministic for the AST
    node types), bounds by their sorted tuple sets, modules by their
    compiled universe/bounds/facts at the problem's scope, protocols by
    topology plus probed utility marginals.
    """
    if isinstance(problem, FormulaProblem):
        return {
            "kind": "formula",
            "formula": repr(problem.formula),
            "bounds": _bounds_payload(problem.bounds),
        }
    if isinstance(problem, ModuleProblem):
        scope = problem.scope or Scope()
        _, bounds, facts = problem.module.compile(scope)
        return {
            "kind": "module",
            "command": problem.command,
            "goal": repr(problem.goal) if problem.goal is not None else None,
            "facts": repr(facts),
            "bounds": _bounds_payload(bounds),
        }
    if isinstance(problem, ProtocolProblem):
        return {
            "kind": "protocol",
            **_auction_payload(problem.network, problem.items,
                               problem.policies),
        }
    raise ValueError(
        f"not a façade problem: {type(problem).__name__} (expected "
        f"FormulaProblem, ModuleProblem or ProtocolProblem)"
    )


def problem_fingerprint(problem: Problem) -> str:
    """Stable sha256 digest of :func:`problem_payload` (cache identity)."""
    payload = json.dumps(problem_payload(problem), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()
