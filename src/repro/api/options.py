"""The one validated options surface shared by every façade entry point.

Every backend and every operation reads the same :class:`Options`
dataclass, so option spelling is uniform across ``solve``, ``check``,
``enumerate``, ``run_protocol`` and ``solve_many`` — the per-module
keyword zoo (``symmetry=`` here, ``limit=`` there, ``max_rounds=``
elsewhere) collapses into one place with one set of validation rules.

Fields that do not affect the *result* of a computation (``workers``,
``timeout``, ``cache_dir``) are excluded from :meth:`Options.cache_signature`,
so re-running a batch with a different pool size still hits the
content-addressed cache.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class Options:
    """Validated options accepted by every ``repro.api`` entry point.

    ``None`` fields mean "use the backend's per-operation default":
    ``symmetry=None`` enables lex-leader symmetry breaking for
    solve/check (verdict-preserving) but disables it for enumeration
    (every model is produced).  Construction raises :class:`ValueError`
    with an actionable message on any out-of-range field.
    """

    solver: str | None = None
    """Backend name (see :func:`repro.api.available_backends`); ``None``
    selects the first registered backend that supports the problem.
    ``"kodkod-vector"`` runs the relational pipeline on the numpy
    propagation kernel; ``"dimacs:<command>"`` delegates the SAT search
    to an external solver binary (e.g. ``"dimacs:picosat"``)."""

    symmetry: int | None = None
    """Lex-leader symmetry-breaking predicate length; 0 disables breaking,
    ``None`` uses the backend's per-operation default."""

    max_instances: int | None = None
    """Enumeration limit (``None`` enumerates the whole model space)."""

    max_rounds: int = 12
    """Protocol-check depth bound (rounds per explored schedule)."""

    max_paths: int = 2000
    """Protocol-check breadth bound (complete schedules explored)."""

    memoize: bool = True
    """Protocol-check canonical-state memoization (verdict-preserving)."""

    timeout: float | None = None
    """Per-solve time budget in seconds, enforced where preemption is
    possible — the external ``dimacs:`` backends kill the solver process
    at the deadline.  In-process backends cannot preempt a running
    solve.  This is *not* the batch pool's stall bound: ``solve_many``
    has a separate ``task_timeout`` argument for that (defaulting to
    ``repro.api.batch.DEFAULT_TASK_TIMEOUT``), so a tight per-solve
    budget never kills an otherwise-healthy sharded batch."""

    workers: int = 1
    """Process count for ``solve_many`` (1 runs inline, in-process)."""

    cache_dir: str | None = None
    """Content-addressed result cache directory for ``solve_many``
    (``None`` disables caching)."""

    def __post_init__(self) -> None:
        if self.solver is not None and (
                not isinstance(self.solver, str) or not self.solver):
            raise ValueError(
                f"solver must be a non-empty backend name string (see "
                f"repro.api.available_backends()) or None for automatic "
                f"selection, got {self.solver!r}"
            )
        if self.symmetry is not None and (
                isinstance(self.symmetry, bool)
                or not isinstance(self.symmetry, int)
                or self.symmetry < 0):
            raise ValueError(
                f"symmetry must be a non-negative integer (the lex-leader "
                f"predicate length; 0 disables symmetry breaking) or None "
                f"for the backend default, got {self.symmetry!r}"
            )
        if self.max_instances is not None and (
                isinstance(self.max_instances, bool)
                or not isinstance(self.max_instances, int)
                or self.max_instances < 1):
            raise ValueError(
                f"max_instances must be a positive integer or None for "
                f"unbounded enumeration, got {self.max_instances!r}"
            )
        if (isinstance(self.max_rounds, bool)
                or not isinstance(self.max_rounds, int)
                or self.max_rounds < 1):
            raise ValueError(
                f"max_rounds must be a positive integer bound on protocol "
                f"rounds per schedule, got {self.max_rounds!r}"
            )
        if (isinstance(self.max_paths, bool)
                or not isinstance(self.max_paths, int)
                or self.max_paths < 1):
            raise ValueError(
                f"max_paths must be a positive integer bound on explored "
                f"schedules, got {self.max_paths!r}"
            )
        if not isinstance(self.memoize, bool):
            raise ValueError(
                f"memoize must be a bool (True prunes isomorphic "
                f"interleavings, verdict unchanged), got {self.memoize!r}"
            )
        if self.timeout is not None and (
                isinstance(self.timeout, bool)
                or not isinstance(self.timeout, (int, float))
                or self.timeout <= 0):
            raise ValueError(
                f"timeout must be a positive number of seconds or None to "
                f"wait indefinitely, got {self.timeout!r}"
            )
        if (isinstance(self.workers, bool)
                or not isinstance(self.workers, int) or self.workers < 1):
            raise ValueError(
                f"workers must be an integer >= 1 (1 runs inline, N > 1 "
                f"fans out over a process pool), got {self.workers!r}"
            )

    def replace(self, **overrides) -> "Options":
        """A copy with fields replaced (re-validated on construction)."""
        return dataclasses.replace(self, **overrides)

    def to_json(self) -> dict:
        """Every field as a JSON-able dict (the wire form).

        Unlike :meth:`cache_signature` this includes the execution knobs
        (``timeout``, ``workers``, ``cache_dir``) — the wire form must
        reconstruct the exact options, not just their result identity.
        """
        return {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)}

    @classmethod
    def from_json(cls, payload: dict) -> "Options":
        """Rebuild validated options from :meth:`to_json` output.

        Accepts any subset of the fields (missing ones default); unknown
        keys raise the same actionable :class:`ValueError` the façade's
        keyword overrides do, so a typo in a wire submission is caught at
        the edge instead of silently ignored.
        """
        if not isinstance(payload, dict):
            raise ValueError(
                f"options must be a JSON object of Options fields, "
                f"got {type(payload).__name__}"
            )
        return resolve_options(None, dict(payload))

    def cache_signature(self) -> dict:
        """The result-affecting fields, as a canonical JSON-able dict.

        ``workers``, ``timeout`` and ``cache_dir`` change how a batch is
        executed but never what it computes, so they are omitted — warm
        re-runs hit the cache regardless of pool configuration.
        """
        return {
            "solver": self.solver,
            "symmetry": self.symmetry,
            "max_instances": self.max_instances,
            "max_rounds": self.max_rounds,
            "max_paths": self.max_paths,
            "memoize": self.memoize,
        }


def resolve_options(options: Options | None, overrides: dict) -> Options:
    """Merge an optional base ``Options`` with keyword overrides."""
    base = options if options is not None else Options()
    if not isinstance(base, Options):
        raise ValueError(
            f"options must be a repro.api.Options instance or None, "
            f"got {type(base).__name__}"
        )
    if not overrides:
        return base
    unknown = sorted(set(overrides) - {f.name for f in dataclasses.fields(Options)})
    if unknown:
        known = ", ".join(f.name for f in dataclasses.fields(Options))
        raise ValueError(
            f"unknown option(s) {unknown}; valid options are: {known}"
        )
    return base.replace(**overrides)
