"""Delta verification: warm re-solves of near-identical problems.

A production verification service re-checks streams of problems that
differ by one edit (a bid changes, one tuple leaves a bound).  Paying a
full translate+solve per re-check throws away everything the previous
query learned, so this module builds the warm path on top of the
engine's :class:`~repro.kodkod.engine.DeltaSession`:

* :func:`diff_problems` compares two problems structurally — formula
  trees via the fuzz codec's tagged encoding, bounds tuple-by-tuple,
  protocol components via the codec's probed payload — and classifies
  the edit into a :class:`ProblemDelta`;
* :class:`DeltaSession` anchors a live solver on one problem and answers
  *delta-safe* variants (identical problem, bounds narrowed) through
  unit assumptions on that solver, reusing its learned clauses;
* :func:`solve_delta` is the façade spelling:
  ``solve_delta(prev, new_problem)`` with ``prev`` either a problem (a
  one-shot anchor) or a ``DeltaSession`` (an amortized chain).

The fallback contract is absolute: whenever the diff is not delta-safe —
the formula changed, the universe or relation set changed, a bound
widened, the problem kind changed, symmetry breaking is requested, a
non-default solver is forced, or an edited tuple has no variable in the
anchor translation — the new problem gets a fresh full solve through the
ordinary backend path, and the session re-anchors on it.  Either way the
verdict is exactly what a fresh :func:`repro.api.solve` would return;
the campaign's ``delta`` oracle checks that equivalence over mutated
spec pairs.  Every result is provenance-tagged in ``detail["delta"]``
(see :class:`repro.api.result.Result`).

.. warning::
   The warm path hard-wires ``symmetry=0``, mirroring the
   :class:`~repro.kodkod.engine.Session` caveat: the lex-leader
   predicate is a function of the anchor bounds, so answering a
   narrowed-bounds variant under the anchor's symmetry breaking could
   refute variants whose only models are non-canonical for the anchor.
   Requesting ``symmetry > 0`` therefore disables reuse entirely (every
   edited problem falls back to a fresh solve) — verdicts stay correct,
   only the speedup is lost.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.api.backends import _relational_goal, _validate
from repro.api.facade import solve as _facade_solve
from repro.api.options import Options, resolve_options
from repro.api.problems import (
    FormulaProblem,
    ModuleProblem,
    Problem,
    ProtocolProblem,
    problem_kind,
)
from repro.api.result import Result, Verdict
from repro.kodkod import ast
from repro.kodkod.bounds import Bounds
from repro.kodkod.engine import DeltaSession as _EngineDeltaSession
from repro.kodkod.engine import Solution

# Tuple edits travel as (relation name, arity, atoms) triples: plain data
# that survives the codec round trip and never relies on Relation object
# identity across two independently-built problems.
TupleEdit = tuple[str, int, tuple]

_ENGINE_SOLVERS = (None, "kodkod", "kodkod-vector")
"""Backends whose solve path the engine DeltaSession reproduces exactly."""

_open_lock = threading.Lock()
_open_sessions = 0


def open_session_count() -> int:
    """Live (constructed, not yet closed) :class:`DeltaSession` objects.

    The leak detector long-running hosts (the service's worker pool)
    assert against: every evicted or shut-down session must have been
    :meth:`~DeltaSession.close`\\ d, releasing its anchored solver.
    """
    with _open_lock:
        return _open_sessions


@dataclass(frozen=True)
class ProblemDelta:
    """Classification of the edit between two problems.

    ``kind`` is the edit taxonomy tag; ``delta_safe`` is True exactly for
    the kinds a live anchored solver can answer via assumptions:

    ==================  ==========  =====================================
    kind                delta-safe  meaning
    ==================  ==========  =====================================
    ``identical``       yes         no observable difference
    ``bounds_narrowed`` yes         only free tuples dropped from upper
                                    bounds and/or promoted into lower
                                    bounds
    ``bounds_widened``  no          a bound gained tuples the anchor
                                    translation has no variables for
    ``formula_changed`` no          the (lowered) goal trees differ
    ``universe_changed``no          atom list differs (order included)
    ``relations_chang\
ed``                   no          relation set differs by name/arity
    ``kind_changed``    no          relational vs protocol problem
    ``protocol_changed``no          protocol components differ
    ``unencodable``     no          a formula the codec cannot tree-ify
    ==================  ==========  =====================================
    """

    kind: str
    delta_safe: bool
    dropped: tuple[TupleEdit, ...] = ()
    promoted: tuple[TupleEdit, ...] = ()
    detail: dict = field(default_factory=dict)


def _bounds_map(bounds: Bounds) -> dict:
    return {
        (rel.name, rel.arity): (
            frozenset(tuple(t) for t in bounds.lower(rel)),
            frozenset(tuple(t) for t in bounds.upper(rel)),
        )
        for rel in bounds.relations()
    }


def _diff_relational(prev_goal: ast.Formula, prev_bounds: Bounds,
                     new_goal: ast.Formula,
                     new_bounds: Bounds) -> ProblemDelta:
    """Diff two lowered relational problems (goal formula + bounds)."""
    # Imported lazily: repro.fuzz pulls in the campaign oracles at package
    # load, which import repro.api — a module-level import here would
    # cycle through three packages.
    from repro.fuzz.codec import CodecError, formula_to_tree

    try:
        prev_tree = formula_to_tree(prev_goal)
        new_tree = formula_to_tree(new_goal)
    except CodecError as exc:
        return ProblemDelta("unencodable", False, detail={"error": str(exc)})
    if prev_tree != new_tree:
        return ProblemDelta("formula_changed", False)
    if tuple(prev_bounds.universe.atoms) != tuple(new_bounds.universe.atoms):
        return ProblemDelta("universe_changed", False, detail={
            "prev_atoms": len(prev_bounds.universe.atoms),
            "new_atoms": len(new_bounds.universe.atoms),
        })
    prev_map = _bounds_map(prev_bounds)
    new_map = _bounds_map(new_bounds)
    if set(prev_map) != set(new_map):
        return ProblemDelta("relations_changed", False, detail={
            "only_prev": sorted(n for n, _ in set(prev_map) - set(new_map)),
            "only_new": sorted(n for n, _ in set(new_map) - set(prev_map)),
        })
    dropped: list[TupleEdit] = []
    promoted: list[TupleEdit] = []
    widened = 0
    demoted = 0
    changed: set[str] = set()
    for (name, arity), (prev_lower, prev_upper) in sorted(prev_map.items()):
        new_lower, new_upper = new_map[(name, arity)]
        widened += len(new_upper - prev_upper)
        demoted += len(prev_lower - new_lower)
        for atoms in sorted(prev_upper - new_upper):
            dropped.append((name, arity, atoms))
            changed.add(name)
        for atoms in sorted(new_lower - prev_lower):
            promoted.append((name, arity, atoms))
            changed.add(name)
    if widened or demoted:
        # Widening needs variables the anchor translation never created
        # (new upper tuples) or constraints it baked in as constants
        # (demoted lower tuples): not expressible as assumptions.
        return ProblemDelta("bounds_widened", False, detail={
            "widened_upper": widened, "demoted_lower": demoted,
        })
    if not dropped and not promoted:
        return ProblemDelta("identical", True)
    return ProblemDelta(
        "bounds_narrowed", True,
        dropped=tuple(dropped), promoted=tuple(promoted),
        detail={"changed_relations": sorted(changed)},
    )


def diff_problems(prev: Problem, new: Problem) -> ProblemDelta:
    """Compare two problems and classify the edit between them.

    Module problems are lowered to their compiled goal formula + bounds
    first (exactly as the kodkod backend lowers them), so a
    ``FormulaProblem`` and a ``ModuleProblem`` that compile to the same
    goal diff as identical.  Protocol problems are compared through the
    codec's probed payload (topology, items, policy tables); they have no
    warm solver path, so only ``identical`` is delta-safe for them.
    """
    # Lazy for the same package-cycle reason as in _diff_relational.
    from repro.fuzz.codec import CodecError, problem_to_json

    prev_group = problem_kind(prev)
    new_group = problem_kind(new)
    prev_relational = prev_group in ("formula", "module")
    new_relational = new_group in ("formula", "module")
    if prev_relational != new_relational:
        return ProblemDelta("kind_changed", False, detail={
            "prev_kind": prev_group, "new_kind": new_group,
        })
    if not prev_relational:
        try:
            same = problem_to_json(prev) == problem_to_json(new)
        except CodecError as exc:
            return ProblemDelta("unencodable", False,
                                detail={"error": str(exc)})
        if same:
            return ProblemDelta("identical", True)
        return ProblemDelta("protocol_changed", False)
    prev_goal, prev_bounds, _ = _relational_goal(prev, "delta")
    new_goal, new_bounds, _ = _relational_goal(new, "delta")
    return _diff_relational(prev_goal, prev_bounds, new_goal, new_bounds)


class DeltaSession:
    """An anchored delta-verification session over the façade.

    Construction solves the *anchor* problem (a cold solve) and, when the
    problem/options pair is warm-capable, keeps the translation and the
    live solver.  Each :meth:`solve` call diffs the incoming problem
    against the anchor: delta-safe edits are answered on the live solver
    through assumptions (``detail["delta"]["path"] == "reused"``), and
    everything else falls back to a fresh full solve *and re-anchors the
    session on the new problem* (``path == "fallback"``), so a chain of
    edits keeps a warm anchor as close as possible to the stream.

    Warm-capable means: a formula/module problem, ``options.solver`` in
    ``{None, "kodkod", "kodkod-vector"}``, and ``options.symmetry`` in
    ``{None, 0}`` (the warm path always translates with ``symmetry=0``,
    which is verdict-preserving; see the module docstring warning).
    Protocol problems and foreign backends never reuse a solver, but an
    *identical* re-submission still reuses the anchor's stored result.
    """

    def __init__(self, problem: Problem, *, options: Options | None = None,
                 solve_anchor: bool = True, **overrides) -> None:
        self._opts = resolve_options(options, overrides)
        self._engine: _EngineDeltaSession | None = None
        self._anchor: Problem | None = None
        self._anchor_goal: ast.Formula | None = None
        self._anchor_bounds: Bounds | None = None
        self._result: Result | None = None
        self._closed = False
        self._anchor_solve(problem, path="cold", reason="anchor",
                           run_solve=solve_anchor)
        global _open_sessions
        with _open_lock:
            _open_sessions += 1

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; a closed session cannot solve."""
        return self._closed

    def close(self) -> None:
        """Release the anchored engine session and its live solver.

        Idempotent.  Long-running hosts that cache sessions (the service
        worker pool's LRU) must close what they evict — dropping the
        reference alone leaves the solver's clause database alive until
        a GC cycle finds it.
        """
        global _open_sessions
        if self._closed:
            return
        self._closed = True
        self._engine = None
        self._anchor_goal = None
        self._anchor_bounds = None
        with _open_lock:
            _open_sessions -= 1

    def __enter__(self) -> "DeltaSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def options(self) -> Options:
        """The (immutable) options every solve in this session uses."""
        return self._opts

    @property
    def problem(self) -> Problem:
        """The current anchor problem (updated on every fallback)."""
        return self._anchor

    @property
    def result(self) -> Result | None:
        """The anchor's own solve result (None for an unsolved anchor)."""
        return self._result

    # ------------------------------------------------------------------
    # anchoring
    # ------------------------------------------------------------------

    def _engine_kernel(self) -> str:
        return "vector" if self._opts.solver == "kodkod-vector" else "pure"

    def _warm_capable(self, problem: Problem) -> bool:
        return (
            isinstance(problem, (FormulaProblem, ModuleProblem))
            and self._opts.solver in _ENGINE_SOLVERS
            and self._opts.symmetry in (None, 0)
        )

    def _anchor_solve(self, problem: Problem, *, path: str, reason: str,
                      run_solve: bool = True,
                      delta: ProblemDelta | None = None) -> Result | None:
        """(Re-)anchor on ``problem``; solve it fresh when requested."""
        self._anchor = problem
        self._engine = None
        self._anchor_goal = None
        self._anchor_bounds = None
        self._result = None
        if self._warm_capable(problem):
            goal, bounds, validity = _relational_goal(problem, "delta")
            started = time.perf_counter()
            self._engine = _EngineDeltaSession(
                goal, bounds, kernel=self._engine_kernel())
            self._anchor_goal = goal
            self._anchor_bounds = bounds
            if run_solve:
                solution = self._engine.solve()
                self._result = self._wrap_solution(
                    problem, solution, validity, started,
                    self._provenance(path, reason, delta))
        elif run_solve:
            result = _facade_solve(problem, options=self._opts)
            result.detail["delta"] = self._provenance(path, reason, delta)
            self._result = result
        return self._result

    # ------------------------------------------------------------------
    # result construction
    # ------------------------------------------------------------------

    def _provenance(self, path: str, reason: str,
                    delta: ProblemDelta | None = None,
                    assumptions: int | None = None,
                    warm_solve_seconds: float | None = None) -> dict:
        block = {"path": path, "reason": reason}
        if delta is not None:
            block["dropped"] = len(delta.dropped)
            block["promoted"] = len(delta.promoted)
        if assumptions is not None:
            block["assumptions"] = assumptions
        if warm_solve_seconds is not None:
            block["warm_solve_seconds"] = round(warm_solve_seconds, 6)
        return block

    def _wrap_solution(self, problem: Problem, solution: Solution,
                       validity: bool, started: float,
                       provenance: dict) -> Result:
        if solution.satisfiable and isinstance(problem, ModuleProblem):
            _validate(self._anchor_goal, solution.instance)
        if validity:
            verdict = (Verdict.COUNTEREXAMPLE if solution.satisfiable
                       else Verdict.HOLDS)
        else:
            verdict = Verdict.SAT if solution.satisfiable else Verdict.UNSAT
        backend = ("kodkod" if self._engine_kernel() == "pure"
                   else "kodkod-vector")
        return Result(
            verdict=verdict,
            instances=([solution.instance] if solution.instance is not None
                       else []),
            stats=solution.stats,
            solver_stats=solution.solver_stats,
            seconds=time.perf_counter() - started,
            backend=backend,
            detail={"solve_seconds": solution.solve_seconds,
                    "symmetry": 0,
                    "delta": provenance},
        )

    # ------------------------------------------------------------------
    # the delta solve
    # ------------------------------------------------------------------

    def solve(self, new_problem: Problem) -> Result:
        """Decide ``new_problem``, warm when the diff allows it.

        Verdict-identical to a fresh ``repro.api.solve(new_problem,
        options=...)`` in every case; ``result.detail["delta"]`` records
        which path answered and why.
        """
        if self._closed:
            raise RuntimeError("DeltaSession is closed")
        started = time.perf_counter()
        if self._engine is not None and isinstance(
                new_problem, (FormulaProblem, ModuleProblem)):
            new_goal, new_bounds, new_validity = _relational_goal(
                new_problem, "delta")
            delta = _diff_relational(self._anchor_goal, self._anchor_bounds,
                                     new_goal, new_bounds)
            reason = delta.kind
            if delta.delta_safe:
                assumptions = self._engine.assumptions_for(
                    delta.dropped, delta.promoted)
                if assumptions is not None:
                    solution = self._engine.solve(assumptions)
                    return self._wrap_solution(
                        new_problem, solution, new_validity, started,
                        self._provenance(
                            "reused", delta.kind, delta,
                            assumptions=len(assumptions),
                            warm_solve_seconds=solution.solve_seconds))
                # A narrowed tuple without an anchor variable (its
                # relation is unmentioned by the formula, so translation
                # never materialized it): fall back.
                reason = "untranslated_free_tuple"
        else:
            delta = diff_problems(self._anchor, new_problem)
            if delta.kind == "identical":
                if self._result is not None:
                    # Same problem, same options: the stored verdict is
                    # the answer (protocol anchors have no solver to
                    # warm, but they do not need one here).
                    reused = self._reused_anchor_result(delta)
                    reused.seconds = time.perf_counter() - started
                    return reused
                reason = "unsolved_anchor"
            elif self._opts.symmetry not in (None, 0) and delta.delta_safe:
                reason = "symmetry"
            elif self._opts.solver not in _ENGINE_SOLVERS and delta.delta_safe:
                reason = "foreign_backend"
            else:
                reason = delta.kind
        return self._anchor_solve(new_problem, path="fallback",
                                  reason=reason, delta=delta)

    def _reused_anchor_result(self, delta: ProblemDelta) -> Result:
        anchor = self._result
        return Result(
            verdict=anchor.verdict,
            instances=list(anchor.instances),
            trace=anchor.trace,
            stats=anchor.stats,
            solver_stats=dict(anchor.solver_stats),
            seconds=anchor.seconds,
            backend=anchor.backend,
            detail={**anchor.detail,
                    "delta": self._provenance("reused", delta.kind, delta)},
            error=anchor.error,
        )


def solve_delta(prev, new_problem: Problem, *,
                options: Options | None = None, **overrides) -> Result:
    """Decide ``new_problem``, reusing work from ``prev`` when safe.

    ``prev`` is either a :class:`DeltaSession` (the amortized spelling —
    options were fixed at session construction, so passing more here is
    an error) or a problem, which anchors a fresh throwaway session: the
    anchor is translated but not searched, and the single delta solve
    runs warm or falls back exactly as a session solve would.

    The verdict always equals a fresh ``solve(new_problem)``; see
    :mod:`repro.api.delta` for the delta-safe taxonomy and the fallback
    contract, and ``result.detail["delta"]`` for which path answered.
    """
    if isinstance(prev, DeltaSession):
        if options is not None or overrides:
            raise ValueError(
                "options are fixed when a DeltaSession is passed as prev; "
                "set them when constructing the session"
            )
        return prev.solve(new_problem)
    session = DeltaSession(prev, options=options, solve_anchor=False,
                           **overrides)
    return session.solve(new_problem)
