"""Pluggable verification backends behind one protocol and registry.

A backend knows how to decide some subset of the :data:`~repro.api.problems.Problem`
union and always answers with the uniform :class:`~repro.api.result.Result`.
Two backends ship in-tree:

* ``kodkod`` — the bounded relational pipeline (translate → CDCL →
  instance extraction) for formula and module problems;
* ``explorer`` — exhaustive schedule exploration of the executable
  protocol for protocol problems.

Alternative engines (an external SAT solver, a parallel portfolio, a
BDD-based finder) plug in by implementing :class:`Backend` and calling
:func:`register_backend`; every façade entry point and the batch path
then reach them through ``Options.solver``.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from repro.api.options import Options
from repro.api.problems import (
    FormulaProblem,
    ModuleProblem,
    Problem,
    ProtocolProblem,
)
from repro.api.result import Result, Verdict
from repro.alloylite.module import Scope
from repro.checking.explorer import explore
from repro.kodkod import ast
from repro.kodkod.bounds import Bounds
from repro.kodkod.engine import Session
from repro.kodkod.evaluator import Evaluator
from repro.kodkod.symmetry import DEFAULT_SBP_LENGTH


@runtime_checkable
class Backend(Protocol):
    """The interface every verification backend implements."""

    name: str

    def supports(self, problem: Problem) -> bool:
        """Whether this backend can decide ``problem``."""
        ...

    def solve(self, problem: Problem, options: Options) -> Result:
        """Decide the problem (one verdict, at most one witness)."""
        ...

    def enumerate(self, problem: Problem, options: Options) -> Result:
        """Enumerate witnessing instances (bounded by ``max_instances``)."""
        ...


_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend, replace: bool = False) -> Backend:
    """Register a backend under its ``name`` (the ``Options.solver`` key)."""
    name = getattr(backend, "name", None)
    if not isinstance(name, str) or not name:
        raise ValueError(
            f"backend must expose a non-empty string 'name' attribute, "
            f"got {name!r}"
        )
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"backend {name!r} is already registered; pass replace=True "
            f"to override it"
        )
    _REGISTRY[name] = backend
    return backend


def available_backends() -> list[str]:
    """Registered backend names, in registration order."""
    return list(_REGISTRY)


def get_backend(name: str) -> Backend:
    """Look up a backend by name, with an actionable error on a miss."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; registered backends: "
            f"{available_backends()}"
        ) from None


def backend_for(problem: Problem, options: Options) -> Backend:
    """Resolve the backend deciding ``problem`` under ``options``.

    ``options.solver`` forces a specific backend (and errors if that
    backend cannot handle the problem kind); otherwise the first
    registered backend supporting the problem wins.
    """
    if options.solver is not None:
        backend = get_backend(options.solver)
        if not backend.supports(problem):
            raise ValueError(
                f"backend {backend.name!r} does not support "
                f"{type(problem).__name__}; backends that do: "
                f"{[n for n, b in _REGISTRY.items() if b.supports(problem)]}"
            )
        return backend
    for backend in _REGISTRY.values():
        if backend.supports(problem):
            return backend
    raise ValueError(
        f"no registered backend supports {type(problem).__name__}; "
        f"registered backends: {available_backends()}"
    )


# ----------------------------------------------------------------------
# The bounded relational backend (mini-Kodkod pipeline)
# ----------------------------------------------------------------------


class KodkodBackend:
    """Formula/module problems via translate → CDCL → instance extraction."""

    name = "kodkod"

    def supports(self, problem: Problem) -> bool:
        return isinstance(problem, (FormulaProblem, ModuleProblem))

    def _goal(self, problem: Problem) -> tuple[ast.Formula, Bounds, bool]:
        """(goal formula, bounds, is_validity_query) for a problem."""
        if isinstance(problem, FormulaProblem):
            return problem.formula, problem.bounds, False
        if isinstance(problem, ModuleProblem):
            scope = problem.scope or Scope()
            _, bounds, facts = problem.module.compile(scope)
            if problem.command == "check":
                return ast.And([facts, ast.Not(problem.goal)]), bounds, True
            goal = (facts if problem.goal is None
                    else ast.And([facts, problem.goal]))
            return goal, bounds, False
        raise ValueError(
            f"kodkod backend cannot decide {type(problem).__name__}"
        )

    def solve(self, problem: Problem, options: Options) -> Result:
        started = time.perf_counter()
        goal, bounds, validity = self._goal(problem)
        symmetry = (DEFAULT_SBP_LENGTH if options.symmetry is None
                    else options.symmetry)
        session = Session(goal, bounds, symmetry=symmetry)
        solution = session.solve()
        if solution.satisfiable and isinstance(problem, ModuleProblem):
            _validate(goal, solution.instance)
        if validity:
            verdict = (Verdict.COUNTEREXAMPLE if solution.satisfiable
                       else Verdict.HOLDS)
        else:
            verdict = Verdict.SAT if solution.satisfiable else Verdict.UNSAT
        return Result(
            verdict=verdict,
            instances=([solution.instance] if solution.instance is not None
                       else []),
            stats=solution.stats,
            solver_stats=solution.solver_stats,
            seconds=time.perf_counter() - started,
            backend=self.name,
            detail={"solve_seconds": solution.solve_seconds,
                    "symmetry": symmetry},
        )

    def enumerate(self, problem: Problem, options: Options) -> Result:
        started = time.perf_counter()
        goal, bounds, validity = self._goal(problem)
        # Enumeration defaults to symmetry off so every model is produced;
        # an explicit symmetry level enumerates canonical representatives.
        symmetry = 0 if options.symmetry is None else options.symmetry
        limit = options.max_instances
        session = Session(goal, bounds, symmetry=symmetry)
        instances = list(session.iter_solutions(limit))
        if validity:
            verdict = (Verdict.COUNTEREXAMPLE if instances
                       else Verdict.HOLDS)
        else:
            verdict = Verdict.SAT if instances else Verdict.UNSAT
        return Result(
            verdict=verdict,
            instances=instances,
            stats=session.translation.stats,
            solver_stats=session.solver_stats(),
            seconds=time.perf_counter() - started,
            backend=self.name,
            detail={
                "num_instances": len(instances),
                "truncated": limit is not None and len(instances) >= limit,
                "symmetry": symmetry,
            },
        )


def _validate(goal: ast.Formula, instance) -> None:
    """Sanity-check every instance the SAT pipeline returns for a module."""
    assert instance is not None
    if not Evaluator(instance).check(goal):
        raise AssertionError(
            "internal error: SAT instance does not satisfy the goal formula"
        )


# ----------------------------------------------------------------------
# The explicit-state protocol backend
# ----------------------------------------------------------------------


class ExplorerBackend:
    """Protocol problems via exhaustive schedule exploration."""

    name = "explorer"

    def supports(self, problem: Problem) -> bool:
        return isinstance(problem, ProtocolProblem)

    def solve(self, problem: Problem, options: Options) -> Result:
        if not isinstance(problem, ProtocolProblem):
            raise ValueError(
                f"explorer backend cannot decide {type(problem).__name__}"
            )
        started = time.perf_counter()
        exploration = explore(
            problem.network, list(problem.items), dict(problem.policies),
            max_rounds=options.max_rounds, max_paths=options.max_paths,
            memoize=options.memoize,
        )
        verdict = (Verdict.HOLDS if exploration.all_converged
                   else Verdict.COUNTEREXAMPLE)
        return Result(
            verdict=verdict,
            trace=exploration.counterexample,
            seconds=time.perf_counter() - started,
            backend=self.name,
            detail={
                "paths_explored": exploration.paths_explored,
                "max_rounds_to_converge": exploration.max_rounds_to_converge,
                "memo_hits": exploration.memo_hits,
                "states_memoized": exploration.states_memoized,
                "oscillating": exploration.oscillating_trace is not None,
                "diverging": exploration.diverging_trace is not None,
            },
        )

    def enumerate(self, problem: Problem, options: Options) -> Result:
        raise ValueError(
            "the explorer backend decides protocol checks; it cannot "
            "enumerate relational instances — use solve()/run_protocol(), "
            "or pick a relational problem for enumerate()"
        )


register_backend(KodkodBackend())
register_backend(ExplorerBackend())
