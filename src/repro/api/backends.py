"""Pluggable verification backends behind one protocol and registry.

A backend knows how to decide some subset of the :data:`~repro.api.problems.Problem`
union and always answers with the uniform :class:`~repro.api.result.Result`.
Three backend families ship in-tree:

* ``kodkod`` — the bounded relational pipeline (translate → CDCL →
  instance extraction) for formula and module problems;
* ``kodkod-vector`` — the same pipeline with the solver's numpy
  propagation kernel (:mod:`repro.sat.kernel`) switched on; it is
  search-trajectory identical to ``kodkod`` and serves as its fast twin
  in the differential oracles;
* ``explorer`` — exhaustive schedule exploration of the executable
  protocol for protocol problems.

In addition, any SAT-competition-conformant binary becomes a backend
through the ``dimacs:`` prefix: ``Options(solver="dimacs:picosat")``
resolves to a :class:`DimacsBackend` that round-trips the translated CNF
through a DIMACS file and the external process (see
:mod:`repro.sat.external`).  The ``dimacs-inc:`` prefix is its
persistent twin: ``Options(solver="dimacs-inc:<command>")`` resolves to
a :class:`DimacsIncBackend` that keeps one long-lived process per query
and streams blocking clauses to it incrementally, so enumeration pays a
single spawn for N models instead of N spawn+dump round trips.  The
command must speak the iCNF stdin protocol (the in-tree
``python -m repro.sat.dimacs solve --incremental`` does; plain one-shot
binaries like picosat do not — keep those on ``dimacs:``).  Both are
materialized on first use rather than pre-registered, since the command
is part of the name.

Alternative engines (a parallel portfolio, a BDD-based finder) plug in by
implementing :class:`Backend` and calling :func:`register_backend`; every
façade entry point and the batch path then reach them through
``Options.solver``.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from repro.api.options import Options
from repro.api.problems import (
    FormulaProblem,
    ModuleProblem,
    Problem,
    ProtocolProblem,
)
from repro.api.result import Result, Verdict
from repro.alloylite.module import Scope
from repro.checking.explorer import explore
from repro.kodkod import ast
from repro.kodkod.bounds import Bounds
from repro.kodkod.engine import Session
from repro.kodkod.evaluator import Evaluator
from repro.kodkod.instance import extract_instance
from repro.kodkod.symmetry import DEFAULT_SBP_LENGTH
from repro.kodkod.translate import Translator
from repro.sat.external import (
    ExternalSolver,
    ExternalSolverError,
    IncrementalExternalSolver,
)
from repro.sat.types import Status


@runtime_checkable
class Backend(Protocol):
    """The interface every verification backend implements."""

    name: str

    def supports(self, problem: Problem) -> bool:
        """Whether this backend can decide ``problem``."""
        ...

    def solve(self, problem: Problem, options: Options) -> Result:
        """Decide the problem (one verdict, at most one witness)."""
        ...

    def enumerate(self, problem: Problem, options: Options) -> Result:
        """Enumerate witnessing instances (bounded by ``max_instances``)."""
        ...


_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend, replace: bool = False) -> Backend:
    """Register a backend under its ``name`` (the ``Options.solver`` key)."""
    name = getattr(backend, "name", None)
    if not isinstance(name, str) or not name:
        raise ValueError(
            f"backend must expose a non-empty string 'name' attribute, "
            f"got {name!r}"
        )
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"backend {name!r} is already registered; pass replace=True "
            f"to override it"
        )
    _REGISTRY[name] = backend
    return backend


def available_backends() -> list[str]:
    """Registered backend names, in registration order."""
    return list(_REGISTRY)


# DimacsBackend / DimacsIncBackend instances materialized from
# "dimacs:<command>" / "dimacs-inc:<command>" solver names, cached per
# full name so repeated option resolution reuses them.  The backends
# themselves hold no process state — the persistent process of the
# incremental backend lives only for the duration of one solve/enumerate
# call — so caching them is safe.
_DIMACS_BACKENDS: dict[str, Backend] = {}

_DIMACS_PREFIX = "dimacs:"
_DIMACS_INC_PREFIX = "dimacs-inc:"


def get_backend(name: str) -> Backend:
    """Look up a backend by name, with an actionable error on a miss.

    Names starting with ``dimacs:`` or ``dimacs-inc:`` resolve
    dynamically: the rest of the name is the external solver command
    (``"dimacs:picosat"``, ``"dimacs-inc:python -m repro.sat.dimacs
    solve --incremental"``).
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        pass
    for prefix, factory in ((_DIMACS_INC_PREFIX, DimacsIncBackend),
                            (_DIMACS_PREFIX, DimacsBackend)):
        if not name.startswith(prefix):
            continue
        command = name[len(prefix):].strip()
        if not command:
            raise ValueError(
                f"empty external solver command: use '{prefix}<command>', "
                f"e.g. Options(solver='{prefix}picosat')"
            )
        backend = _DIMACS_BACKENDS.get(prefix + command)
        if backend is None:
            backend = _DIMACS_BACKENDS[prefix + command] = factory(command)
        return backend
    raise ValueError(
        f"unknown backend {name!r}; registered backends: "
        f"{available_backends()} (or 'dimacs:<command>' / "
        f"'dimacs-inc:<command>' for an external SAT solver)"
    )


def backend_for(problem: Problem, options: Options) -> Backend:
    """Resolve the backend deciding ``problem`` under ``options``.

    ``options.solver`` forces a specific backend (and errors if that
    backend cannot handle the problem kind); otherwise the first
    registered backend supporting the problem wins.
    """
    if options.solver is not None:
        backend = get_backend(options.solver)
        if not backend.supports(problem):
            raise ValueError(
                f"backend {backend.name!r} does not support "
                f"{type(problem).__name__}; backends that do: "
                f"{[n for n, b in _REGISTRY.items() if b.supports(problem)]}"
            )
        return backend
    for backend in _REGISTRY.values():
        if backend.supports(problem):
            return backend
    raise ValueError(
        f"no registered backend supports {type(problem).__name__}; "
        f"registered backends: {available_backends()}"
    )


# ----------------------------------------------------------------------
# The bounded relational backend (mini-Kodkod pipeline)
# ----------------------------------------------------------------------


def _relational_goal(problem: Problem,
                     backend_name: str) -> tuple[ast.Formula, Bounds, bool]:
    """(goal formula, bounds, is_validity_query) for a relational problem."""
    if isinstance(problem, FormulaProblem):
        return problem.formula, problem.bounds, False
    if isinstance(problem, ModuleProblem):
        scope = problem.scope or Scope()
        _, bounds, facts = problem.module.compile(scope)
        if problem.command == "check":
            return ast.And([facts, ast.Not(problem.goal)]), bounds, True
        goal = (facts if problem.goal is None
                else ast.And([facts, problem.goal]))
        return goal, bounds, False
    raise ValueError(
        f"{backend_name} backend cannot decide {type(problem).__name__}"
    )


class KodkodBackend:
    """Formula/module problems via translate → CDCL → instance extraction.

    ``kernel`` selects the solver's propagation engine (``"pure"`` or
    ``"vector"``; see :mod:`repro.sat.kernel`).  The two engines take
    identical search trajectories, so ``kodkod`` and ``kodkod-vector``
    answers are interchangeable — which is exactly what makes them useful
    as a differential pair.
    """

    def __init__(self, kernel: str = "pure") -> None:
        self.kernel = kernel
        self.name = "kodkod" if kernel == "pure" else f"kodkod-{kernel}"

    def supports(self, problem: Problem) -> bool:
        return isinstance(problem, (FormulaProblem, ModuleProblem))

    def _goal(self, problem: Problem) -> tuple[ast.Formula, Bounds, bool]:
        """(goal formula, bounds, is_validity_query) for a problem."""
        return _relational_goal(problem, self.name)

    def solve(self, problem: Problem, options: Options) -> Result:
        started = time.perf_counter()
        goal, bounds, validity = self._goal(problem)
        symmetry = (DEFAULT_SBP_LENGTH if options.symmetry is None
                    else options.symmetry)
        session = Session(goal, bounds, symmetry=symmetry,
                          kernel=self.kernel)
        solution = session.solve()
        if solution.satisfiable and isinstance(problem, ModuleProblem):
            _validate(goal, solution.instance)
        if validity:
            verdict = (Verdict.COUNTEREXAMPLE if solution.satisfiable
                       else Verdict.HOLDS)
        else:
            verdict = Verdict.SAT if solution.satisfiable else Verdict.UNSAT
        return Result(
            verdict=verdict,
            instances=([solution.instance] if solution.instance is not None
                       else []),
            stats=solution.stats,
            solver_stats=solution.solver_stats,
            seconds=time.perf_counter() - started,
            backend=self.name,
            detail={"solve_seconds": solution.solve_seconds,
                    "symmetry": symmetry},
        )

    def enumerate(self, problem: Problem, options: Options) -> Result:
        started = time.perf_counter()
        goal, bounds, validity = self._goal(problem)
        # Enumeration defaults to symmetry off so every model is produced;
        # an explicit symmetry level enumerates canonical representatives.
        symmetry = 0 if options.symmetry is None else options.symmetry
        limit = options.max_instances
        session = Session(goal, bounds, symmetry=symmetry,
                          kernel=self.kernel)
        instances = list(session.iter_solutions(limit))
        if validity:
            verdict = (Verdict.COUNTEREXAMPLE if instances
                       else Verdict.HOLDS)
        else:
            verdict = Verdict.SAT if instances else Verdict.UNSAT
        return Result(
            verdict=verdict,
            instances=instances,
            stats=session.translation.stats,
            solver_stats=session.solver_stats(),
            seconds=time.perf_counter() - started,
            backend=self.name,
            detail={
                "num_instances": len(instances),
                "truncated": limit is not None and len(instances) >= limit,
                "symmetry": symmetry,
            },
        )


def _validate(goal: ast.Formula, instance) -> None:
    """Sanity-check every instance the SAT pipeline returns for a module."""
    assert instance is not None
    if not Evaluator(instance).check(goal):
        raise AssertionError(
            "internal error: SAT instance does not satisfy the goal formula"
        )


# ----------------------------------------------------------------------
# The external-solver backend (DIMACS round trip)
# ----------------------------------------------------------------------


class DimacsBackend:
    """Formula/module problems decided by an external CDCL solver.

    Translation and instance extraction stay in-tree; only the SAT search
    is delegated: the translated CNF is written to a DIMACS file, the
    external command is invoked on it (exit 10/20 convention), and the
    ``v``-line model is parsed back and projected onto the primary
    variables exactly as the built-in solver's models are.  Enumeration
    re-invokes the solver with blocking clauses appended, so the instance
    stream is distinct on primary-variable valuations just like
    :meth:`KodkodBackend.enumerate`.

    Raises :class:`~repro.sat.external.ExternalSolverError` with an
    actionable message when the binary is missing, times out
    (``options.timeout`` is the per-invocation budget), exits with an
    unexpected code, or reports SAT without printing a model while one is
    needed.
    """

    def __init__(self, command: str) -> None:
        self.command = command
        self.name = f"dimacs:{command}"

    def supports(self, problem: Problem) -> bool:
        return isinstance(problem, (FormulaProblem, ModuleProblem))

    def _translate(self, problem: Problem, symmetry: int):
        goal, bounds, validity = _relational_goal(problem, "dimacs")
        translation = Translator(bounds, symmetry=symmetry).translate(goal)
        return goal, translation, validity

    def solve(self, problem: Problem, options: Options) -> Result:
        started = time.perf_counter()
        symmetry = (DEFAULT_SBP_LENGTH if options.symmetry is None
                    else options.symmetry)
        goal, translation, validity = self._translate(problem, symmetry)
        external = ExternalSolver(self.command, timeout=options.timeout)
        run = external.solve_cnf(
            translation.cnf, comments=[f"repro dimacs backend {self.command}"])
        instances = []
        if run.status is Status.SAT:
            if run.model is None:
                raise ExternalSolverError(
                    f"external solver {self.command!r} reported SAT without "
                    "a v-line model; enable model printing so instances can "
                    "be extracted"
                )
            instance = extract_instance(translation, run.model)
            if isinstance(problem, ModuleProblem):
                _validate(goal, instance)
            instances = [instance]
        if validity:
            verdict = (Verdict.COUNTEREXAMPLE if instances
                       else Verdict.HOLDS)
        else:
            verdict = Verdict.SAT if instances else Verdict.UNSAT
        return Result(
            verdict=verdict,
            instances=instances,
            stats=translation.stats,
            solver_stats={
                "kernel": "external",
                "external_wall_time": run.wall_seconds,
                "external_invocations": 1,
                "external_exit_code": run.exit_code,
            },
            seconds=time.perf_counter() - started,
            backend=self.name,
            detail={"solve_seconds": run.wall_seconds,
                    "symmetry": symmetry,
                    "external_command": self.command},
        )

    def enumerate(self, problem: Problem, options: Options) -> Result:
        started = time.perf_counter()
        # Enumeration defaults to symmetry off so every model is produced
        # (mirrors KodkodBackend.enumerate).
        symmetry = 0 if options.symmetry is None else options.symmetry
        goal, translation, validity = self._translate(problem, symmetry)
        limit = options.max_instances
        external = ExternalSolver(self.command, timeout=options.timeout)
        cnf = translation.cnf.copy()
        primary = translation.primary_vars()
        instances = []
        wall = 0.0
        invocations = 0
        while limit is None or len(instances) < limit:
            run = external.solve_cnf(
                cnf, comments=[f"repro dimacs backend {self.command} "
                               f"model {invocations}"])
            wall += run.wall_seconds
            invocations += 1
            if run.status is not Status.SAT:
                break
            if run.model is None:
                raise ExternalSolverError(
                    f"external solver {self.command!r} reported SAT without "
                    "a v-line model; enumeration needs models to build "
                    "blocking clauses"
                )
            instance = extract_instance(translation, run.model)
            if isinstance(problem, ModuleProblem):
                _validate(goal, instance)
            instances.append(instance)
            if not primary:
                break  # nothing to block on: the model space is one point
            cnf.add_clause([-v if run.model[v] else v for v in primary])
        if validity:
            verdict = (Verdict.COUNTEREXAMPLE if instances
                       else Verdict.HOLDS)
        else:
            verdict = Verdict.SAT if instances else Verdict.UNSAT
        return Result(
            verdict=verdict,
            instances=instances,
            stats=translation.stats,
            solver_stats={
                "kernel": "external",
                "external_wall_time": wall,
                "external_invocations": invocations,
            },
            seconds=time.perf_counter() - started,
            backend=self.name,
            detail={
                "num_instances": len(instances),
                "truncated": limit is not None and len(instances) >= limit,
                "symmetry": symmetry,
                "external_command": self.command,
            },
        )


class DimacsIncBackend(DimacsBackend):
    """External solving over one persistent incremental process.

    Same translation/extraction split as :class:`DimacsBackend`, but the
    SAT search delegates to an :class:`~repro.sat.external.
    IncrementalExternalSolver`: the process is spawned once per query,
    the CNF is streamed to it over stdin, and enumeration sends each
    blocking clause incrementally instead of re-invoking the command on a
    freshly dumped file — so the external solver keeps its learned
    clauses between models and the spawn cost is paid once for N models.
    The process never outlives the query: ``solve``/``enumerate`` close
    it before returning, so the cached backend object stays stateless.

    ``solver_stats`` reports ``external_spawns`` (always 1 — asserted by
    the fake-CDCL fixtures) next to ``external_invocations`` (solve
    rounds).  The command must implement the iCNF stdin protocol; a
    one-shot binary dies at the first solve request, which surfaces as an
    :class:`~repro.sat.external.ExternalSolverError` telling the caller
    to fall back to the ``dimacs:`` backend.
    """

    def __init__(self, command: str) -> None:
        super().__init__(command)
        self.name = f"dimacs-inc:{command}"

    def solve(self, problem: Problem, options: Options) -> Result:
        started = time.perf_counter()
        symmetry = (DEFAULT_SBP_LENGTH if options.symmetry is None
                    else options.symmetry)
        goal, translation, validity = self._translate(problem, symmetry)
        with IncrementalExternalSolver(self.command,
                                       timeout=options.timeout) as external:
            external.load_cnf(translation.cnf)
            run = external.solve()
            spawns, invocations = external.spawn_count, external.solve_count
        instances = []
        if run.status is Status.SAT:
            if run.model is None:
                raise ExternalSolverError(
                    f"external solver {self.command!r} reported SAT without "
                    "a v-line model; enable model printing so instances can "
                    "be extracted"
                )
            instance = extract_instance(translation, run.model)
            if isinstance(problem, ModuleProblem):
                _validate(goal, instance)
            instances = [instance]
        if validity:
            verdict = (Verdict.COUNTEREXAMPLE if instances
                       else Verdict.HOLDS)
        else:
            verdict = Verdict.SAT if instances else Verdict.UNSAT
        return Result(
            verdict=verdict,
            instances=instances,
            stats=translation.stats,
            solver_stats={
                "kernel": "external",
                "external_wall_time": run.wall_seconds,
                "external_invocations": invocations,
                "external_spawns": spawns,
                "external_exit_code": run.exit_code,
            },
            seconds=time.perf_counter() - started,
            backend=self.name,
            detail={"solve_seconds": run.wall_seconds,
                    "symmetry": symmetry,
                    "external_command": self.command},
        )

    def enumerate(self, problem: Problem, options: Options) -> Result:
        started = time.perf_counter()
        # Enumeration defaults to symmetry off so every model is produced
        # (mirrors KodkodBackend.enumerate).
        symmetry = 0 if options.symmetry is None else options.symmetry
        goal, translation, validity = self._translate(problem, symmetry)
        limit = options.max_instances
        instances = []
        wall = 0.0
        with IncrementalExternalSolver(self.command,
                                       timeout=options.timeout) as external:
            external.load_cnf(translation.cnf)
            primary = translation.primary_vars()
            while limit is None or len(instances) < limit:
                run = external.solve()
                wall += run.wall_seconds
                if run.status is not Status.SAT:
                    break
                if run.model is None:
                    raise ExternalSolverError(
                        f"external solver {self.command!r} reported SAT "
                        "without a v-line model; enumeration needs models "
                        "to build blocking clauses"
                    )
                instance = extract_instance(translation, run.model)
                if isinstance(problem, ModuleProblem):
                    _validate(goal, instance)
                instances.append(instance)
                if not primary:
                    break  # nothing to block on: the model space is one point
                external.add_clause(
                    [-v if run.model[v] else v for v in primary])
            spawns, invocations = external.spawn_count, external.solve_count
        if validity:
            verdict = (Verdict.COUNTEREXAMPLE if instances
                       else Verdict.HOLDS)
        else:
            verdict = Verdict.SAT if instances else Verdict.UNSAT
        return Result(
            verdict=verdict,
            instances=instances,
            stats=translation.stats,
            solver_stats={
                "kernel": "external",
                "external_wall_time": wall,
                "external_invocations": invocations,
                "external_spawns": spawns,
            },
            seconds=time.perf_counter() - started,
            backend=self.name,
            detail={
                "num_instances": len(instances),
                "truncated": limit is not None and len(instances) >= limit,
                "symmetry": symmetry,
                "external_command": self.command,
            },
        )


# ----------------------------------------------------------------------
# The explicit-state protocol backend
# ----------------------------------------------------------------------


class ExplorerBackend:
    """Protocol problems via exhaustive schedule exploration."""

    name = "explorer"

    def supports(self, problem: Problem) -> bool:
        return isinstance(problem, ProtocolProblem)

    def solve(self, problem: Problem, options: Options) -> Result:
        if not isinstance(problem, ProtocolProblem):
            raise ValueError(
                f"explorer backend cannot decide {type(problem).__name__}"
            )
        started = time.perf_counter()
        exploration = explore(
            problem.network, list(problem.items), dict(problem.policies),
            max_rounds=options.max_rounds, max_paths=options.max_paths,
            memoize=options.memoize,
        )
        verdict = (Verdict.HOLDS if exploration.all_converged
                   else Verdict.COUNTEREXAMPLE)
        return Result(
            verdict=verdict,
            trace=exploration.counterexample,
            seconds=time.perf_counter() - started,
            backend=self.name,
            detail={
                "paths_explored": exploration.paths_explored,
                "max_rounds_to_converge": exploration.max_rounds_to_converge,
                "memo_hits": exploration.memo_hits,
                "states_memoized": exploration.states_memoized,
                "oscillating": exploration.oscillating_trace is not None,
                "diverging": exploration.diverging_trace is not None,
            },
        )

    def enumerate(self, problem: Problem, options: Options) -> Result:
        raise ValueError(
            "the explorer backend decides protocol checks; it cannot "
            "enumerate relational instances — use solve()/run_protocol(), "
            "or pick a relational problem for enumerate()"
        )


register_backend(KodkodBackend())
register_backend(KodkodBackend(kernel="vector"))
register_backend(ExplorerBackend())
