"""The uniform result type every backend produces.

One :class:`Result` shape replaces the per-module zoo
(``kodkod.engine.Solution``, ``alloylite.commands.RunResult`` /
``CheckResult``, ``checking.explorer.ExplorationResult``): a
:class:`Verdict` enum, the witnessing instances, an optional protocol
trace, and the translation/solver statistics.  The shared
:func:`describe_verdict` renderer is the single pretty-printer behind
:meth:`Result.describe` and the legacy ``describe()`` methods.

This module is deliberately a leaf: it imports only the kodkod instance
and translation types, so legacy modules can import the renderer without
creating an import cycle with the façade.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from enum import Enum
from typing import Iterable, Sequence

from repro.kodkod import ast
from repro.kodkod.instance import Instance
from repro.kodkod.translate import TranslationStats
from repro.kodkod.universe import Universe


class Verdict(str, Enum):
    """Uniform verdict vocabulary across every backend and problem kind.

    ``SAT``/``UNSAT`` answer satisfiability queries (``solve``,
    ``enumerate``); ``HOLDS``/``COUNTEREXAMPLE`` answer validity queries
    (``check``, ``run_protocol``); ``ERROR`` marks a batch task that
    crashed or timed out instead of completing.
    """

    SAT = "sat"
    UNSAT = "unsat"
    HOLDS = "holds"
    COUNTEREXAMPLE = "counterexample"
    ERROR = "error"


@dataclass
class Result:
    """Outcome of one façade operation, uniform across backends.

    ``instances`` holds the witnessing instance(s): one model for a SAT
    ``solve``, every enumerated model for ``enumerate``, the
    counterexample for a failed ``check``.  ``trace`` carries a protocol
    counterexample schedule.  ``detail`` is the backend's JSON-able extra
    telemetry (paths explored, memo hits, solve seconds, cache status).

    Results produced by the delta-verification path
    (:func:`repro.api.solve_delta` / ``repro.api.DeltaSession``) carry a
    ``detail["delta"]`` provenance block:

    * ``path`` — ``"reused"`` (live-solver warm re-solve), ``"fallback"``
      (diff was not delta-safe; fresh full solve) or ``"cold"`` (the
      anchor solve itself);
    * ``reason`` — the edit classification behind the decision
      (``"identical"``, ``"bounds_narrowed"``, ``"formula_changed"``,
      ``"bounds_widened"``, ``"symmetry"``, ...);
    * ``dropped``/``promoted``/``assumptions`` — edit size on the reuse
      path;
    * ``warm_solve_seconds`` — pure search time of a warm re-solve.
    """

    verdict: Verdict
    instances: list[Instance] = field(default_factory=list)
    trace: list[str] | None = None
    stats: TranslationStats | None = None
    solver_stats: dict = field(default_factory=dict)
    seconds: float = 0.0
    backend: str = ""
    detail: dict = field(default_factory=dict)
    error: str | None = None

    @property
    def satisfiable(self) -> bool:
        """Whether a witnessing instance exists.

        ``SAT`` and ``COUNTEREXAMPLE`` both witness satisfiability (a
        counterexample is a model of the negated assertion); ``UNSAT``
        and ``HOLDS`` both witness its absence.
        """
        if self.verdict is Verdict.ERROR:
            raise ValueError(f"task did not complete: {self.error}")
        return self.verdict in (Verdict.SAT, Verdict.COUNTEREXAMPLE)

    @property
    def holds(self) -> bool:
        """Whether the checked property holds (no counterexample found)."""
        if self.verdict is Verdict.ERROR:
            raise ValueError(f"task did not complete: {self.error}")
        return self.verdict in (Verdict.HOLDS, Verdict.UNSAT)

    @property
    def instance(self) -> Instance | None:
        """The first witnessing instance, if any."""
        return self.instances[0] if self.instances else None

    @property
    def delta(self) -> dict | None:
        """The delta-verification provenance block, if this result came
        from :func:`repro.api.solve_delta` (see the class docstring)."""
        return self.detail.get("delta")

    @property
    def counterexample(self) -> Instance | list[str] | None:
        """The counterexample witness: an instance, or a protocol trace."""
        if self.verdict is not Verdict.COUNTEREXAMPLE:
            return None
        return self.instance if self.instances else self.trace

    def describe(self) -> str:
        """Human-readable rendering via the shared renderer."""
        return describe_verdict(self.verdict, self.instances, self.trace,
                                self.error)


def describe_verdict(verdict: Verdict, instances: Sequence[Instance] = (),
                     trace: Iterable[str] | None = None,
                     error: str | None = None) -> str:
    """The one renderer behind every ``describe()`` in the stack.

    The legacy ``RunResult.describe`` / ``CheckResult.describe`` strings
    are preserved exactly, so existing output-matching callers stay green.
    """
    if verdict is Verdict.ERROR:
        return f"error: {error or 'task did not complete'}"
    if verdict is Verdict.UNSAT:
        return "no instance found"
    if verdict is Verdict.HOLDS:
        return "assertion holds within the scope (no counterexample)"
    if verdict is Verdict.COUNTEREXAMPLE:
        if instances:
            return "counterexample found:\n" + instances[0].describe()
        if trace is not None:
            return "counterexample found:\n" + "\n".join(trace)
        return "counterexample found"
    # SAT
    if not instances:
        return "satisfiable (no instance extracted)"
    if len(instances) == 1:
        return instances[0].describe()
    blocks = [
        f"--- instance {index} ---\n{instance.describe()}"
        for index, instance in enumerate(instances)
    ]
    return "\n".join(blocks)


# ----------------------------------------------------------------------
# JSON round trip (the batch path's cache format)
# ----------------------------------------------------------------------


def instance_payload(instance: Instance) -> dict:
    """Canonical JSON-able form of an instance (stable across processes)."""
    return {
        "universe": list(instance.universe.atoms),
        "relations": [
            {
                "name": relation.name,
                "arity": relation.arity,
                "tuples": sorted(
                    list(t) for t in instance.value_of(relation)
                ),
            }
            for relation in sorted(instance.relations(),
                                   key=lambda r: (r.name, r.arity))
        ],
    }


def _instance_from_payload(payload: dict) -> Instance:
    universe = Universe(payload["universe"])
    valuations = {}
    for entry in payload["relations"]:
        relation = ast.Relation(entry["name"], entry["arity"])
        valuations[relation] = universe.tuple_set(
            entry["arity"], [tuple(t) for t in entry["tuples"]]
        )
    return Instance(universe, valuations)


def result_to_json(result: Result) -> dict:
    """JSON-able form of a result (cache entry / artifact row)."""
    return {
        "verdict": result.verdict.value,
        "instances": [instance_payload(i) for i in result.instances],
        "trace": list(result.trace) if result.trace is not None else None,
        # Not dataclasses.asdict: it deep-copies every field value, and
        # this serializer also runs inside pool workers on hot paths.
        "stats": ({f.name: getattr(result.stats, f.name)
                   for f in fields(result.stats)}
                  if result.stats is not None else None),
        "solver_stats": dict(result.solver_stats),
        "seconds": result.seconds,
        "backend": result.backend,
        "detail": dict(result.detail),
        "error": result.error,
    }


def result_from_json(payload: dict) -> Result:
    """Inverse of :func:`result_to_json`.

    Rebuilt instances carry fresh :class:`~repro.kodkod.ast.Relation`
    objects (relations compare by identity); compare round-tripped
    instances via :func:`instance_payload`, not ``value_of`` on the
    original relation objects.
    """
    stats = payload.get("stats")
    return Result(
        verdict=Verdict(payload["verdict"]),
        instances=[
            _instance_from_payload(p) for p in payload.get("instances", [])
        ],
        trace=(list(payload["trace"])
               if payload.get("trace") is not None else None),
        stats=TranslationStats(**stats) if stats is not None else None,
        solver_stats=dict(payload.get("solver_stats", {})),
        seconds=payload.get("seconds", 0.0),
        backend=payload.get("backend", ""),
        detail=dict(payload.get("detail", {})),
        error=payload.get("error"),
    )
