"""Alloy-lite: an embedded DSL mirroring the Alloy fragment the paper uses.

Signatures with fields and multiplicities, facts, a ``util/ordering``
equivalent, and push-button ``run``/``check`` commands at bounded scopes.
"""

from repro.alloylite.commands import CheckResult, RunResult, check, iter_instances, run
from repro.alloylite.module import Module, ModuleError, Scope
from repro.alloylite.ordering import OrderedModule, Ordering
from repro.alloylite.sig import Field, Sig

__all__ = [
    "CheckResult",
    "Field",
    "Module",
    "ModuleError",
    "OrderedModule",
    "Ordering",
    "RunResult",
    "Scope",
    "Sig",
    "check",
    "iter_instances",
    "run",
]
