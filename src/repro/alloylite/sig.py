"""Signatures and fields: the Alloy surface syntax of the model layer.

A :class:`Sig` declares a set of atoms (``sig pnode {...}``); a
:class:`Field` declares a relation whose first column ranges over its owner
sig (``pcp: one Int``).  Multiplicity keywords (``one``, ``lone``, ``some``,
``set``) become implicit facts, exactly as in Alloy.

Both compile down to :class:`repro.kodkod.ast.Relation` objects; the
:class:`~repro.alloylite.module.Module` assembles bounds and facts from
them.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.kodkod import ast

MULTIPLICITIES = ("one", "lone", "some", "set")


class Sig:
    """An Alloy signature: a named set of atoms.

    ``parent`` declares an ``extends`` relationship: the sub-sig's atoms are
    a subset of the parent's, and sibling sub-sigs are disjoint.
    ``is_one`` declares a singleton sig (``one sig NULL {...}``).
    ``abstract`` means the sig equals the union of its children.
    """

    def __init__(
        self,
        name: str,
        parent: "Sig | None" = None,
        is_one: bool = False,
        abstract: bool = False,
    ) -> None:
        self.name = name
        self.parent = parent
        self.is_one = is_one
        self.abstract = abstract
        self.relation = ast.Relation(name, 1)
        self.fields: list[Field] = []
        self.children: list[Sig] = []
        if parent is not None:
            parent.children.append(self)

    @property
    def expr(self) -> ast.Expr:
        """The relational expression denoting this sig."""
        return self.relation

    def field(
        self,
        name: str,
        *columns: "Sig | ast.Expr",
        mult: str = "set",
    ) -> "Field":
        """Declare a field ``name: columns[0] -> ... -> columns[-1]``.

        For binary fields (one column), ``mult`` constrains ``s.field`` for
        every ``s`` in this sig, like Alloy's ``pcp: one Int``.
        """
        fld = Field(self, name, columns, mult)
        self.fields.append(fld)
        return fld

    def top_level(self) -> "Sig":
        """The root of this sig's extends-hierarchy."""
        sig = self
        while sig.parent is not None:
            sig = sig.parent
        return sig

    def __repr__(self) -> str:
        return f"Sig({self.name!r})"


class Field:
    """A field declared inside a sig; denotes a relation of arity 1+n."""

    def __init__(
        self,
        owner: Sig,
        name: str,
        columns: Sequence[Sig | ast.Expr],
        mult: str,
    ) -> None:
        if not columns:
            raise ValueError("a field needs at least one column")
        if mult not in MULTIPLICITIES:
            raise ValueError(f"unknown multiplicity {mult!r}")
        self.owner = owner
        self.name = name
        self.columns = list(columns)
        self.mult = mult
        self.relation = ast.Relation(f"{owner.name}.{name}", 1 + len(columns))

    @property
    def expr(self) -> ast.Expr:
        """The relational expression denoting this field."""
        return self.relation

    def column_exprs(self) -> list[ast.Expr]:
        """Column domains as relational expressions."""
        return [c.expr if isinstance(c, Sig) else c for c in self.columns]

    def declaration_facts(self) -> Iterable[ast.Formula]:
        """Implicit facts: typing and multiplicity, as Alloy generates."""
        # Typing: field ⊆ owner -> col1 -> ... -> coln.
        domain: ast.Expr = self.owner.expr
        for col in self.column_exprs():
            domain = ast.Product(domain, col)
        yield ast.Subset(self.relation, domain)
        # Multiplicity: for binary fields, constrain s.field per owner atom.
        if len(self.columns) == 1 and self.mult != "set":
            var = ast.Variable(f"__{self.owner.name}_{self.name}")
            image = ast.Join(var, self.relation)
            if self.mult == "one":
                body: ast.Formula = ast.One(image)
            elif self.mult == "lone":
                body = ast.Lone(image)
            else:  # some
                body = ast.Some(image)
            yield ast.ForAll([(var, self.owner.expr)], body)

    def __repr__(self) -> str:
        cols = " -> ".join(
            c.name if isinstance(c, Sig) else repr(c) for c in self.columns
        )
        return f"Field({self.owner.name}.{self.name}: {self.mult} {cols})"
