"""Alloy-style commands: ``run`` and ``check`` over a module and scope.

``run`` searches for a satisfying instance of the facts plus a predicate;
``check`` searches for a *counterexample* to an assertion (facts plus the
negated assertion).  Both are "push-button": they compile the module at the
requested scope, translate, solve, and report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.alloylite.module import Module, Scope
from repro.kodkod import ast
from repro.kodkod.engine import iter_solutions as _kk_iter, solve as _kk_solve
from repro.kodkod.evaluator import Evaluator
from repro.kodkod.instance import Instance
from repro.kodkod.translate import TranslationStats


@dataclass
class RunResult:
    """Result of a ``run`` command."""

    satisfiable: bool
    instance: Instance | None
    stats: TranslationStats
    solve_seconds: float
    total_seconds: float

    def describe(self) -> str:
        """Pretty rendering of the found instance (if any)."""
        if not self.satisfiable:
            return "no instance found"
        assert self.instance is not None
        return self.instance.describe()


@dataclass
class CheckResult:
    """Result of a ``check`` command."""

    valid: bool
    counterexample: Instance | None
    stats: TranslationStats
    solve_seconds: float
    total_seconds: float

    def describe(self) -> str:
        """Pretty rendering of the verdict."""
        if self.valid:
            return "assertion holds within the scope (no counterexample)"
        assert self.counterexample is not None
        return "counterexample found:\n" + self.counterexample.describe()


def run(module: Module, predicate: ast.Formula | None = None,
        scope: Scope | None = None) -> RunResult:
    """Find an instance of the module's facts (plus ``predicate``)."""
    scope = scope or Scope()
    started = time.perf_counter()
    _, bounds, facts = module.compile(scope)
    goal = facts if predicate is None else ast.And([facts, predicate])
    solution = _kk_solve(goal, bounds)
    total = time.perf_counter() - started
    if solution.satisfiable:
        _validate(goal, solution.instance)
    return RunResult(
        satisfiable=solution.satisfiable,
        instance=solution.instance,
        stats=solution.stats,
        solve_seconds=solution.solve_seconds,
        total_seconds=total,
    )


def check(module: Module, assertion: ast.Formula,
          scope: Scope | None = None) -> CheckResult:
    """Check an assertion: search for a counterexample within the scope."""
    scope = scope or Scope()
    started = time.perf_counter()
    _, bounds, facts = module.compile(scope)
    goal = ast.And([facts, ast.Not(assertion)])
    solution = _kk_solve(goal, bounds)
    total = time.perf_counter() - started
    if solution.satisfiable:
        _validate(goal, solution.instance)
    return CheckResult(
        valid=not solution.satisfiable,
        counterexample=solution.instance,
        stats=solution.stats,
        solve_seconds=solution.solve_seconds,
        total_seconds=total,
    )


def iter_instances(module: Module, predicate: ast.Formula | None = None,
                   scope: Scope | None = None, limit: int | None = None):
    """Enumerate instances of the module's facts (plus ``predicate``)."""
    scope = scope or Scope()
    _, bounds, facts = module.compile(scope)
    goal = facts if predicate is None else ast.And([facts, predicate])
    yield from _kk_iter(goal, bounds, limit=limit)


def _validate(goal: ast.Formula, instance: Instance | None) -> None:
    """Sanity-check every instance the SAT pipeline returns."""
    assert instance is not None
    if not Evaluator(instance).check(goal):
        raise AssertionError(
            "internal error: SAT instance does not satisfy the goal formula"
        )
