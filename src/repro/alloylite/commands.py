"""Alloy-style commands: ``run`` and ``check`` over a module and scope.

Deprecated thin shims over the unified façade: the compile/translate/
solve/validate pipeline now lives in the ``kodkod`` backend of
:mod:`repro.api` (see :class:`repro.api.backends.KodkodBackend`), and
these wrappers only project the uniform result back onto the legacy
:class:`RunResult`/:class:`CheckResult` shapes.  New code should call
:func:`repro.api.solve` / :func:`repro.api.check` directly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.alloylite.module import Module, Scope
from repro.api.result import Verdict, describe_verdict
from repro.kodkod import ast
from repro.kodkod.instance import Instance
from repro.kodkod.translate import TranslationStats


@dataclass
class RunResult:
    """Result of a ``run`` command (legacy shape)."""

    satisfiable: bool
    instance: Instance | None
    stats: TranslationStats
    solve_seconds: float
    total_seconds: float

    def describe(self) -> str:
        """Pretty rendering of the found instance (if any)."""
        return describe_verdict(
            Verdict.SAT if self.satisfiable else Verdict.UNSAT,
            [self.instance] if self.instance is not None else (),
        )


@dataclass
class CheckResult:
    """Result of a ``check`` command (legacy shape)."""

    valid: bool
    counterexample: Instance | None
    stats: TranslationStats
    solve_seconds: float
    total_seconds: float

    def describe(self) -> str:
        """Pretty rendering of the verdict."""
        return describe_verdict(
            Verdict.HOLDS if self.valid else Verdict.COUNTEREXAMPLE,
            [self.counterexample] if self.counterexample is not None else (),
        )


def _warn(old: str, new: str) -> None:
    warnings.warn(
        f"repro.alloylite.{old}() is deprecated; use {new}",
        DeprecationWarning, stacklevel=3,
    )


def run(module: Module, predicate: ast.Formula | None = None,
        scope: Scope | None = None) -> RunResult:
    """Deprecated: use :func:`repro.api.solve` on a ``ModuleProblem``."""
    _warn("run", "repro.api.solve(ModuleProblem(module, 'run', ...))")
    from repro.api.facade import solve as _api_solve
    from repro.api.problems import ModuleProblem

    result = _api_solve(ModuleProblem(module, "run", predicate, scope))
    return RunResult(
        satisfiable=result.satisfiable,
        instance=result.instance,
        stats=result.stats,
        solve_seconds=result.detail.get("solve_seconds", result.seconds),
        total_seconds=result.seconds,
    )


def check(module: Module, assertion: ast.Formula,
          scope: Scope | None = None) -> CheckResult:
    """Deprecated: use :func:`repro.api.check`."""
    _warn("check", "repro.api.check(module, assertion, scope)")
    from repro.api.facade import check as _api_check

    result = _api_check(module, assertion, scope)
    return CheckResult(
        valid=result.holds,
        counterexample=result.instance,
        stats=result.stats,
        solve_seconds=result.detail.get("solve_seconds", result.seconds),
        total_seconds=result.seconds,
    )


def iter_instances(module: Module, predicate: ast.Formula | None = None,
                   scope: Scope | None = None, limit: int | None = None):
    """Deprecated: use :func:`repro.api.enumerate` on a ``ModuleProblem``.

    Unlike the façade's ``enumerate`` (which materializes its instance
    list), this legacy generator keeps the original lazy contract: one
    model is solved per pull, so ``next()``/``islice`` on a huge model
    space stays cheap.
    """
    _warn("iter_instances",
          "repro.api.enumerate(ModuleProblem(module, 'run', ...))")
    from repro.kodkod.engine import Session

    scope = scope or Scope()
    _, bounds, facts = module.compile(scope)
    goal = facts if predicate is None else ast.And([facts, predicate])
    yield from Session(goal, bounds, symmetry=0).iter_solutions(limit)
