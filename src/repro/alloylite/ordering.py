"""``util/ordering`` equivalent: a fixed total order over a sig's atoms.

Alloy's ordering module forces the ordered sig's scope to be exact and fixes
a concrete total order over its atoms (which also breaks symmetry).  We do
the same: ``next``, ``first`` and ``last`` are *constant* relations derived
from atom creation order, so they cost no SAT variables at all — this is a
large part of why dynamic models with ordered states stay tractable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloylite.module import Module, Scope
from repro.alloylite.sig import Sig
from repro.kodkod import ast
from repro.kodkod.bounds import Bounds
from repro.kodkod.universe import Universe


@dataclass
class Ordering:
    """Handle to the ordering relations of a sig."""

    sig: Sig
    next: ast.Relation
    first: ast.Relation
    last: ast.Relation

    def prev(self) -> ast.Expr:
        """The predecessor relation (transpose of next)."""
        return ast.Transpose(self.next)

    def nexts(self, expr: ast.Expr) -> ast.Expr:
        """All strictly later elements of ``expr``."""
        return ast.Join(expr, ast.Closure(self.next))

    def prevs(self, expr: ast.Expr) -> ast.Expr:
        """All strictly earlier elements of ``expr``."""
        return ast.Join(expr, ast.Closure(ast.Transpose(self.next)))

    def lte(self, a: ast.Expr, b: ast.Expr) -> ast.Formula:
        """``a <= b`` in the order (for singleton expressions)."""
        return ast.Subset(b, ast.Join(a, ast.Union(ast.Closure(self.next), ast.Iden())))

    def lt(self, a: ast.Expr, b: ast.Expr) -> ast.Formula:
        """``a < b`` in the order (for singleton expressions)."""
        return ast.Subset(b, ast.Join(a, ast.Closure(self.next)))


class OrderedModule(Module):
    """A module that supports ``open util/ordering[Sig]`` declarations."""

    def __init__(self, name: str = "module") -> None:
        super().__init__(name)
        self._orderings: list[Ordering] = []

    def ordering(self, sig: Sig) -> Ordering:
        """Impose a fixed total order on ``sig``'s atoms."""
        if sig.parent is not None:
            raise ValueError("ordering is only supported on top-level sigs")
        handle = Ordering(
            sig=sig,
            next=ast.Relation(f"{sig.name}.next", 2),
            first=ast.Relation(f"{sig.name}.first", 1),
            last=ast.Relation(f"{sig.name}.last", 1),
        )
        self._orderings.append(handle)
        return handle

    @property
    def orderings(self) -> list[Ordering]:
        """All declared orderings."""
        return list(self._orderings)

    def compile(self, scope: Scope) -> tuple[Universe, Bounds, ast.Formula]:
        universe, bounds, facts = super().compile(scope)
        atoms_by_sig = self.atoms_for(scope)
        for handle in self._orderings:
            atoms = atoms_by_sig[handle.sig]
            succ_pairs = list(zip(atoms, atoms[1:]))
            bounds.bound_exactly(
                handle.next, universe.tuple_set(2, succ_pairs)
            )
            bounds.bound_exactly(
                handle.first, universe.tuple_set(1, [(atoms[0],)])
            )
            bounds.bound_exactly(
                handle.last, universe.tuple_set(1, [(atoms[-1],)])
            )
        return universe, bounds, facts
