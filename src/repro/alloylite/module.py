"""Modules: collections of sigs, fields and facts, compiled to bounds.

A :class:`Module` is the Alloy-file equivalent.  Given a :class:`Scope`
(atom counts per top-level sig), it synthesizes the universe, the bounds of
every sig- and field-relation, and the implicit typing facts — the same
"atomization" the Alloy Analyzer performs before handing a problem to
Kodkod.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.alloylite.sig import Field, Sig
from repro.kodkod import ast
from repro.kodkod.bounds import Bounds
from repro.kodkod.universe import Universe


@dataclass
class Scope:
    """Atom counts per top-level sig (Alloy's ``for N but M Sig`` scopes)."""

    default: int = 3
    per_sig: dict[str, int] = dataclass_field(default_factory=dict)

    def count_for(self, sig: Sig) -> int:
        if sig.is_one:
            return 1
        return self.per_sig.get(sig.name, self.default)


class ModuleError(ValueError):
    """Raised on inconsistent module declarations."""


class Module:
    """A model: sigs + facts, instantiable at any scope."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self._sigs: list[Sig] = []
        self._facts: list[ast.Formula] = []
        self._fact_names: list[str] = []

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def sig(self, name: str, parent: Sig | None = None, is_one: bool = False,
            abstract: bool = False) -> Sig:
        """Declare a signature."""
        if any(s.name == name for s in self._sigs):
            raise ModuleError(f"duplicate sig name {name!r}")
        sig = Sig(name, parent=parent, is_one=is_one, abstract=abstract)
        self._sigs.append(sig)
        return sig

    def fact(self, formula: ast.Formula, name: str = "") -> None:
        """Add a fact: a constraint every instance must satisfy."""
        self._facts.append(formula)
        self._fact_names.append(name or f"fact{len(self._facts)}")

    @property
    def sigs(self) -> list[Sig]:
        """All declared sigs."""
        return list(self._sigs)

    @property
    def facts(self) -> list[ast.Formula]:
        """All declared facts (excluding implicit declaration facts)."""
        return list(self._facts)

    # ------------------------------------------------------------------
    # Compilation to bounds
    # ------------------------------------------------------------------

    def _top_level_sigs(self) -> list[Sig]:
        return [s for s in self._sigs if s.parent is None]

    def atoms_for(self, scope: Scope) -> dict[Sig, list[str]]:
        """Assign atom names per sig (children partition parent prefixes)."""
        atoms: dict[Sig, list[str]] = {}
        for sig in self._top_level_sigs():
            count = scope.count_for(sig)
            if count < 1:
                raise ModuleError(f"scope for {sig.name!r} must be >= 1")
            atoms[sig] = [f"{sig.name}${i}" for i in range(count)]
        # Children carve disjoint sub-ranges out of the parent's atoms.
        def allocate_children(parent: Sig) -> None:
            pool = list(atoms[parent])
            cursor = 0
            for child in parent.children:
                count = scope.count_for(child)
                if cursor + count > len(pool):
                    raise ModuleError(
                        f"children of {parent.name!r} need more atoms than its scope"
                    )
                atoms[child] = pool[cursor:cursor + count]
                cursor += count
                allocate_children(child)

        for sig in self._top_level_sigs():
            allocate_children(sig)
        return atoms

    def compile(self, scope: Scope) -> tuple[Universe, Bounds, ast.Formula]:
        """Build (universe, bounds, conjoined facts) for a scope."""
        atoms = self.atoms_for(scope)
        universe_atoms: list[str] = []
        for sig in self._top_level_sigs():
            universe_atoms.extend(atoms[sig])
        universe = Universe(universe_atoms)
        bounds = Bounds(universe)

        # Sig relations: exact for top-level and `one` sigs; subsigs exact
        # within their carved range (Alloy-style "exactly" scopes keep the
        # model finite and the translation small).
        for sig in self._sigs:
            tuples = universe.tuple_set(1, [(a,) for a in atoms[sig]])
            bounds.bound_exactly(sig.relation, tuples)

        implicit_facts: list[ast.Formula] = []
        for sig in self._sigs:
            if sig.abstract and sig.children:
                union: ast.Expr = sig.children[0].expr
                for child in sig.children[1:]:
                    union = ast.Union(union, child.expr)
                implicit_facts.append(ast.Equal(sig.relation, union))
            for fld in sig.fields:
                upper = None
                owner_atoms = atoms[sig]
                upper_tuples = {()}
                # owner column
                upper_tuples = {(a,) for a in owner_atoms}
                for col in fld.columns:
                    if isinstance(col, Sig):
                        col_atoms = atoms[col]
                    else:
                        raise ModuleError(
                            "field columns must be sigs "
                            f"(field {fld.owner.name}.{fld.name})"
                        )
                    upper_tuples = {
                        t + (a,) for t in upper_tuples for a in col_atoms
                    }
                upper = universe.tuple_set(fld.relation.arity, upper_tuples)
                bounds.bound(fld.relation, universe.empty(fld.relation.arity), upper)
                implicit_facts.extend(fld.declaration_facts())

        all_facts = ast.and_all(implicit_facts + self._facts)
        return universe, bounds, all_facts

    def __repr__(self) -> str:
        return (
            f"Module({self.name!r}, sigs={len(self._sigs)}, "
            f"facts={len(self._facts)})"
        )
