"""Test-only fault injection: proving the fuzz loop can catch bugs.

A clean fuzz run demonstrates nothing unless the loop is known to *fail*
when the stack is broken.  A fault is a named predicate over problems;
when a fault is armed (``run_fuzz(inject=...)`` or ``--inject`` on the
CLI), every oracle outcome for a matching problem is flipped to a
disagreement — simulating a bug that affects exactly that class of input
— and the normal catch → shrink → repro pipeline must find it, minimize
it and reproduce it.  The acceptance gate for this subsystem runs a
seeded fuzz with a fault armed and asserts the shrunk reproducer is tiny
and identical across runs.

Faults are matched *after* module problems are lowered to formulas, on
the exact problem object the oracle saw.  Nothing in this module is
reachable unless a fault name is explicitly passed in; production sweeps
never consult it.
"""

from __future__ import annotations

from typing import Callable

from repro.api.problems import FormulaProblem, Problem, ProtocolProblem
from repro.fuzz import codec

FAULTS: dict[str, Callable[[Problem], bool]] = {}


def register_fault(name: str):
    """Decorator: register a fault predicate under a name."""

    def decorate(fn: Callable[[Problem], bool]):
        FAULTS[name] = fn
        return fn

    return decorate


def fault_matches(name: str, problem: Problem) -> bool:
    """Whether the named fault flips outcomes for this problem."""
    try:
        predicate = FAULTS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault {name!r}; registered faults: {sorted(FAULTS)}"
        ) from None
    return predicate(problem)


@register_fault("conjunction")
def _conjunction_fault(problem: Problem) -> bool:
    """Matches formula problems containing a conjunction of >= 2 parts.

    Simulates a bug in the AND-gate compilation path.  The minimal
    matching input is ``And([TrueF(), TrueF()])`` over empty bounds —
    3 tree nodes — so the shrinker must land at size <= 5.
    """
    if not isinstance(problem, FormulaProblem):
        return False
    tree = codec.formula_to_tree(problem.formula)
    return any(
        node.get("f") == "and" and len(node["parts"]) >= 2
        for _, node in codec.iter_subtrees(tree)
    )


@register_fault("protocol-pair")
def _protocol_pair_fault(problem: Problem) -> bool:
    """Matches protocols with >= 2 agents.

    Simulates a bug in inter-agent message handling.  The minimal
    matching input is a two-agent network with no items — size 2 — so
    the shrinker must land at <= 5 agents+items.
    """
    return (isinstance(problem, ProtocolProblem)
            and len(problem.network.agents()) >= 2)
