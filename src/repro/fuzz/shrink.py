"""Deterministic counterexample shrinking (delta debugging).

When an oracle disagrees (or a fault is injected), the raw input is
usually a page of operator soup.  :func:`shrink` minimizes it while
re-checking the failure predicate at every step: candidates are generated
in a fixed order, the first *strictly smaller* candidate that still fails
is accepted, and the loop repeats until a full candidate pass yields
nothing — so shrinking is deterministic, monotonically decreasing in
size, and idempotent (shrinking a shrunk input accepts zero steps).

Size is measured by :func:`problem_size`: formula-tree nodes plus free
tuples for relational problems, agents plus items for protocols.  Module
problems are first *lifted* to their compiled formula (the runner does
the same before checking them), so one candidate engine covers all
three kinds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.api.problems import (
    FormulaProblem,
    ModuleProblem,
    Problem,
    ProtocolProblem,
)
from repro.fuzz import codec
from repro.fuzz.codec import CodecError
from repro.mca.network import AgentNetwork

DEFAULT_MAX_CHECKS = 400


def problem_size(problem: Problem) -> int:
    """The shrinker's size metric (smaller is simpler).

    Formula problems: tagged tree nodes plus free (undetermined) tuples.
    Protocol problems: agents plus items.  Module problems: the size of
    their compiled formula problem.
    """
    if isinstance(problem, ModuleProblem):
        from repro.fuzz.runner import lift_module

        return problem_size(lift_module(problem))
    if isinstance(problem, FormulaProblem):
        return (codec.tree_size(codec.formula_to_tree(problem.formula))
                + problem.bounds.free_tuple_count())
    if isinstance(problem, ProtocolProblem):
        return len(problem.network.agents()) + len(problem.items)
    raise ValueError(f"not a façade problem: {type(problem).__name__}")


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    problem: Problem
    size_before: int
    size_after: int
    steps: list[tuple[str, int]] = field(default_factory=list)
    """Accepted reductions as (label, size after acceptance) pairs."""
    checks: int = 0
    """Failure-predicate invocations spent."""
    exhausted: bool = False
    """True when the check budget ran out before reaching a fixpoint."""

    @property
    def reduced(self) -> bool:
        """Whether any reduction was accepted."""
        return bool(self.steps)


def shrink(problem: Problem, still_fails: Callable[[Problem], bool], *,
           max_checks: int = DEFAULT_MAX_CHECKS) -> ShrinkResult:
    """Minimize ``problem`` while ``still_fails`` keeps returning True.

    ``still_fails`` must treat a crashing candidate however the caller
    wants failures treated (the runner's predicates catch exceptions and
    return False for candidates that stop exhibiting the original
    failure).  The input problem itself is assumed to fail; it is
    returned unchanged when no smaller failing candidate exists.
    """
    if isinstance(problem, ModuleProblem):
        from repro.fuzz.runner import lift_module

        lifted = lift_module(problem)
        if still_fails(lifted):
            problem = lifted
    size_before = problem_size(problem)
    current = problem
    current_size = size_before
    steps: list[tuple[str, int]] = []
    checks = 0
    exhausted = False
    progress = True
    while progress:
        progress = False
        for label, candidate in _candidates(current):
            if checks >= max_checks:
                exhausted = True
                break
            try:
                candidate_size = problem_size(candidate)
            except (CodecError, ValueError):
                continue
            if candidate_size >= current_size:
                continue
            checks += 1
            try:
                failing = still_fails(candidate)
            except Exception:
                failing = False
            if failing:
                current = candidate
                current_size = candidate_size
                steps.append((label, candidate_size))
                progress = True
                break
        if exhausted:
            break
    return ShrinkResult(
        problem=current,
        size_before=size_before,
        size_after=current_size,
        steps=steps,
        checks=checks,
        exhausted=exhausted,
    )


# ----------------------------------------------------------------------
# Candidate generation (deterministic order, most aggressive first).
#
# These reductions intentionally mirror the structural edits in
# repro.fuzz.mutators, but with a different contract: the mutator draws
# ONE random edit, the shrinker enumerates EVERY edit in a fixed,
# aggressiveness-ordered sequence.  When changing an edit's semantics
# (leaf-replacement arity rules, agent-drop connectivity handling),
# update both modules.
# ----------------------------------------------------------------------


def _candidates(problem: Problem) -> Iterator[tuple[str, Problem]]:
    if isinstance(problem, FormulaProblem):
        yield from _formula_candidates(problem)
    elif isinstance(problem, ProtocolProblem):
        yield from _protocol_candidates(problem)


def _decode_formula(tree: dict, bounds: dict) -> Problem | None:
    try:
        return codec.problem_from_json(
            {"kind": "formula", "formula": tree, "bounds": bounds})
    except CodecError:
        return None


def _formula_candidates(problem: FormulaProblem
                        ) -> Iterator[tuple[str, Problem]]:
    payload = codec.problem_to_json(problem)
    tree = payload["formula"]
    bounds = payload["bounds"]

    def emit(label: str, new_tree: dict,
             new_bounds: dict) -> Iterator[tuple[str, Problem]]:
        candidate = _decode_formula(new_tree, new_bounds)
        if candidate is not None:
            yield label, candidate

    # 1. Collapse the whole formula to a constant.
    for const in ({"f": "true"}, {"f": "false"}):
        yield from emit(f"root->{const['f']}", const, bounds)

    subtrees = list(codec.iter_subtrees(tree))

    # 2. Hoist any closed proper subformula to the root (big cuts first:
    #    pre-order puts shallow subtrees before deep ones).
    for path, node in subtrees:
        if path and "f" in node and not codec.has_unbound_vars(node):
            yield from emit("hoist", node, bounds)

    # 3. Drop one part of each conjunction/disjunction.
    for path, node in subtrees:
        if node.get("f") in ("and", "or") and len(node["parts"]) >= 2:
            for index in range(len(node["parts"])):
                parts = list(node["parts"])
                parts.pop(index)
                new_tree = codec.replace_at(
                    tree, path, {"f": node["f"], "parts": parts})
                yield from emit("drop-part", new_tree, bounds)

    # 4. Replace subformulas with constants.
    for path, node in subtrees:
        if path and "f" in node and node["f"] not in ("true", "false"):
            for const in ({"f": "true"}, {"f": "false"}):
                new_tree = codec.replace_at(tree, path, const)
                yield from emit(f"formula->{const['f']}", new_tree, bounds)

    # 5. Unwrap negations.
    for path, node in subtrees:
        if node.get("f") == "not":
            new_tree = codec.replace_at(tree, path, node["inner"])
            yield from emit("unwrap-not", new_tree, bounds)

    # 6. Replace composite expressions with same-arity leaves.
    for path, node in subtrees:
        if "e" in node and node["e"] not in ("rel", "var", "univ", "iden",
                                             "none"):
            try:
                arity = codec.tree_arity(node)
            except CodecError:
                continue
            leaves = [{"e": "rel", "name": entry["name"], "arity": arity}
                      for entry in bounds["relations"]
                      if entry["arity"] == arity]
            leaves.append({"e": "none", "arity": arity})
            for leaf in leaves[:2]:
                new_tree = codec.replace_at(tree, path, leaf)
                yield from emit("expr->leaf", new_tree, bounds)

    # 7. Drop unused relations from the bounds entirely.
    used = {
        (node["name"], node["arity"])
        for _, node in subtrees if node.get("e") == "rel"
    }
    for index, entry in enumerate(bounds["relations"]):
        if (entry["name"], entry["arity"]) not in used and entry["upper"]:
            new_bounds = json.loads(json.dumps(bounds))
            new_bounds["relations"][index]["lower"] = []
            new_bounds["relations"][index]["upper"] = []
            yield from emit("clear-unused-relation", tree, new_bounds)

    # 8. Drop the last atom of the universe.
    if len(bounds["universe"]) >= 2:
        dropped = bounds["universe"][-1]
        new_bounds = json.loads(json.dumps(bounds))
        new_bounds["universe"] = bounds["universe"][:-1]
        for entry in new_bounds["relations"]:
            entry["lower"] = [t for t in entry["lower"] if dropped not in t]
            entry["upper"] = [t for t in entry["upper"] if dropped not in t]
        yield from emit("drop-atom", tree, new_bounds)

    # 9. Drop individual free tuples from upper bounds.
    for index, entry in enumerate(bounds["relations"]):
        for tup in entry["upper"]:
            if tup in entry["lower"]:
                continue
            new_bounds = json.loads(json.dumps(bounds))
            new_entry = new_bounds["relations"][index]
            new_entry["upper"] = [t for t in new_entry["upper"] if t != tup]
            yield from emit("drop-tuple", tree, new_bounds)


def _protocol_candidates(problem: ProtocolProblem
                         ) -> Iterator[tuple[str, Problem]]:
    agents = problem.network.agents()

    # 1. Drop each agent (skip candidates that disconnect the network).
    if len(agents) > 1:
        for victim in agents:
            survivors = [a for a in agents if a != victim]
            edges = [e for e in problem.network.edges() if victim not in e]
            try:
                network = AgentNetwork(edges, nodes=survivors)
                policies = {a: p for a, p in problem.policies.items()
                            if a != victim}
                yield "drop-agent", ProtocolProblem(
                    network, problem.items, policies)
            except ValueError:
                continue

    # 2. Drop each item.
    for victim in problem.items:
        items = tuple(i for i in problem.items if i != victim)
        yield "drop-item", ProtocolProblem(
            problem.network, items, problem.policies)
