"""Structural mutations and coverage signals: corpus evolution.

The fuzz loop is coverage-guided: inputs that light up behaviour nobody
has seen yet (a new gate-histogram bucket, a new solver-restart bucket, a
new explorer-path bucket) enter the corpus, and later generations *mutate*
corpus members instead of always drawing fresh random inputs.  Mutations
are structural and small — swap one operator, drop one conjunct, remove
one agent — so a mutant explores the immediate neighbourhood of an input
that already proved interesting.

Mutations operate on the portable trees of :mod:`repro.fuzz.codec` (for
formula problems) or directly on the protocol components, and every mutant
is validated by decoding back into a real :mod:`repro.api` problem — a
mutation that produces an ill-formed tree is discarded, never shipped to
an oracle.
"""

from __future__ import annotations

import json
import random

from repro.api.problems import (
    FormulaProblem,
    ModuleProblem,
    Problem,
    ProtocolProblem,
)
from repro.fuzz import codec
from repro.fuzz.codec import CodecError
from repro.mca.network import AgentNetwork

FORMULA_MUTATIONS = (
    "swap_operator",
    "drop_part",
    "negate",
    "hoist_subformula",
    "replace_expr_with_leaf",
    "replace_formula_with_const",
    "drop_free_tuple",
    "promote_lower_tuple",
    "drop_atom",
)

PROTOCOL_MUTATIONS = (
    "drop_agent",
    "drop_item",
    "lower_target",
    "perturb_bids",
)

# Operator swap partners: structurally compatible tags only.
_SWAPS = {
    "and": ("or",),
    "or": ("and",),
    "union": ("inter", "diff"),
    "inter": ("union", "diff"),
    "diff": ("union", "inter"),
    "some": ("no", "one", "lone"),
    "no": ("some", "one", "lone"),
    "one": ("some", "no", "lone"),
    "lone": ("some", "no", "one"),
    "subset": ("equal",),
    "equal": ("subset",),
    "forall": ("exists",),
    "exists": ("forall",),
    "card_eq": ("card_ge",),
    "card_ge": ("card_eq",),
    "transpose": ("closure",),
    "closure": ("transpose",),
}


def mutate_problem(problem: Problem,
                   rng: random.Random) -> tuple[Problem, str] | None:
    """One random structural mutation of a problem.

    Returns ``(mutant, mutation name)``, or ``None`` when no applicable
    mutation produced a well-formed mutant after a bounded number of
    draws.  Module problems are not mutated directly — the runner lowers
    them to their compiled formula first (see
    :func:`repro.fuzz.runner.lift_module`).
    """
    if isinstance(problem, ModuleProblem):
        return None
    if isinstance(problem, ProtocolProblem):
        pool = list(PROTOCOL_MUTATIONS)
        apply = _apply_protocol_mutation
    else:
        pool = list(FORMULA_MUTATIONS)
        apply = _apply_formula_mutation
    for _ in range(8):
        name = pool[rng.randrange(len(pool))]
        try:
            mutant = apply(problem, name, rng)
        except (CodecError, ValueError, KeyError):
            mutant = None
        if mutant is not None:
            return mutant, name
    return None


# ----------------------------------------------------------------------
# Formula mutations (on codec trees)
# ----------------------------------------------------------------------


def _apply_formula_mutation(problem: FormulaProblem, name: str,
                            rng: random.Random) -> FormulaProblem | None:
    payload = codec.problem_to_json(problem)
    tree = payload["formula"]
    bounds = payload["bounds"]

    if name == "swap_operator":
        candidates = [
            (path, node) for path, node in codec.iter_subtrees(tree)
            if (node.get("f") or node.get("e")) in _SWAPS
        ]
        if not candidates:
            return None
        path, node = candidates[rng.randrange(len(candidates))]
        tag_key = "f" if "f" in node else "e"
        partners = _SWAPS[node[tag_key]]
        swapped = dict(node)
        swapped[tag_key] = partners[rng.randrange(len(partners))]
        new_tree = codec.replace_at(tree, path, swapped)

    elif name == "drop_part":
        candidates = [
            (path, node) for path, node in codec.iter_subtrees(tree)
            if node.get("f") in ("and", "or") and len(node["parts"]) >= 2
        ]
        if not candidates:
            return None
        path, node = candidates[rng.randrange(len(candidates))]
        parts = list(node["parts"])
        parts.pop(rng.randrange(len(parts)))
        new_tree = codec.replace_at(
            tree, path, {"f": node["f"], "parts": parts})

    elif name == "negate":
        candidates = [(path, node) for path, node in codec.iter_subtrees(tree)
                      if "f" in node]
        path, node = candidates[rng.randrange(len(candidates))]
        if node.get("f") == "not":
            new_tree = codec.replace_at(tree, path, node["inner"])
        else:
            new_tree = codec.replace_at(tree, path, {"f": "not", "inner": node})

    elif name == "hoist_subformula":
        candidates = [
            node for path, node in codec.iter_subtrees(tree)
            if path and "f" in node and not codec.has_unbound_vars(node)
        ]
        if not candidates:
            return None
        new_tree = candidates[rng.randrange(len(candidates))]

    elif name == "replace_expr_with_leaf":
        candidates = [
            (path, node) for path, node in codec.iter_subtrees(tree)
            if "e" in node and node["e"] not in ("rel", "var", "univ", "iden",
                                                 "none")
        ]
        if not candidates:
            return None
        path, node = candidates[rng.randrange(len(candidates))]
        arity = codec.tree_arity(node)
        rels = [entry for entry in bounds["relations"]
                if entry["arity"] == arity]
        leaf = ({"e": "rel", "name": rels[0]["name"], "arity": arity}
                if rels else {"e": "none", "arity": arity})
        new_tree = codec.replace_at(tree, path, leaf)

    elif name == "replace_formula_with_const":
        candidates = [(path, node) for path, node in codec.iter_subtrees(tree)
                      if "f" in node]
        path, _node = candidates[rng.randrange(len(candidates))]
        const = {"f": "true"} if rng.random() < 0.5 else {"f": "false"}
        new_tree = codec.replace_at(tree, path, const)

    elif name in ("drop_free_tuple", "promote_lower_tuple"):
        free = [
            (index, tup) for index, entry in enumerate(bounds["relations"])
            for tup in entry["upper"] if tup not in entry["lower"]
        ]
        if not free:
            return None
        index, tup = free[rng.randrange(len(free))]
        bounds = json.loads(json.dumps(bounds))
        entry = bounds["relations"][index]
        if name == "drop_free_tuple":
            entry["upper"] = [t for t in entry["upper"] if t != tup]
        else:
            entry["lower"] = sorted(entry["lower"] + [tup])
        new_tree = tree

    elif name == "drop_atom":
        atoms = bounds["universe"]
        if len(atoms) < 2:
            return None
        dropped = atoms[-1]
        bounds = json.loads(json.dumps(bounds))
        bounds["universe"] = atoms[:-1]
        for entry in bounds["relations"]:
            entry["lower"] = [t for t in entry["lower"] if dropped not in t]
            entry["upper"] = [t for t in entry["upper"] if dropped not in t]
        new_tree = tree

    else:  # pragma: no cover - guarded by FORMULA_MUTATIONS
        raise ValueError(f"unknown formula mutation {name!r}")

    mutant = codec.problem_from_json(
        {"kind": "formula", "formula": new_tree, "bounds": bounds})
    return mutant


# ----------------------------------------------------------------------
# Protocol mutations (on the components directly)
# ----------------------------------------------------------------------


def _apply_protocol_mutation(problem: ProtocolProblem, name: str,
                             rng: random.Random) -> ProtocolProblem | None:
    agents = problem.network.agents()

    if name == "drop_agent":
        if len(agents) <= 2:
            return None
        victim = agents[rng.randrange(len(agents))]
        survivors = [a for a in agents if a != victim]
        edges = [e for e in problem.network.edges() if victim not in e]
        # AgentNetwork validates connectivity; a disconnecting drop raises
        # and the caller retries with another mutation.
        network = AgentNetwork(edges, nodes=survivors)
        policies = {a: p for a, p in problem.policies.items() if a != victim}
        return ProtocolProblem(network, problem.items, policies)

    if name == "drop_item":
        if not problem.items:
            return None
        victim = problem.items[rng.randrange(len(problem.items))]
        items = tuple(i for i in problem.items if i != victim)
        return ProtocolProblem(problem.network, items, problem.policies)

    if name == "lower_target":
        candidates = [a for a in agents if problem.policies[a].target > 1]
        if not candidates:
            return None
        victim = candidates[rng.randrange(len(candidates))]
        policies = dict(problem.policies)
        old = policies[victim]
        policies[victim] = type(old)(
            utility=old.utility, target=old.target - 1,
            release_outbid=old.release_outbid, rebid=old.rebid)
        return ProtocolProblem(problem.network, problem.items, policies)

    if name == "perturb_bids":
        # Re-encode through the codec (probing utilities into explicit
        # tables) and scale one agent's whole table: order-preserving, so
        # the sub-modular shape — and oracle applicability — survives.
        payload = codec.problem_to_json(problem)
        keys = sorted(payload["policies"])
        victim = keys[rng.randrange(len(keys))]
        factor = rng.choice([0.5, 0.9, 1.1, 2.0])
        entry = payload["policies"][victim]
        entry["table"] = [
            [item, size, round(value * factor, 6)]
            for item, size, value in entry["table"]
        ]
        return codec.problem_from_json(payload)

    raise ValueError(f"unknown protocol mutation {name!r}")  # pragma: no cover


# ----------------------------------------------------------------------
# Coverage signals
# ----------------------------------------------------------------------


def coverage_signature(oracle: str, detail: dict) -> tuple[str, ...]:
    """Cheap behavioural signature of one oracle run.

    Every numeric field of the oracle's detail dict (gate counts, clause
    counts, solver conflict/restart totals, explorer path counts, ...)
    is collapsed into its power-of-two bucket; booleans and short strings
    pass through.  Two runs with the same signature exercised the stack
    in roughly the same way; a run producing any *new* signature element
    earns its input a corpus slot.
    """
    points: list[str] = []
    for key in sorted(detail):
        value = detail[key]
        if isinstance(value, bool):
            points.append(f"{oracle}:{key}={value}")
        elif isinstance(value, (int, float)):
            magnitude = int(abs(value))
            points.append(f"{oracle}:{key}~{magnitude.bit_length()}")
        elif isinstance(value, str) and len(value) <= 32:
            points.append(f"{oracle}:{key}={value}")
        elif isinstance(value, dict):
            for sub_key in sorted(value):
                sub = value[sub_key]
                if isinstance(sub, (int, float)) and not isinstance(sub, bool):
                    magnitude = int(abs(sub))
                    points.append(
                        f"{oracle}:{key}.{sub_key}~{magnitude.bit_length()}")
    return tuple(points)
