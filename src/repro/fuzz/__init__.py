"""Coverage-guided differential fuzzing with counterexample shrinking.

The fuzz subsystem invents adversarial inputs for every
:mod:`repro.api` problem kind, checks each one through the stack's
differential oracles, evolves a corpus by structural mutation under
cheap coverage signals, and minimizes any disagreeing or crashing input
into a human-readable reproducer.  ``python -m repro.fuzz`` runs a
sweep; see the README's "Fuzzing & shrinking" section.
"""

from repro.fuzz.codec import (
    problem_from_json,
    problem_to_json,
    problem_to_script,
)
from repro.fuzz.faults import FAULTS, fault_matches, register_fault
from repro.fuzz.generators import (
    FEATURE_POOLS,
    KINDS,
    FuzzSpec,
    generate,
    swarm_mask,
)
from repro.fuzz.mutators import coverage_signature, mutate_problem
from repro.fuzz.runner import (
    FUZZ_ORACLES,
    Disagreement,
    FuzzCheck,
    FuzzReport,
    lift_module,
    oracles_for_problem,
    replay_corpus,
    run_fuzz,
    run_oracle,
)
from repro.fuzz.shrink import ShrinkResult, problem_size, shrink

__all__ = [
    "FAULTS",
    "FEATURE_POOLS",
    "FUZZ_ORACLES",
    "Disagreement",
    "FuzzCheck",
    "FuzzReport",
    "FuzzSpec",
    "KINDS",
    "ShrinkResult",
    "coverage_signature",
    "fault_matches",
    "generate",
    "lift_module",
    "mutate_problem",
    "oracles_for_problem",
    "problem_from_json",
    "problem_size",
    "problem_to_json",
    "problem_to_script",
    "register_fault",
    "replay_corpus",
    "run_fuzz",
    "run_oracle",
    "shrink",
    "swarm_mask",
]
