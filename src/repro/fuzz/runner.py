"""The coverage-guided differential fuzz loop.

Generation 0 draws fresh random inputs (seeded swarm specs); every input
is checked through each applicable differential oracle; inputs whose runs
produce coverage nobody has seen yet enter the corpus; later generations
mutate corpus members as well as drawing fresh inputs.  Checks fan out
over the campaign runner's generic process pool
(:func:`repro.campaign.runner.map_jobs`) and reuse its content-addressed
on-disk cache format, so a warm re-run of the same seeded sweep is pure
cache reads.

The oracles are the campaign's own differential checks, re-hosted on
façade problems, plus a CNF-encoding differential unique to the fuzzer:

==============  ========================================================
oracle          checks
==============  ========================================================
``encodings``   Plaisted-Greenbaum vs Tseitin vs DIMACS round-trip solve
``symmetry``    solve with lex-leader SBP vs ``symmetry=0``
``session``     incremental enumeration vs a fresh solver per model
``explorer``    memoized schedule exploration vs plain DFS
``engines``     synchronous vs asynchronous (fifo + random) convergence
``delta``       ``solve_delta`` on a mutated problem vs fresh solve
==============  ========================================================

Any disagreeing or crashing input is handed to the shrinker
(:mod:`repro.fuzz.shrink`) and re-emitted as a minimal corpus entry plus
a self-contained repro script.  ``python -m repro.fuzz`` is the CLI.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import re
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.api.problems import (
    FormulaProblem,
    ModuleProblem,
    Problem,
    ProtocolProblem,
)
from repro.campaign.oracles import ORACLES, OracleOutcome
from repro.campaign.runner import ResultCache, map_jobs
from repro.campaign.specs import (
    AuctionScenario,
    RelationalProblem,
    ScenarioSpec,
)
from repro.fuzz import codec
from repro.fuzz.faults import FAULTS, fault_matches
from repro.fuzz.generators import KINDS, FuzzSpec, generate
from repro.fuzz.mutators import coverage_signature, mutate_problem
from repro.fuzz.shrink import ShrinkResult, problem_size, shrink
from repro.kodkod import ast

FUZZ_SCHEMA = 3
"""Bump to invalidate every cached fuzz result (semantic change).

2: encodings oracle grew the vector-kernel arm (and the env-gated
   external-solver arm), changing detail keys and coverage signatures.
3: delta oracle added (solve_delta vs fresh solve), changing the task
   stream, coverage signatures and corpus evolution of every sweep."""

DEFAULT_CACHE_DIR = ".fuzz_cache"
DEFAULT_ARTIFACTS_DIR = ".fuzz_artifacts"

_SESSION_FREE_TUPLE_CAP = 6
"""Session oracle gate: the fresh-solver reference path rebuilds a whole
translation and solver per model, so the model space is capped at 2^6."""

_EXPLORER_AGENT_CAP = 3
_EXPLORER_ITEM_CAP = 2
"""Explorer oracle gates: schedule exploration is factorial in both."""

_GENERATION_SIZE = 12
"""Oracle checks per generation (shard-independent; see run_fuzz)."""


# ----------------------------------------------------------------------
# Oracles over façade problems
# ----------------------------------------------------------------------


def lift_module(problem: ModuleProblem) -> FormulaProblem:
    """Lower a module problem to its compiled goal formula + bounds.

    Mirrors the kodkod backend's goal construction: ``run`` conjoins the
    facts with the optional predicate, ``check`` conjoins the facts with
    the negated assertion.  The lifted problem exercises the alloylite
    compilation layer while letting every formula-level oracle apply.
    """
    from repro.alloylite.module import Scope

    scope = problem.scope or Scope()
    _, bounds, facts = problem.module.compile(scope)
    if problem.command == "check":
        goal: ast.Formula = ast.And([facts, ast.Not(problem.goal)])
    elif problem.goal is not None:
        goal = ast.And([facts, problem.goal])
    else:
        goal = facts
    return FormulaProblem(goal, bounds)


@dataclass(frozen=True)
class FuzzOracle:
    """A differential oracle over one problem kind, with a size gate.

    ``problem_type`` is anything :func:`isinstance` accepts — a single
    problem class or a tuple of them (the ``delta`` oracle spans both
    formula and protocol problems).
    """

    name: str
    problem_type: type | tuple[type, ...]
    run: Callable[[Problem, int], OracleOutcome]
    gate: Callable[[Problem], bool]
    description: str = ""

    def applicable(self, problem: Problem) -> bool:
        """Whether this oracle can check the problem at its size."""
        return isinstance(problem, self.problem_type) and self.gate(problem)


def _encodings_oracle(problem: FormulaProblem, seed: int) -> OracleOutcome:
    """PG vs Tseitin vs DIMACS-round-trip vs vector kernel: one verdict.

    When ``REPRO_EXTERNAL_SOLVER`` names a SAT-competition-conformant
    binary, the PG CNF is additionally round-tripped through it as a
    fifth arm (the nightly CI job runs with picosat).  A value carrying
    the ``dimacs-inc:`` prefix routes that arm through the persistent
    incremental protocol instead (spawn once, stream the CNF over
    stdin), exercising the same path enumeration uses.
    """
    from repro.kodkod.translate import Translator
    from repro.sat import dimacs
    from repro.sat.solver import Solver
    from repro.sat.types import Status

    def decide(encoding: str, kernel: str = "pure"):
        translation = Translator(
            problem.bounds, cnf_encoding=encoding).translate(problem.formula)
        solver = Solver(kernel=kernel)
        loaded = solver.add_cnf(translation.cnf)
        status = solver.solve() if loaded else Status.UNSAT
        return translation, status is Status.SAT, solver.stats

    pg, pg_sat, pg_stats = decide("pg")
    _, tseitin_sat, _ = decide("tseitin")
    # The vector propagation kernel must preserve the verdict (it is
    # search-trajectory identical to the pure loop; without numpy it
    # falls back to "pure" and the arm degenerates to a re-run).
    _, vector_sat, _ = decide("pg", kernel="vector")
    # The DIMACS export path (used by repro scripts and the external
    # cross-checking CLI) must also preserve the verdict — this is the
    # round trip that hits the trivially-true/false translation edges.
    back = dimacs.loads(pg.to_dimacs())
    solver = Solver()
    loaded = solver.add_cnf(back)
    roundtrip_sat = (solver.solve() if loaded else Status.UNSAT) is Status.SAT
    external_command = os.environ.get("REPRO_EXTERNAL_SOLVER")
    external_sat = None
    if external_command:
        from repro.sat.external import ExternalSolver, IncrementalExternalSolver

        if external_command.startswith("dimacs-inc:"):
            inc_command = external_command[len("dimacs-inc:"):].strip()
            with IncrementalExternalSolver(inc_command, timeout=60) as inc:
                inc.load_cnf(pg.cnf)
                run = inc.solve()
        else:
            run = ExternalSolver(external_command, timeout=60).solve_cnf(pg.cnf)
        external_sat = run.status is Status.SAT
    agree = (pg_sat == tseitin_sat == roundtrip_sat == vector_sat
             and (external_sat is None or external_sat == pg_sat))
    detail_external = (
        {} if external_sat is None else {"sat_external": external_sat})
    return OracleOutcome(
        oracle="encodings",
        agree=agree,
        detail={
            "sat_pg": pg_sat,
            "sat_tseitin": tseitin_sat,
            "sat_dimacs_roundtrip": roundtrip_sat,
            "sat_vector_kernel": vector_sat,
            **detail_external,
            "pg_clauses": pg.stats.num_clauses,
            "clauses_saved_by_polarity": pg.stats.num_clauses_saved_by_polarity,
            "cnf_vars": pg.stats.num_cnf_vars,
            "gates": pg.factory.opcode_histogram(),
            "conflicts": pg_stats["conflicts"],
            "decisions": pg_stats["decisions"],
            "restarts": pg_stats["restarts"],
            "propagations": pg_stats["propagations"],
        },
    )


def _campaign_formula_oracle(name: str):
    def run(problem: FormulaProblem, seed: int) -> OracleOutcome:
        spec = ScenarioSpec.make("relational", seed)
        scenario = RelationalProblem(problem.formula, problem.bounds)
        return ORACLES[name].run(spec, scenario)

    return run


def _campaign_protocol_oracle(name: str):
    def run(problem: ProtocolProblem, seed: int) -> OracleOutcome:
        spec = ScenarioSpec.make("mca", seed)
        scenario = AuctionScenario(
            network=problem.network,
            items=list(problem.items),
            policies=dict(problem.policies),
        )
        return ORACLES[name].run(spec, scenario)

    return run


def _always(problem: Problem) -> bool:
    return True


def _session_gate(problem: FormulaProblem) -> bool:
    return problem.bounds.free_tuple_count() <= _SESSION_FREE_TUPLE_CAP


def _explorer_gate(problem: ProtocolProblem) -> bool:
    return (
        len(problem.network.agents()) <= _EXPLORER_AGENT_CAP
        and len(problem.items) <= _EXPLORER_ITEM_CAP
        and all(p.target <= 2 for p in problem.policies.values())
    )


def _delta_oracle_run(problem: Problem, seed: int) -> OracleOutcome:
    """Dispatch the campaign delta oracle by problem kind."""
    if isinstance(problem, ProtocolProblem):
        return _campaign_protocol_oracle("delta")(problem, seed)
    return _campaign_formula_oracle("delta")(problem, seed)


def _delta_gate(problem: Problem) -> bool:
    # Protocol mutants re-run the (factorial) explorer twice, so they
    # share the explorer's size gate; formula problems are always cheap.
    if isinstance(problem, ProtocolProblem):
        return _explorer_gate(problem)
    return True


FUZZ_ORACLES: dict[str, FuzzOracle] = {
    "encodings": FuzzOracle(
        "encodings", FormulaProblem, _encodings_oracle, _always,
        "PG vs Tseitin vs DIMACS round-trip: same verdict"),
    "symmetry": FuzzOracle(
        "symmetry", FormulaProblem, _campaign_formula_oracle("symmetry"),
        _always, "solve with lex-leader SBP vs solve(symmetry=0)"),
    "session": FuzzOracle(
        "session", FormulaProblem, _campaign_formula_oracle("enumeration"),
        _session_gate, "incremental enumeration vs fresh solver per model"),
    "explorer": FuzzOracle(
        "explorer", ProtocolProblem, _campaign_protocol_oracle("explorer"),
        _explorer_gate, "memoized schedule exploration vs plain DFS"),
    "engines": FuzzOracle(
        "engines", ProtocolProblem, _campaign_protocol_oracle("engines"),
        _always, "synchronous vs asynchronous convergence + consensus"),
    "delta": FuzzOracle(
        "delta", (FormulaProblem, ProtocolProblem), _delta_oracle_run,
        _delta_gate, "solve_delta on a mutated problem vs fresh solve"),
}


def oracles_for_problem(problem: Problem) -> list[str]:
    """Names of every oracle applicable to a problem (modules are lifted)."""
    if isinstance(problem, ModuleProblem):
        problem = lift_module(problem)
    return sorted(
        name for name, oracle in FUZZ_ORACLES.items()
        if oracle.applicable(problem)
    )


def run_oracle(name: str, problem: Problem, seed: int = 0,
               fault: str | None = None) -> OracleOutcome:
    """Run one named oracle on one problem (the repro scripts' entry point).

    Module problems are lowered first.  With ``fault`` armed (test-only),
    the outcome of a matching problem is forced to a disagreement.
    """
    try:
        oracle = FUZZ_ORACLES[name]
    except KeyError:
        raise ValueError(
            f"unknown fuzz oracle {name!r}; known: {sorted(FUZZ_ORACLES)}"
        ) from None
    if isinstance(problem, ModuleProblem):
        problem = lift_module(problem)
    if not isinstance(problem, oracle.problem_type):
        accepted = (oracle.problem_type if isinstance(oracle.problem_type, tuple)
                    else (oracle.problem_type,))
        raise ValueError(
            f"oracle {name!r} checks {'/'.join(t.__name__ for t in accepted)}, "
            f"got {type(problem).__name__}"
        )
    outcome = oracle.run(problem, seed)
    if fault is not None and fault_matches(fault, problem):
        outcome = OracleOutcome(
            oracle=outcome.oracle,
            agree=False,
            detail={**outcome.detail, "injected_fault": fault},
        )
    return outcome


# ----------------------------------------------------------------------
# Result records
# ----------------------------------------------------------------------


@dataclass
class FuzzCheck:
    """One (input, oracle) verdict."""

    label: str
    kind: str
    oracle: str
    agree: bool
    detail: dict = field(default_factory=dict)
    coverage: tuple[str, ...] = ()
    seconds: float = 0.0
    cached: bool = False
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the check completed and the oracle agreed."""
        return self.agree and self.error is None

    def to_json(self) -> dict:
        """JSON-able form (cache entry and artifact row)."""
        return {
            "label": self.label,
            "kind": self.kind,
            "oracle": self.oracle,
            "agree": self.agree,
            "detail": self.detail,
            "coverage": list(self.coverage),
            "seconds": self.seconds,
            "cached": self.cached,
            "error": self.error,
        }

    @staticmethod
    def from_json(data: Mapping) -> "FuzzCheck":
        """Inverse of :meth:`to_json`."""
        return FuzzCheck(
            label=data["label"],
            kind=data["kind"],
            oracle=data["oracle"],
            agree=data["agree"],
            detail=dict(data.get("detail", {})),
            coverage=tuple(data.get("coverage", ())),
            seconds=data.get("seconds", 0.0),
            cached=data.get("cached", False),
            error=data.get("error"),
        )


@dataclass
class Disagreement:
    """A caught failure, with its shrunk reproducer."""

    label: str
    kind: str
    oracle: str
    fault: str | None
    problem: dict
    """Codec payload of the original failing problem."""
    shrunk: dict
    """Codec payload of the minimized problem."""
    size_before: int
    size_after: int
    steps: list
    shrink_checks: int
    error: str | None = None
    """Set when the failure was a crash rather than a disagreement."""
    repro_path: str | None = None
    """Where the repro script was written (``artifacts_dir`` runs only)."""

    def to_json(self) -> dict:
        """JSON-able form (artifact row)."""
        return {
            "label": self.label,
            "kind": self.kind,
            "oracle": self.oracle,
            "fault": self.fault,
            "problem": self.problem,
            "shrunk": self.shrunk,
            "size_before": self.size_before,
            "size_after": self.size_after,
            "steps": list(self.steps),
            "shrink_checks": self.shrink_checks,
            "error": self.error,
            "repro_path": self.repro_path,
        }


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzz run."""

    checks: list[FuzzCheck]
    disagreements: list[Disagreement]
    seed: int
    budget: int
    generations: int
    coverage_points: int
    corpus_size: int
    wall_seconds: float
    cache_hits: int
    executed: int
    shards: int

    @property
    def total(self) -> int:
        """Number of oracle checks covered."""
        return len(self.checks)

    @property
    def errors(self) -> list[FuzzCheck]:
        """Checks that crashed or timed out instead of completing."""
        return [c for c in self.checks if c.error is not None]

    @property
    def clean(self) -> bool:
        """True when every check completed and every oracle agreed."""
        return not self.disagreements and not self.errors


# ----------------------------------------------------------------------
# Worker (module-level: picklable for the process pool)
# ----------------------------------------------------------------------


def _task_problem(task: Mapping) -> Problem:
    payload = task["payload"]
    if "spec" in payload:
        return generate(FuzzSpec.from_dict(payload["spec"]))
    return codec.problem_from_json(payload["problem"])


def execute_fuzz_check(task: dict) -> dict:
    """Run one oracle on one fuzz input; always returns a result dict.

    Exceptions are captured into the ``error`` field rather than raised:
    one crashing input must not abort the sweep — it becomes a shrink
    candidate instead.
    """
    started = time.perf_counter()
    try:
        problem = _task_problem(task)
        outcome = run_oracle(task["oracle"], problem, seed=task["seed"],
                             fault=task.get("fault"))
        coverage = coverage_signature(task["oracle"], outcome.detail)
    except Exception:
        return {
            "label": task["label"],
            "kind": task["kind"],
            "oracle": task["oracle"],
            "agree": False,
            "detail": {},
            "coverage": [],
            "seconds": time.perf_counter() - started,
            "cached": False,
            "error": traceback.format_exc(limit=8),
        }
    return {
        "label": task["label"],
        "kind": task["kind"],
        "oracle": task["oracle"],
        "agree": outcome.agree,
        "detail": outcome.detail,
        "coverage": list(coverage),
        "seconds": time.perf_counter() - started,
        "cached": False,
        "error": None,
    }


def fuzz_cache_key(task: Mapping) -> str:
    """Content hash identifying one (input, oracle) check."""
    payload = json.dumps(
        {
            "schema": FUZZ_SCHEMA,
            "input": task["payload"],
            "oracle": task["oracle"],
            "seed": task["seed"],
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


# ----------------------------------------------------------------------
# The generational loop
# ----------------------------------------------------------------------


def _exception_head(trace: str) -> str:
    """The final ``Type: message`` line of a formatted traceback."""
    lines = [line for line in trace.strip().splitlines() if line.strip()]
    return lines[-1].strip() if lines else ""


def _shrink_failure(row: FuzzCheck, task: dict,
                    inject: str | None,
                    max_checks: int) -> tuple[ShrinkResult, Problem]:
    """Build the failure predicate for a row and run the shrinker."""
    problem = _task_problem(task)
    if isinstance(problem, ModuleProblem):
        problem = lift_module(problem)
    oracle = task["oracle"]
    seed = task["seed"]
    if row.error is not None:
        expected = _exception_head(row.error)

        def still_fails(candidate: Problem) -> bool:
            try:
                run_oracle(oracle, candidate, seed=seed, fault=inject)
            except Exception:
                head = _exception_head(traceback.format_exc(limit=8))
                return head == expected
            return False
    else:
        def still_fails(candidate: Problem) -> bool:
            try:
                return not run_oracle(oracle, candidate, seed=seed,
                                      fault=inject).agree
            except Exception:
                return False
    return shrink(problem, still_fails, max_checks=max_checks), problem


def _safe_name(label: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", label)


def run_fuzz(
    seed: int = 0,
    budget: int = 200,
    *,
    kinds: Sequence[str] = KINDS,
    max_size: int = 4,
    shards: int = 1,
    task_timeout: float = 120.0,
    cache_dir: str | Path | None = DEFAULT_CACHE_DIR,
    artifacts_dir: str | Path | None = None,
    inject: str | None = None,
    mutation_rate: float = 0.5,
    max_shrink_checks: int = 150,
    progress: Callable[[FuzzCheck], None] | None = None,
) -> FuzzReport:
    """Run a coverage-guided differential fuzz sweep of ``budget`` checks.

    Deterministic in ``seed`` given the same budget/kinds/size — and
    independent of ``shards``: the same inputs are generated, the same
    corpus evolves, and any failure shrinks to the same reproducer, so a
    CI-found disagreement replays locally at any worker count.
    ``shards`` fans checks out over the
    campaign process pool; ``cache_dir`` enables the content-addressed
    result cache (ignored while a fault is injected, so test runs never
    poison real sweeps).  Disagreeing or crashing inputs are shrunk; with
    ``artifacts_dir`` set, each failure also gets a standalone repro
    script and a corpus-format JSON entry on disk.
    """
    if budget < 1:
        raise ValueError("budget must be positive")
    unknown = sorted(set(kinds) - set(KINDS))
    if unknown:
        raise ValueError(f"unknown kind(s) {unknown}; known kinds: {KINDS}")
    if not kinds:
        raise ValueError("at least one problem kind is required")
    if inject is not None and inject not in FAULTS:
        raise ValueError(
            f"unknown fault {inject!r}; registered faults: {sorted(FAULTS)}"
        )
    started = time.perf_counter()
    rng = random.Random(f"fuzz-run:{seed}")
    cache = (ResultCache(cache_dir)
             if cache_dir is not None and inject is None else None)
    coverage: set[str] = set()
    corpus: list[dict] = []
    corpus_labels: set[str] = set()
    rows: list[FuzzCheck] = []
    failures: list[tuple[FuzzCheck, dict]] = []
    input_counter = 0
    generation = 0
    cache_hits = 0
    executed = 0

    while len(rows) < budget:
        generation += 1
        remaining = budget - len(rows)
        # The generation size is a constant, NOT coupled to the shard
        # count: batch size changes corpus-evolution timing and mutation
        # RNG draws, and the input stream must be identical at any
        # --shards so failures reproduce and caches replay everywhere.
        gen_target = min(remaining, _GENERATION_SIZE)
        tasks: list[dict] = []
        attempts = 0
        while len(tasks) < gen_target and attempts < gen_target * 4:
            attempts += 1
            problem: Problem | None = None
            if corpus and rng.random() < mutation_rate:
                parent = corpus[rng.randrange(len(corpus))]
                try:
                    parent_problem = _task_problem({"payload": parent["payload"]})
                    if isinstance(parent_problem, ModuleProblem):
                        parent_problem = lift_module(parent_problem)
                    mutated = mutate_problem(parent_problem, rng)
                    if mutated is not None:
                        payload = {"problem": codec.problem_to_json(mutated[0])}
                        problem = mutated[0]
                        label = f"{parent['label']}+{mutated[1]}"
                except Exception:
                    problem = None
            if problem is None:
                spec = FuzzSpec.make(
                    kinds[input_counter % len(kinds)],
                    seed * 1_000_003 + input_counter,
                    size=rng.randint(1, max_size),
                )
                input_counter += 1
                try:
                    problem = generate(spec)
                except Exception:
                    continue
                label = spec.label()
                payload = {"spec": spec.as_dict()}
            kind = {
                FormulaProblem: "formula",
                ModuleProblem: "module",
                ProtocolProblem: "protocol",
            }[type(problem)]
            for oracle_name in oracles_for_problem(problem):
                tasks.append({
                    "label": label,
                    "kind": kind,
                    "payload": payload,
                    "oracle": oracle_name,
                    "seed": seed,
                    "fault": inject,
                })
        tasks = tasks[:remaining]
        if not tasks:
            break

        slots: list[FuzzCheck | None] = [None] * len(tasks)
        misses: list[tuple[int, tuple]] = []
        for index, task in enumerate(tasks):
            hit = cache.get(fuzz_cache_key(task)) if cache is not None else None
            # Never serve an error from cache: crashes may be environmental.
            if hit is not None and hit.get("error") is None:
                row = FuzzCheck.from_json(hit)
                row.cached = True
                slots[index] = row
                cache_hits += 1
            else:
                misses.append((index, (task,)))

        def record(index: int, payload_dict: dict) -> None:
            row = FuzzCheck.from_json(payload_dict)
            slots[index] = row
            if cache is not None and row.error is None:
                cache.put(fuzz_cache_key(tasks[index]), payload_dict)

        def failure_payload(index: int, error: str, seconds: float) -> dict:
            task = tasks[index]
            return {
                "label": task["label"],
                "kind": task["kind"],
                "oracle": task["oracle"],
                "agree": False,
                # Pool-level failures (stalls, killed workers) reflect the
                # environment, not the input: the marker keeps them out of
                # the shrink-and-emit pipeline.
                "detail": {"pool_failure": True},
                "coverage": [],
                "seconds": seconds,
                "cached": False,
                "error": error,
            }

        executed += len(misses)
        map_jobs(misses, execute_fuzz_check, record, failure_payload,
                 shards=shards, task_timeout=task_timeout)

        for index, row in enumerate(slots):
            assert row is not None
            rows.append(row)
            if progress:
                progress(row)
            task = tasks[index]
            new_points = set(row.coverage) - coverage
            if new_points:
                coverage.update(new_points)
                if task["label"] not in corpus_labels:
                    corpus_labels.add(task["label"])
                    corpus.append(
                        {"label": task["label"], "payload": task["payload"]})
            if not row.ok:
                failures.append((row, task))

    disagreements = _shrink_and_emit(
        failures, inject, max_shrink_checks, artifacts_dir, seed)
    return FuzzReport(
        checks=rows,
        disagreements=disagreements,
        seed=seed,
        budget=budget,
        generations=generation,
        coverage_points=len(coverage),
        corpus_size=len(corpus),
        wall_seconds=time.perf_counter() - started,
        cache_hits=cache_hits,
        executed=executed,
        shards=max(1, shards),
    )


def _shrink_and_emit(failures: list[tuple[FuzzCheck, dict]],
                     inject: str | None, max_shrink_checks: int,
                     artifacts_dir: str | Path | None,
                     seed: int) -> list[Disagreement]:
    disagreements: list[Disagreement] = []
    seen: set[str] = set()
    for row, task in failures:
        # A pool-level failure (stall, timeout, killed worker) has no
        # reproducible input behaviour to shrink; record it via
        # FuzzReport.errors only.
        if row.detail.get("pool_failure"):
            continue
        try:
            original = _task_problem(task)
            if isinstance(original, ModuleProblem):
                original = lift_module(original)
            original_payload = codec.problem_to_json(original)
        except Exception:
            continue
        dedup = json.dumps(
            {"oracle": task["oracle"], "problem": original_payload},
            sort_keys=True)
        key = hashlib.sha256(dedup.encode()).hexdigest()
        if key in seen:
            continue
        seen.add(key)
        # The key also disambiguates artifact filenames: labels are not
        # unique (two mutants of one parent can share a mutation name).
        artifact_stem = _safe_name(f"{row.label}-{row.oracle}-{key[:8]}")
        try:
            result, _ = _shrink_failure(row, task, inject, max_shrink_checks)
            shrunk_payload = codec.problem_to_json(result.problem)
        except Exception:
            # Shrinking itself failed: report the unshrunk input at its
            # real size (``original`` already round-tripped the codec,
            # so problem_size cannot raise here).
            size = problem_size(original)
            result = ShrinkResult(
                problem=original, size_before=size, size_after=size)
            shrunk_payload = original_payload
        entry = Disagreement(
            label=row.label,
            kind=row.kind,
            oracle=row.oracle,
            fault=inject,
            problem=original_payload,
            shrunk=shrunk_payload,
            size_before=result.size_before,
            size_after=result.size_after,
            steps=[list(step) for step in result.steps],
            shrink_checks=result.checks,
            error=row.error,
        )
        if artifacts_dir is not None:
            entry.repro_path = _write_artifacts(
                entry, artifacts_dir, artifact_stem, seed=seed)
        disagreements.append(entry)
    return disagreements


def _write_artifacts(entry: Disagreement, artifacts_dir: str | Path,
                     stem: str, seed: int) -> str:
    directory = Path(artifacts_dir)
    directory.mkdir(parents=True, exist_ok=True)
    script_path = directory / f"{stem}.repro.py"
    script_path.write_text(
        codec.problem_to_script(
            entry.shrunk, entry.oracle, label=entry.label, seed=seed,
            fault=entry.fault, filename=script_path.name),
        encoding="utf-8",
    )
    corpus_path = directory / f"{stem}.json"
    corpus_path.write_text(
        json.dumps(
            {
                "label": entry.label,
                "note": (f"shrunk from size {entry.size_before} to "
                         f"{entry.size_after}"),
                "oracles": [entry.oracle],
                "payload": {"problem": entry.shrunk},
            },
            sort_keys=True, indent=1,
        ) + "\n",
        encoding="utf-8",
    )
    return str(script_path)


# ----------------------------------------------------------------------
# Corpus replay
# ----------------------------------------------------------------------


def replay_corpus(directory: str | Path, *,
                  inject: str | None = None) -> FuzzReport:
    """Re-check every corpus entry (``*.json``) in a directory, inline.

    Each entry holds a ``payload`` (a generator spec or an explicit
    problem tree) and optionally the ``oracles`` to run; without the
    latter, every applicable oracle runs.  Returns a normal
    :class:`FuzzReport` (no shrinking: corpus entries are already
    minimal).
    """
    directory = Path(directory)
    started = time.perf_counter()
    rows: list[FuzzCheck] = []
    disagreements: list[Disagreement] = []
    coverage: set[str] = set()
    entries = sorted(directory.glob("*.json"))
    if not entries:
        # A typo'd path must fail loudly — an empty replay would let the
        # CI corpus gate go green while enforcing nothing.
        raise ValueError(f"no corpus entries (*.json) found in {directory}")
    for path in entries:
        data = json.loads(path.read_text(encoding="utf-8"))
        label = data.get("label", path.stem)
        payload = data["payload"]
        problem = _task_problem({"payload": payload})
        kind = payload.get("spec", {}).get("kind") or payload["problem"]["kind"]
        oracle_names = data.get("oracles") or oracles_for_problem(problem)
        for oracle_name in oracle_names:
            task = {"label": label, "kind": kind, "payload": payload,
                    "oracle": oracle_name, "seed": data.get("seed", 0),
                    "fault": inject}
            row = FuzzCheck.from_json(execute_fuzz_check(task))
            rows.append(row)
            coverage.update(row.coverage)
            if not row.ok:
                try:
                    original = _task_problem(task)
                    if isinstance(original, ModuleProblem):
                        original = lift_module(original)
                    original_payload = codec.problem_to_json(original)
                    size = problem_size(original)
                except Exception:
                    original_payload, size = {}, 0
                disagreements.append(Disagreement(
                    label=label, kind=kind, oracle=oracle_name, fault=inject,
                    problem=original_payload, shrunk=original_payload,
                    size_before=size, size_after=size, steps=[],
                    shrink_checks=0, error=row.error,
                ))
    return FuzzReport(
        checks=rows,
        disagreements=disagreements,
        seed=0,
        budget=len(rows),
        generations=0,
        coverage_points=len(coverage),
        corpus_size=len(entries),
        wall_seconds=time.perf_counter() - started,
        cache_hits=0,
        executed=len(rows),
        shards=1,
    )
