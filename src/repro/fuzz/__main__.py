"""``python -m repro.fuzz`` — run a coverage-guided differential fuzz sweep.

Generates seeded random problems for every kind, checks each through the
applicable differential oracles (sharded over a process pool, cached),
shrinks any failure into a minimal reproducer, prints the per-oracle
summary table, writes the ``BENCH_fuzz.json`` artifact and exits non-zero
on any disagreement or error.  ``--replay DIR`` re-checks a corpus
directory instead of generating new inputs.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import render_fuzz_table, write_fuzz_json
from repro.fuzz.runner import (
    DEFAULT_ARTIFACTS_DIR,
    DEFAULT_CACHE_DIR,
    replay_corpus,
    run_fuzz,
)
from repro.fuzz.generators import KINDS, MAX_SIZE


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="coverage-guided differential fuzzing with shrinking",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed of the sweep (default: %(default)s)")
    parser.add_argument("--budget", type=int, default=200,
                        help="number of oracle checks to spend "
                             "(default: %(default)s)")
    parser.add_argument("--shards", type=int, default=2,
                        help="worker processes; <=1 runs inline "
                             "(default: %(default)s)")
    parser.add_argument("--max-size", type=int, default=4,
                        choices=range(1, MAX_SIZE + 1),
                        help="largest input size knob (default: %(default)s)")
    parser.add_argument("--kinds", default=",".join(KINDS),
                        help="comma-separated problem kinds "
                             "(default: %(default)s)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="stall timeout in seconds on the sharded path "
                             "(default: %(default)s)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="result cache directory (default: %(default)s)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the result cache entirely")
    parser.add_argument("--artifacts", default=DEFAULT_ARTIFACTS_DIR,
                        help="directory for repro scripts and shrunk corpus "
                             "entries (default: %(default)s)")
    parser.add_argument("--json", default="BENCH_fuzz.json",
                        help="path of the JSON artifact "
                             "(default: %(default)s)")
    parser.add_argument("--inject", metavar="FAULT",
                        help="test-only: arm a registered fault so matching "
                             "inputs disagree (see repro.fuzz.faults)")
    parser.add_argument("--replay", metavar="DIR",
                        help="re-check a corpus directory instead of "
                             "generating new inputs")
    parser.add_argument("--profile", nargs="?", metavar="PATH",
                        const="BENCH_fuzz.profile.txt", default=None,
                        help="run the sweep inline under cProfile and dump "
                             "the top-25 cumulative table to PATH "
                             "(default: %(const)s); forces --shards 1 so "
                             "worker CPU is actually captured")
    args = parser.parse_args(argv)

    profiled = None
    if args.profile:
        from repro.analysis.profiling import run_profiled

        if args.shards > 1 and not args.replay:
            print("profiling runs inline: --shards collapsed to 1 so the "
                  "profiler sees the task CPU", file=sys.stderr)

        def profiled(fn):
            result = run_profiled(fn, args.profile)
            print(f"profile: {args.profile}")
            return result

    if args.replay:
        replay = lambda: replay_corpus(args.replay, inject=args.inject)
        report = profiled(replay) if profiled else replay()
        title = (f"corpus replay: {report.total} checks over "
                 f"{report.corpus_size} entries, "
                 f"{report.wall_seconds:.2f}s wall")
    else:
        kinds = tuple(k for k in args.kinds.split(",") if k)

        def sweep():
            return run_fuzz(
                seed=args.seed,
                budget=args.budget,
                kinds=kinds,
                max_size=args.max_size,
                shards=1 if args.profile else args.shards,
                task_timeout=args.timeout,
                cache_dir=None if args.no_cache else args.cache_dir,
                artifacts_dir=args.artifacts,
                inject=args.inject,
            )

        report = profiled(sweep) if profiled else sweep()
        title = (f"fuzz sweep: {report.total} checks, "
                 f"{report.generations} generation(s), "
                 f"{report.coverage_points} coverage point(s), "
                 f"{report.corpus_size} corpus entries, "
                 f"{report.cache_hits} cache hit(s), "
                 f"{report.wall_seconds:.2f}s wall")

    print(render_fuzz_table(report.checks, title=title))
    write_fuzz_json(report, args.json)
    print(f"artifact: {args.json}")
    for entry in report.disagreements:
        what = "CRASH" if entry.error is not None else "DISAGREEMENT"
        where = f" repro: {entry.repro_path}" if entry.repro_path else ""
        print(
            f"{what}: {entry.label} / {entry.oracle}: shrunk "
            f"{entry.size_before} -> {entry.size_after}{where}",
            file=sys.stderr,
        )
    for err in report.errors:
        head = (err.error or "").strip().splitlines()
        print(f"ERROR: {err.label} / {err.oracle}: "
              f"{head[-1] if head else 'unknown'}", file=sys.stderr)
    return 0 if report.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
