"""Seeded random problem generators: the input side of the fuzz loop.

A :class:`FuzzSpec` is a pure description of one randomized input — a
problem kind, a seed, a size knob and a *feature mask* — and
:func:`generate` is a deterministic function of the spec alone, the same
contract :mod:`repro.campaign.specs` gives the campaign: equal specs
materialize to fingerprint-identical problems in any process, which is
what makes the fuzz result cache sound and every run replayable from its
seed.

The feature mask implements swarm testing: instead of every input drawing
from the full operator pool (which biases the corpus toward homogeneous
mid-size soup), each spec enables a seeded *subset* of the optional
features, so some runs are all quantifiers and closures, others all
cardinalities over partial instances, others pure join chains.  Masks are
recorded in the spec, so a crashing combination is reproducible directly.

Three generators cover the façade's problem union:

* ``formula`` — random relational formulas over random bounds (optionally
  with non-empty lower bounds, i.e. partial instances);
* ``module`` — random alloylite modules (sigs, a field with a random
  multiplicity, random facts) with a ``run`` or ``check`` command;
* ``protocol`` — random auction networks with sub-modular honest policies,
  the regime where the paper guarantees convergence, so the engine
  oracles must agree on every generated instance.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Mapping

from repro.alloylite.module import Module, Scope
from repro.api.problems import (
    FormulaProblem,
    ModuleProblem,
    Problem,
    ProtocolProblem,
)
from repro.kodkod import ast
from repro.kodkod.bounds import Bounds
from repro.kodkod.universe import Universe
from repro.mca.network import AgentNetwork
from repro.mca.policies import AgentPolicy, GeometricUtility, TableUtility

KINDS = ("formula", "module", "protocol")

MAX_SIZE = 6
"""Largest size knob; keeps every oracle's reference path tractable."""

FEATURE_POOLS: dict[str, tuple[str, ...]] = {
    # The baseline (always available) formula language is: relation
    # leaves, Univ, Some/No, Subset/Equal, And/Or.  Everything else is an
    # optional feature the swarm mask can switch off.
    "formula": (
        "union", "intersection", "difference", "join", "product",
        "transpose", "closure", "ifexpr", "comprehension", "quantifier",
        "cardinality", "multiplicity", "negation", "iden", "none_expr",
        "partial_instance",
    ),
    "module": (
        "second_sig", "subsig", "one_sig", "field_one", "field_lone",
        "field_some", "check_command", "quantifier", "negation",
    ),
    "protocol": (
        "ring", "star", "line", "complete", "table_utility", "high_target",
        "dense",
    ),
}


@dataclass(frozen=True)
class FuzzSpec:
    """A reproducible description of one randomized fuzz input.

    ``features`` is the materialized swarm mask, stored sorted so specs
    are hashable and canonically serializable.
    """

    kind: str
    seed: int
    size: int = 3
    features: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown problem kind {self.kind!r}; known kinds: {KINDS}"
            )
        if not 1 <= self.size <= MAX_SIZE:
            raise ValueError(
                f"size must be in 1..{MAX_SIZE}, got {self.size!r}"
            )
        pool = FEATURE_POOLS[self.kind]
        unknown = sorted(set(self.features) - set(pool))
        if unknown:
            raise ValueError(
                f"unknown feature(s) {unknown} for kind {self.kind!r}; "
                f"pool: {pool}"
            )
        object.__setattr__(self, "features", tuple(sorted(self.features)))

    @staticmethod
    def make(kind: str, seed: int, size: int = 3,
             features: tuple[str, ...] | None = None) -> "FuzzSpec":
        """Build a spec; ``features=None`` draws a seeded swarm mask."""
        if features is None:
            features = swarm_mask(kind, seed)
        return FuzzSpec(kind, seed, size, tuple(sorted(features)))

    def has(self, feature: str) -> bool:
        """Whether the mask enables a feature."""
        return feature in self.features

    def as_dict(self) -> dict:
        """JSON-able canonical form (the cache-key payload)."""
        return {
            "kind": self.kind,
            "seed": self.seed,
            "size": self.size,
            "features": list(self.features),
        }

    @staticmethod
    def from_dict(data: Mapping) -> "FuzzSpec":
        """Inverse of :meth:`as_dict` (used by pool workers and the corpus)."""
        return FuzzSpec(data["kind"], data["seed"], data["size"],
                        tuple(data["features"]))

    def content_hash(self) -> str:
        """Stable sha256 over the canonical form (cross-process cache key)."""
        payload = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def label(self) -> str:
        """Short human-readable identifier for tables and artifacts."""
        return f"{self.kind}#{self.seed}s{self.size}"


def swarm_mask(kind: str, seed: int) -> tuple[str, ...]:
    """The seeded swarm feature subset for a (kind, seed) pair.

    Each optional feature is kept with probability 1/2 by a dedicated RNG,
    so the mask is independent of every other draw the generator makes.
    """
    try:
        pool = FEATURE_POOLS[kind]
    except KeyError:
        raise ValueError(
            f"unknown problem kind {kind!r}; known kinds: {KINDS}"
        ) from None
    rng = random.Random(f"swarm:{kind}:{seed}")
    return tuple(sorted(f for f in pool if rng.random() < 0.5))


def generate(spec: FuzzSpec) -> Problem:
    """Deterministically materialize the problem a spec describes."""
    rng = random.Random(f"fuzz:{spec.kind}:{spec.seed}:{spec.size}")
    if spec.kind == "formula":
        return _generate_formula(rng, spec)
    if spec.kind == "module":
        return _generate_module(rng, spec)
    return _generate_protocol(rng, spec)


# ----------------------------------------------------------------------
# Random formulas over random bounds
# ----------------------------------------------------------------------


class _FormulaBuilder:
    """Random formula construction shared by the formula/module generators.

    ``unary``/``binary`` are the relation leaves in play; the feature mask
    gates every optional operator.  Quantified variables are threaded
    through ``env`` so generated variables are always bound.
    """

    def __init__(self, rng: random.Random, spec: FuzzSpec,
                 unary: list[ast.Expr], binary: list[ast.Expr]) -> None:
        self._rng = rng
        self._spec = spec
        self._unary = unary
        self._binary = binary
        self._fresh = 0

    def _choice(self, options: list[str]) -> str:
        return options[self._rng.randrange(len(options))]

    def expr1(self, depth: int, env: list[ast.Variable]) -> ast.Expr:
        """A random unary expression."""
        rng, spec = self._rng, self._spec
        options = ["leaf", "univ"]
        if env:
            options.append("env_var")
        if spec.has("none_expr"):
            options.append("none")
        if depth > 0:
            if spec.has("union"):
                options.append("union")
            if spec.has("intersection"):
                options.append("inter")
            if spec.has("difference"):
                options.append("diff")
            if spec.has("join") and self._binary:
                options.append("join")
            if spec.has("ifexpr"):
                options.append("ite")
            if spec.has("comprehension"):
                options.append("compr")
        kind = self._choice(options)
        if kind == "leaf":
            return rng.choice(self._unary) if self._unary else ast.Univ()
        if kind == "univ":
            return ast.Univ()
        if kind == "env_var":
            return rng.choice(env)
        if kind == "none":
            return ast.NoneExpr(1)
        if kind == "join":
            return ast.Join(self.expr1(depth - 1, env),
                            self.expr2(max(depth - 1, 1), env))
        if kind == "ite":
            return ast.IfExpr(self.formula(0, env),
                              self.expr1(depth - 1, env),
                              self.expr1(depth - 1, env))
        if kind == "compr":
            var = self._fresh_var()
            return ast.Comprehension(
                [(var, ast.Univ())], self.formula(0, env + [var]))
        left = self.expr1(depth - 1, env)
        right = self.expr1(depth - 1, env)
        if kind == "union":
            return ast.Union(left, right)
        if kind == "inter":
            return ast.Intersection(left, right)
        return ast.Difference(left, right)

    def expr2(self, depth: int, env: list[ast.Variable]) -> ast.Expr:
        """A random binary expression."""
        rng, spec = self._rng, self._spec
        options = ["leaf"]
        if spec.has("iden"):
            options.append("iden")
        if spec.has("product"):
            options.append("product")
        if depth > 0:
            if spec.has("transpose"):
                options.append("transpose")
            if spec.has("closure"):
                options.append("closure")
            if spec.has("union"):
                options.append("union")
        kind = self._choice(options)
        if kind == "leaf" and self._binary:
            return rng.choice(self._binary)
        if kind == "iden" or (kind == "leaf" and not self._binary):
            return ast.Iden()
        if kind == "product":
            return ast.Product(self.expr1(0, env), self.expr1(0, env))
        if kind == "transpose":
            return ast.Transpose(self.expr2(depth - 1, env))
        if kind == "closure":
            return ast.Closure(self.expr2(depth - 1, env))
        return ast.Union(self.expr2(depth - 1, env),
                         self.expr2(depth - 1, env))

    def formula(self, depth: int, env: list[ast.Variable]) -> ast.Formula:
        """A random formula."""
        rng, spec = self._rng, self._spec
        options = ["some", "no", "subset", "equal"]
        if spec.has("multiplicity"):
            options += ["one", "lone"]
        if spec.has("cardinality"):
            options += ["card_eq", "card_ge"]
        if depth > 0:
            options += ["and", "or"]
            if spec.has("negation"):
                options.append("not")
            if spec.has("quantifier"):
                options += ["forall", "exists"]
        binary_ops = any(
            spec.has(f) for f in ("transpose", "closure", "iden", "product"))
        kind = self._choice(options)
        if kind in ("some", "no", "one", "lone"):
            cls = {"some": ast.Some, "no": ast.No,
                   "one": ast.One, "lone": ast.Lone}[kind]
            if binary_ops and rng.random() < 0.25:
                return cls(self.expr2(2, env))
            return cls(self.expr1(1, env))
        if kind in ("card_eq", "card_ge"):
            cls = ast.CardinalityEq if kind == "card_eq" else ast.CardinalityGe
            return cls(self.expr1(1, env), rng.randint(0, 3))
        if kind in ("subset", "equal"):
            cls = ast.Subset if kind == "subset" else ast.Equal
            if binary_ops and rng.random() < 0.3:
                return cls(self.expr2(2, env), self.expr2(2, env))
            return cls(self.expr1(1, env), self.expr1(1, env))
        if kind in ("and", "or"):
            parts = [self.formula(depth - 1, env)
                     for _ in range(rng.randint(2, 3))]
            return ast.And(parts) if kind == "and" else ast.Or(parts)
        if kind == "not":
            return ast.Not(self.formula(depth - 1, env))
        var = self._fresh_var()
        domain = (rng.choice(self._unary)
                  if self._unary and rng.random() < 0.5 else ast.Univ())
        body = self.formula(depth - 1, env + [var])
        if kind == "forall":
            return ast.ForAll([(var, domain)], body)
        return ast.Exists([(var, domain)], body)

    def _fresh_var(self) -> ast.Variable:
        self._fresh += 1
        return ast.Variable(f"x{self._fresh}")


def _generate_formula(rng: random.Random, spec: FuzzSpec) -> FormulaProblem:
    num_atoms = min(2 + (spec.size + 1) // 2, 4)
    atoms = [f"a{i}" for i in range(num_atoms)]
    universe = Universe(atoms)
    bounds = Bounds(universe)

    r_un = ast.Relation("r", 1)
    s_un = ast.Relation("s", 1)
    edge = ast.Relation("e", 2)
    partial = spec.has("partial_instance")

    def split(tuples: list[tuple]) -> tuple[list[tuple], list[tuple]]:
        lower = ([t for t in tuples if rng.random() < 0.15]
                 if partial else [])
        return lower, tuples

    for rel in (r_un, s_un):
        lower, upper = split([(a,) for a in atoms])
        bounds.bound(rel, universe.tuple_set(1, lower),
                     universe.tuple_set(1, upper))
    pairs = [(a, b) for a in atoms for b in atoms]
    sampled = rng.sample(pairs, rng.randint(0, min(len(pairs), 2 + spec.size)))
    lower, upper = split(sorted(sampled))
    bounds.bound(edge, universe.tuple_set(2, lower),
                 universe.tuple_set(2, upper))

    builder = _FormulaBuilder(rng, spec, [r_un, s_un], [edge])
    depth = min(1 + (spec.size + 1) // 2, 3)
    return FormulaProblem(builder.formula(depth, []), bounds)


# ----------------------------------------------------------------------
# Random alloylite modules
# ----------------------------------------------------------------------


def _generate_module(rng: random.Random, spec: FuzzSpec) -> ModuleProblem:
    module = Module(f"fuzz{spec.seed}")
    sig_a = module.sig("A")
    unary: list[ast.Expr] = [sig_a.relation]
    binary: list[ast.Expr] = []
    per_sig: dict[str, int] = {}

    if spec.has("second_sig"):
        sig_b = module.sig("B")
        unary.append(sig_b.relation)
    else:
        sig_b = sig_a
    if spec.has("subsig"):
        sub = module.sig("C", parent=sig_a)
        per_sig["C"] = 1
        unary.append(sub.relation)
    if spec.has("one_sig"):
        one = module.sig("O", is_one=True)
        unary.append(one.relation)

    mult = "set"
    for feature, name in (("field_one", "one"), ("field_lone", "lone"),
                          ("field_some", "some")):
        if spec.has(feature):
            mult = name
            break
    field = sig_a.field("f", sig_b, mult=mult)
    binary.append(field.relation)

    # The fact/goal language reuses the formula builder over sig and field
    # relations, with quantifier/negation gated by the module's own mask.
    builder = _FormulaBuilder(rng, spec, list(unary), list(binary))
    depth = min(1 + spec.size // 2, 2)
    for _ in range(rng.randint(1, 2)):
        module.fact(builder.formula(depth, []))

    scope = Scope(default=2 + (1 if spec.size >= 4 else 0), per_sig=per_sig)
    if spec.has("check_command"):
        return ModuleProblem(module, "check", builder.formula(depth, []),
                             scope)
    goal = builder.formula(depth, []) if rng.random() < 0.5 else None
    return ModuleProblem(module, "run", goal, scope)


# ----------------------------------------------------------------------
# Random auction protocols (sub-modular, honest: the convergent regime)
# ----------------------------------------------------------------------


def _generate_protocol(rng: random.Random, spec: FuzzSpec) -> ProtocolProblem:
    num_agents = min(2 + rng.randint(0, max(1, spec.size)), 6)
    num_items = min(1 + rng.randint(0, max(1, spec.size)), 6)
    items = tuple(f"item{i}" for i in range(num_items))

    topologies = ["random"]
    if spec.has("ring") and num_agents >= 3:
        topologies.append("ring")
    if spec.has("star"):
        topologies.append("star")
    if spec.has("line"):
        topologies.append("line")
    if spec.has("complete"):
        topologies.append("complete")
    topology = rng.choice(sorted(topologies))
    if topology == "ring":
        network = AgentNetwork.ring(num_agents)
    elif topology == "star":
        network = AgentNetwork.star(num_agents)
    elif topology == "line":
        network = AgentNetwork.line(num_agents)
    elif topology == "complete":
        network = AgentNetwork.complete(num_agents)
    else:
        network = AgentNetwork.random_connected(
            num_agents,
            extra_edge_prob=0.6 if spec.has("dense") else 0.3,
            seed=rng.randrange(1 << 30),
        )

    target_cap = 3 if spec.has("high_target") else 2
    policies: dict[int, AgentPolicy] = {}
    for agent in range(num_agents):
        target = rng.randint(1, target_cap)
        if spec.has("table_utility"):
            # An explicit table, non-increasing in bundle size: exactly the
            # sub-modular shape Definition 2 requires of size-dependent
            # utilities, so the convergence oracles stay applicable.
            table: dict[tuple[str, int], float] = {}
            for item in items:
                value = round(rng.uniform(5.0, 100.0), 2)
                for size in range(num_items):
                    table[(item, size)] = value
                    value = round(value * rng.uniform(0.3, 0.95), 4)
            policy = AgentPolicy(utility=TableUtility(table), target=target)
        else:
            base = {item: round(rng.uniform(1.0, 100.0), 2) for item in items}
            growth = round(rng.uniform(0.3, 0.9), 2)
            policy = AgentPolicy(
                utility=GeometricUtility(base, growth=growth), target=target)
        policies[agent] = policy
    return ProtocolProblem(network, items, policies)
