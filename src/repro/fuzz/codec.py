"""Portable problem trees: the fuzzer's interchange representation.

Mutation, shrinking, corpus storage and repro-script emission all need to
*rewrite* problems structurally, which the frozen :mod:`repro.api` problem
objects (identity-compared relations, live utility objects) do not support
directly.  This module maps problems onto plain JSON-able trees and back:

* formulas become tagged dict trees (``{"f": "and", "parts": [...]}``),
  with relations referenced by (name, arity) and re-materialized as one
  shared :class:`~repro.kodkod.ast.Relation` instance per name — the
  identity discipline :class:`~repro.kodkod.bounds.Bounds` relies on;
* protocol problems record topology, items and policies, with every
  utility *probed* into an explicit bundle-size table
  (:class:`~repro.mca.policies.TableUtility`), which reproduces the
  generated ``GeometricUtility``/``TableUtility`` behaviours exactly
  (both depend only on bundle size);
* module problems record their declarations (sigs, fields, facts) plus
  the command/goal/scope, and decode to a fingerprint-identical
  :class:`~repro.api.problems.ModuleProblem`; decoded fact and goal
  trees share the rebuilt module's sig/field relation *instances*, the
  identity discipline compilation relies on.  The fuzz loop itself still
  lowers modules to their compiled formula before mutating (see
  :func:`repro.fuzz.runner.lift_module`) — the direct encoding exists so
  wire consumers (the verification service) accept all three kinds.

The trees double as the corpus file format (``tests/fuzz/corpus``), the
payload embedded in emitted repro scripts, and the verification
service's job-submission problem format, so a shrunk counterexample or a
wire job is replayable from the JSON alone.
"""

from __future__ import annotations

import json
from typing import Callable, Iterator

from repro.alloylite.module import Module, Scope
from repro.alloylite.sig import Sig
from repro.api.problems import (
    FormulaProblem,
    ModuleProblem,
    Problem,
    ProtocolProblem,
)
from repro.kodkod import ast
from repro.kodkod.bounds import Bounds
from repro.kodkod.universe import Universe
from repro.mca.network import AgentNetwork
from repro.mca.policies import AgentPolicy, RebidStrategy, TableUtility


class CodecError(ValueError):
    """Raised on trees that do not describe a well-formed problem."""


# ----------------------------------------------------------------------
# Formula <-> tree
# ----------------------------------------------------------------------

_BINARY_EXPRS: dict[str, Callable] = {
    "union": ast.Union,
    "inter": ast.Intersection,
    "diff": ast.Difference,
    "product": ast.Product,
    "join": ast.Join,
}

_UNARY_EXPRS: dict[str, Callable] = {
    "transpose": ast.Transpose,
    "closure": ast.Closure,
}

_CMP_FORMULAS: dict[str, Callable] = {
    "subset": ast.Subset,
    "equal": ast.Equal,
}

_MULT_FORMULAS: dict[str, Callable] = {
    "some": ast.Some,
    "no": ast.No,
    "one": ast.One,
    "lone": ast.Lone,
}

_CARD_FORMULAS: dict[str, Callable] = {
    "card_eq": ast.CardinalityEq,
    "card_ge": ast.CardinalityGe,
}

_NARY_FORMULAS: dict[str, Callable] = {
    "and": ast.And,
    "or": ast.Or,
}

_QUANT_FORMULAS: dict[str, Callable] = {
    "forall": ast.ForAll,
    "exists": ast.Exists,
}


def expr_to_tree(expr: ast.Expr) -> dict:
    """Encode an expression as a tagged JSON-able tree."""
    if isinstance(expr, ast.Relation):
        return {"e": "rel", "name": expr.name, "arity": expr.arity}
    if isinstance(expr, ast.Variable):
        return {"e": "var", "name": expr.name}
    if isinstance(expr, ast.Univ):
        return {"e": "univ"}
    if isinstance(expr, ast.Iden):
        return {"e": "iden"}
    if isinstance(expr, ast.NoneExpr):
        return {"e": "none", "arity": expr.arity}
    for tag, cls in _BINARY_EXPRS.items():
        if type(expr) is cls:
            return {"e": tag, "left": expr_to_tree(expr.left),
                    "right": expr_to_tree(expr.right)}
    for tag, cls in _UNARY_EXPRS.items():
        if type(expr) is cls:
            return {"e": tag, "inner": expr_to_tree(expr.inner)}
    if isinstance(expr, ast.IfExpr):
        return {"e": "ite", "cond": formula_to_tree(expr.cond),
                "then": expr_to_tree(expr.then_expr),
                "else": expr_to_tree(expr.else_expr)}
    if isinstance(expr, ast.Comprehension):
        return {"e": "compr",
                "decls": [[v.name, expr_to_tree(d)] for v, d in expr.decls],
                "body": formula_to_tree(expr.body)}
    raise CodecError(f"cannot encode expression {type(expr).__name__}")


def formula_to_tree(formula: ast.Formula) -> dict:
    """Encode a formula as a tagged JSON-able tree."""
    if isinstance(formula, ast.TrueF):
        return {"f": "true"}
    if isinstance(formula, ast.FalseF):
        return {"f": "false"}
    for tag, cls in _CMP_FORMULAS.items():
        if type(formula) is cls:
            return {"f": tag, "left": expr_to_tree(formula.left),
                    "right": expr_to_tree(formula.right)}
    for tag, cls in _MULT_FORMULAS.items():
        if type(formula) is cls:
            return {"f": tag, "expr": expr_to_tree(formula.expr)}
    for tag, cls in _CARD_FORMULAS.items():
        if type(formula) is cls:
            return {"f": tag, "expr": expr_to_tree(formula.expr),
                    "count": formula.count}
    if isinstance(formula, ast.Not):
        return {"f": "not", "inner": formula_to_tree(formula.inner)}
    for tag, cls in _NARY_FORMULAS.items():
        if type(formula) is cls:
            return {"f": tag,
                    "parts": [formula_to_tree(p) for p in formula.parts]}
    for tag, cls in _QUANT_FORMULAS.items():
        if type(formula) is cls:
            return {"f": tag,
                    "decls": [[v.name, expr_to_tree(d)]
                              for v, d in formula.decls],
                    "body": formula_to_tree(formula.body)}
    raise CodecError(f"cannot encode formula {type(formula).__name__}")


class _Decoder:
    """Rebuilds AST objects with one shared instance per relation/variable."""

    def __init__(self) -> None:
        self._relations: dict[tuple[str, int], ast.Relation] = {}
        self._variables: dict[str, ast.Variable] = {}

    def relation(self, name: str, arity: int) -> ast.Relation:
        key = (name, int(arity))
        if key not in self._relations:
            self._relations[key] = ast.Relation(name, int(arity))
        return self._relations[key]

    def seed_relation(self, relation: ast.Relation) -> None:
        """Pre-register an existing relation instance under its key.

        The module decoder seeds the rebuilt module's sig/field relations
        here, so decoded fact trees reference those exact objects —
        bounds and facts must share relation identity for compilation.
        """
        self._relations[(relation.name, relation.arity)] = relation

    def variable(self, name: str) -> ast.Variable:
        if name not in self._variables:
            self._variables[name] = ast.Variable(name)
        return self._variables[name]

    def expr(self, tree: dict) -> ast.Expr:
        tag = tree.get("e")
        try:
            if tag == "rel":
                return self.relation(tree["name"], tree["arity"])
            if tag == "var":
                return self.variable(tree["name"])
            if tag == "univ":
                return ast.Univ()
            if tag == "iden":
                return ast.Iden()
            if tag == "none":
                return ast.NoneExpr(int(tree["arity"]))
            if tag in _BINARY_EXPRS:
                return _BINARY_EXPRS[tag](self.expr(tree["left"]),
                                          self.expr(tree["right"]))
            if tag in _UNARY_EXPRS:
                return _UNARY_EXPRS[tag](self.expr(tree["inner"]))
            if tag == "ite":
                return ast.IfExpr(self.formula(tree["cond"]),
                                  self.expr(tree["then"]),
                                  self.expr(tree["else"]))
            if tag == "compr":
                decls = [(self.variable(n), self.expr(d))
                         for n, d in tree["decls"]]
                return ast.Comprehension(decls, self.formula(tree["body"]))
        except CodecError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CodecError(f"malformed expression tree {tag!r}: {exc}") from exc
        raise CodecError(f"unknown expression tag {tag!r}")

    def formula(self, tree: dict) -> ast.Formula:
        tag = tree.get("f")
        try:
            if tag == "true":
                return ast.TrueF()
            if tag == "false":
                return ast.FalseF()
            if tag in _CMP_FORMULAS:
                return _CMP_FORMULAS[tag](self.expr(tree["left"]),
                                          self.expr(tree["right"]))
            if tag in _MULT_FORMULAS:
                return _MULT_FORMULAS[tag](self.expr(tree["expr"]))
            if tag in _CARD_FORMULAS:
                return _CARD_FORMULAS[tag](self.expr(tree["expr"]),
                                           int(tree["count"]))
            if tag == "not":
                return ast.Not(self.formula(tree["inner"]))
            if tag in _NARY_FORMULAS:
                parts = [self.formula(p) for p in tree["parts"]]
                if not parts:
                    raise CodecError(f"empty {tag!r} parts")
                return _NARY_FORMULAS[tag](parts)
            if tag in _QUANT_FORMULAS:
                decls = [(self.variable(n), self.expr(d))
                         for n, d in tree["decls"]]
                return _QUANT_FORMULAS[tag](decls, self.formula(tree["body"]))
        except CodecError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CodecError(f"malformed formula tree {tag!r}: {exc}") from exc
        raise CodecError(f"unknown formula tag {tag!r}")


# ----------------------------------------------------------------------
# Tree utilities (shared by the mutators and the shrinker)
# ----------------------------------------------------------------------

_CHILD_FIELDS = ("left", "right", "inner", "expr", "cond", "then", "else",
                 "body", "parts", "decls")

Path = tuple  # sequence of dict keys / list indices into a tree


def iter_subtrees(tree: dict, _path: Path = ()) -> Iterator[tuple[Path, dict]]:
    """Yield every tagged subtree with its path (pre-order, root first)."""
    yield _path, tree
    for key in _CHILD_FIELDS:
        child = tree.get(key)
        if isinstance(child, dict):
            yield from iter_subtrees(child, _path + (key,))
        elif isinstance(child, list):
            for index, item in enumerate(child):
                if isinstance(item, dict):
                    yield from iter_subtrees(item, _path + (key, index))
                elif (isinstance(item, list) and len(item) == 2
                        and isinstance(item[1], dict)):
                    # A [var name, domain tree] declaration pair.
                    yield from iter_subtrees(
                        item[1], _path + (key, index, 1))


def replace_at(tree: dict, path: Path, replacement) -> dict:
    """A deep-copied tree with the subtree at ``path`` swapped out."""
    if not path:
        return replacement
    copied = json.loads(json.dumps(tree))
    cursor = copied
    for key in path[:-1]:
        cursor = cursor[key]
    cursor[path[-1]] = replacement
    return copied


def subtree_at(tree: dict, path: Path) -> dict:
    """The subtree at ``path``."""
    cursor = tree
    for key in path:
        cursor = cursor[key]
    return cursor


def tree_arity(tree: dict) -> int:
    """Arity of an expression tree (mirrors the AST arity rules)."""
    tag = tree.get("e")
    if tag in ("rel", "none"):
        return int(tree["arity"])
    if tag in ("var", "univ"):
        return 1
    if tag in ("iden", "transpose", "closure"):
        return 2
    if tag in ("union", "inter", "diff"):
        return tree_arity(tree["left"])
    if tag == "product":
        return tree_arity(tree["left"]) + tree_arity(tree["right"])
    if tag == "join":
        return tree_arity(tree["left"]) + tree_arity(tree["right"]) - 2
    if tag == "ite":
        return tree_arity(tree["then"])
    if tag == "compr":
        return len(tree["decls"])
    raise CodecError(f"not an expression tree: {tag!r}")


def tree_size(tree: dict) -> int:
    """Number of tagged nodes in a tree (the shrinker's formula metric)."""
    return sum(1 for _ in iter_subtrees(tree))


def has_unbound_vars(tree: dict, _bound: frozenset[str] = frozenset()) -> bool:
    """Whether the tree references a variable no enclosing quantifier binds.

    The shrinker uses this to pre-filter hoisting candidates: a quantifier
    body hoisted above its binder would only fail later, at translation.
    """
    tag = tree.get("e") or tree.get("f")
    if tag == "var":
        return tree["name"] not in _bound
    if tag in ("forall", "exists", "compr"):
        bound = _bound
        for name, domain in tree["decls"]:
            if has_unbound_vars(domain, bound):
                return True
            bound = bound | {name}
        return has_unbound_vars(tree["body"], bound)
    for key in _CHILD_FIELDS:
        child = tree.get(key)
        if isinstance(child, dict):
            if has_unbound_vars(child, _bound):
                return True
        elif isinstance(child, list):
            for item in child:
                if isinstance(item, dict) and has_unbound_vars(item, _bound):
                    return True
    return False


# ----------------------------------------------------------------------
# Problem <-> JSON
# ----------------------------------------------------------------------


def _bounds_to_json(bounds: Bounds) -> dict:
    return {
        "universe": list(bounds.universe.atoms),
        "relations": [
            {
                "name": rel.name,
                "arity": rel.arity,
                "lower": sorted(list(t) for t in bounds.lower(rel)),
                "upper": sorted(list(t) for t in bounds.upper(rel)),
            }
            for rel in sorted(bounds.relations(), key=lambda r: (r.name, r.arity))
        ],
    }


def _bounds_from_json(payload: dict, decoder: _Decoder) -> Bounds:
    try:
        universe = Universe(payload["universe"])
        bounds = Bounds(universe)
        for entry in payload["relations"]:
            rel = decoder.relation(entry["name"], entry["arity"])
            lower = universe.tuple_set(
                rel.arity, [tuple(t) for t in entry["lower"]])
            upper = universe.tuple_set(
                rel.arity, [tuple(t) for t in entry["upper"]])
            bounds.bound(rel, lower, upper)
    except CodecError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"malformed bounds payload: {exc}") from exc
    return bounds


def _probed_table(policy: AgentPolicy, items: tuple) -> list[list]:
    """Probe a policy's utility into an explicit (item, size) table.

    Exact for every utility whose marginal depends only on the bundle
    *size* (the generated ``GeometricUtility``/``TableUtility`` shapes):
    probing with an item-prefix bundle of each size recovers the whole
    function.
    """
    rows = []
    for item in items:
        for size in range(len(items) + 1):
            bundle = list(items[:size])
            if len(bundle) < size:
                break
            value = policy.utility.marginal(item, bundle)
            if value:
                rows.append([item, size, round(float(value), 6)])
    return rows


def _module_to_json(problem: ModuleProblem) -> dict:
    module = problem.module
    if type(module) is not Module:
        # Subclasses (e.g. OrderedModule) may bound extra relations during
        # compile; re-encoding them as a plain declaration list would
        # silently drop that, breaking the fingerprint-preserving
        # guarantee.  Refuse instead.
        raise CodecError(
            f"cannot encode {type(module).__name__}; only plain Module "
            f"declarations have a faithful tree form"
        )
    sigs = []
    fields = []
    for sig in module.sigs:
        sigs.append({
            "name": sig.name,
            "parent": sig.parent.name if sig.parent is not None else None,
            "one": sig.is_one,
            "abstract": sig.abstract,
        })
        for fld in sig.fields:
            columns = []
            for col in fld.columns:
                if not isinstance(col, Sig):
                    raise CodecError(
                        f"cannot encode field {sig.name}.{fld.name}: "
                        f"non-sig column {type(col).__name__}"
                    )
                columns.append(col.name)
            fields.append({
                "owner": sig.name,
                "name": fld.name,
                "columns": columns,
                "mult": fld.mult,
            })
    scope = problem.scope
    return {
        "kind": "module",
        "name": module.name,
        "sigs": sigs,
        "fields": fields,
        "facts": [formula_to_tree(f) for f in module.facts],
        "command": problem.command,
        "goal": (formula_to_tree(problem.goal)
                 if problem.goal is not None else None),
        "scope": ({"default": scope.default,
                   "per_sig": dict(scope.per_sig)}
                  if scope is not None else None),
    }


def _module_from_json(payload: dict) -> ModuleProblem:
    try:
        decoder = _Decoder()
        module = Module(payload.get("name", "module"))
        sig_map: dict[str, Sig] = {}
        for entry in payload["sigs"]:
            parent_name = entry.get("parent")
            if parent_name is not None and parent_name not in sig_map:
                raise CodecError(
                    f"sig {entry['name']!r} extends undeclared sig "
                    f"{parent_name!r} (parents must be declared first)"
                )
            sig = module.sig(
                entry["name"],
                parent=(sig_map[parent_name] if parent_name is not None
                        else None),
                is_one=bool(entry.get("one", False)),
                abstract=bool(entry.get("abstract", False)),
            )
            sig_map[sig.name] = sig
            decoder.seed_relation(sig.relation)
        for entry in payload["fields"]:
            owner = sig_map.get(entry["owner"])
            if owner is None:
                raise CodecError(
                    f"field {entry['name']!r} owned by undeclared sig "
                    f"{entry['owner']!r}"
                )
            try:
                columns = [sig_map[name] for name in entry["columns"]]
            except KeyError as exc:
                raise CodecError(
                    f"field {entry['owner']}.{entry['name']} references "
                    f"undeclared column sig {exc.args[0]!r}"
                ) from exc
            fld = owner.field(entry["name"], *columns, mult=entry["mult"])
            decoder.seed_relation(fld.relation)
        for tree in payload.get("facts", []):
            module.fact(decoder.formula(tree))
        goal_tree = payload.get("goal")
        goal = decoder.formula(goal_tree) if goal_tree is not None else None
        scope_payload = payload.get("scope")
        scope = (Scope(int(scope_payload["default"]),
                       {str(name): int(count) for name, count
                        in scope_payload.get("per_sig", {}).items()})
                 if scope_payload is not None else None)
        return ModuleProblem(module, payload.get("command", "run"), goal,
                             scope)
    except CodecError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"malformed module payload: {exc}") from exc


def problem_to_json(problem: Problem) -> dict:
    """Encode a formula, module or protocol problem as a JSON payload."""
    if isinstance(problem, ModuleProblem):
        return _module_to_json(problem)
    if isinstance(problem, FormulaProblem):
        return {
            "kind": "formula",
            "formula": formula_to_tree(problem.formula),
            "bounds": _bounds_to_json(problem.bounds),
        }
    if isinstance(problem, ProtocolProblem):
        return {
            "kind": "protocol",
            "agents": list(problem.network.agents()),
            "edges": [list(e) for e in problem.network.edges()],
            "items": list(problem.items),
            "policies": {
                str(agent): {
                    "target": policy.target,
                    "release_outbid": policy.release_outbid,
                    "rebid": policy.rebid.value,
                    "table": _probed_table(policy, problem.items),
                }
                for agent, policy in sorted(problem.policies.items())
            },
        }
    raise CodecError(f"cannot encode {type(problem).__name__}")


def problem_from_json(payload: dict) -> Problem:
    """Rebuild a problem from :func:`problem_to_json` output."""
    kind = payload.get("kind")
    if kind == "module":
        return _module_from_json(payload)
    if kind == "formula":
        decoder = _Decoder()
        bounds = _bounds_from_json(payload["bounds"], decoder)
        formula = decoder.formula(payload["formula"])
        try:
            return FormulaProblem(formula, bounds)
        except ValueError as exc:
            raise CodecError(str(exc)) from exc
    if kind == "protocol":
        try:
            network = AgentNetwork(
                (tuple(e) for e in payload["edges"]),
                nodes=payload["agents"],
            )
            items = tuple(payload["items"])
            policies = {}
            for agent, entry in payload["policies"].items():
                table = {
                    (item, int(size)): float(value)
                    for item, size, value in entry["table"]
                }
                policies[int(agent)] = AgentPolicy(
                    utility=TableUtility(table),
                    target=int(entry["target"]),
                    release_outbid=bool(entry.get("release_outbid", False)),
                    rebid=RebidStrategy(entry.get("rebid", "honest")),
                )
            return ProtocolProblem(network, items, policies)
        except CodecError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CodecError(f"malformed protocol payload: {exc}") from exc
    raise CodecError(f"unknown problem kind {kind!r}")


def problem_identity(payload: dict) -> str:
    """Canonical JSON string of a problem payload (cache-key material)."""
    return json.dumps(payload, sort_keys=True)


# ----------------------------------------------------------------------
# Repro-script emission
# ----------------------------------------------------------------------

_SCRIPT_TEMPLATE = '''\
#!/usr/bin/env python
"""Shrunk fuzz reproducer: {label}

Oracle: {oracle}{fault_line}
Run with the repository's ``src`` directory on PYTHONPATH::

    PYTHONPATH=src python {filename}

Exits 0 when the oracle agrees (bug fixed), 1 on disagreement.
"""

import json

from repro.fuzz.codec import problem_from_json
from repro.fuzz.runner import run_oracle

PROBLEM = json.loads(r"""
{problem_json}
""")

problem = problem_from_json(PROBLEM)
outcome = run_oracle({oracle!r}, problem, seed={seed}{fault_arg})
print("oracle:", {oracle!r})
print("agree:", outcome.agree)
for key, value in sorted(outcome.detail.items()):
    print(f"  {{key}}: {{value}}")
raise SystemExit(0 if outcome.agree else 1)
'''


def problem_to_script(payload: dict, oracle: str, *, label: str = "fuzz input",
                      seed: int = 0, fault: str | None = None,
                      filename: str = "repro.py") -> str:
    """A self-contained Python reproducer for one (problem, oracle) pair."""
    return _SCRIPT_TEMPLATE.format(
        label=label,
        oracle=oracle,
        seed=seed,
        fault_line=(f"\nInjected fault (test-only): {fault}" if fault else ""),
        fault_arg=(f", fault={fault!r}" if fault else ""),
        problem_json=json.dumps(payload, sort_keys=True, indent=1),
        filename=filename,
    )
