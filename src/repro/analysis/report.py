"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned monospace table (the benchmark output format)."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
