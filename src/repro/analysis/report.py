"""Plain-text table rendering and campaign aggregation for reports.

Besides the monospace tables the benchmarks print, this module aggregates
campaign sweeps (:mod:`repro.campaign`) into a per-oracle/per-family
summary table and a ``BENCH_*.json``-style artifact, so randomized
regression sweeps land in the same reporting trajectory as the paper's
benchmarks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.campaign.runner import CampaignResult
    from repro.fuzz.runner import FuzzCheck, FuzzReport


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned monospace table (the benchmark output format)."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Campaign aggregation
# ----------------------------------------------------------------------


def _sweep_summary(results: Iterable, group_field: str,
                   count_field: str) -> dict:
    """Aggregate differential-sweep rows per (oracle, ``group_field``) cell.

    Works for any row shape exposing ``oracle``/``error``/``agree``/
    ``cached``/``seconds`` plus the grouping attribute — the common
    contract of campaign results and fuzz checks.
    """
    cells: dict[tuple[str, str], dict] = {}
    totals = {
        count_field: 0,
        "disagreements": 0,
        "errors": 0,
        "cache_hits": 0,
        "executed_seconds": 0.0,
    }
    for result in results:
        group_value = getattr(result, group_field)
        cell = cells.setdefault(
            (result.oracle, group_value),
            {
                "oracle": result.oracle,
                group_field: group_value,
                count_field: 0,
                "disagreements": 0,
                "errors": 0,
                "cache_hits": 0,
                "executed_seconds": 0.0,
            },
        )
        cell[count_field] += 1
        totals[count_field] += 1
        if result.error is not None:
            cell["errors"] += 1
            totals["errors"] += 1
        elif not result.agree:
            cell["disagreements"] += 1
            totals["disagreements"] += 1
        if result.cached:
            cell["cache_hits"] += 1
            totals["cache_hits"] += 1
        else:
            cell["executed_seconds"] += result.seconds
            totals["executed_seconds"] += result.seconds
    totals["executed_seconds"] = round(totals["executed_seconds"], 3)
    ordered = [cells[key] for key in sorted(cells)]
    for cell in ordered:
        cell["executed_seconds"] = round(cell["executed_seconds"], 3)
    return {"cells": ordered, "totals": totals}


def _render_sweep_table(summary: dict, group_field: str, count_field: str,
                        title: str) -> str:
    """Render a :func:`_sweep_summary` as an aligned monospace table."""
    rows = [
        [
            cell["oracle"],
            cell[group_field],
            cell[count_field],
            cell["disagreements"],
            cell["errors"],
            cell["cache_hits"],
            f"{cell['executed_seconds']:.3f}",
        ]
        for cell in summary["cells"]
    ]
    totals = summary["totals"]
    rows.append([
        "TOTAL",
        "-",
        totals[count_field],
        totals["disagreements"],
        totals["errors"],
        totals["cache_hits"],
        f"{totals['executed_seconds']:.3f}",
    ])
    return render_table(
        ["oracle", group_field, count_field, "disagree", "errors", "cached",
         "exec s"],
        rows,
        title=title,
    )


def campaign_summary(results: Iterable["CampaignResult"]) -> dict:
    """Aggregate campaign results per (oracle, family) cell.

    Returns a JSON-able dict with per-cell counts (tasks, disagreements,
    errors, cache hits, executed seconds) plus campaign-wide totals.
    """
    return _sweep_summary(results, "family", "tasks")


def render_campaign_table(results: Iterable["CampaignResult"],
                          title: str = "campaign sweep") -> str:
    """The campaign summary as an aligned monospace table."""
    return _render_sweep_table(campaign_summary(results), "family", "tasks",
                               title)


def fuzz_summary(checks: Iterable["FuzzCheck"]) -> dict:
    """Aggregate fuzz checks per (oracle, kind) cell.

    Same shape as :func:`campaign_summary` (per-cell counts plus totals),
    so the two sweeps land in the same reporting trajectory.
    """
    return _sweep_summary(checks, "kind", "checks")


def render_fuzz_table(checks: Iterable["FuzzCheck"],
                      title: str = "fuzz sweep") -> str:
    """The fuzz summary as an aligned monospace table."""
    return _render_sweep_table(fuzz_summary(checks), "kind", "checks", title)


def write_fuzz_json(report: "FuzzReport", path: str | Path) -> dict:
    """Write the ``BENCH_*.json``-style fuzz artifact; returns it."""
    summary = fuzz_summary(report.checks)
    artifact = {
        "benchmark": "fuzz",
        "seed": report.seed,
        "budget": report.budget,
        "generations": report.generations,
        "coverage_points": report.coverage_points,
        "corpus_size": report.corpus_size,
        "shards": report.shards,
        "cache_hits": report.cache_hits,
        "executed": report.executed,
        "wall_seconds": round(report.wall_seconds, 3),
        "summary": summary,
        "disagreements": [d.to_json() for d in report.disagreements],
        "errors": [c.to_json() for c in report.errors],
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return artifact


def render_service_table(metrics: dict,
                         title: str = "service metrics") -> str:
    """A ``/v1/metrics`` snapshot as an aligned monospace table.

    Takes the plain dict the endpoint (or
    ``VerificationService.metrics_body()``) returns; the latency
    histogram is flattened into one ``bucket=count`` row so the whole
    snapshot reads as a single table.
    """
    jobs = metrics.get("jobs", {})
    histogram = metrics.get("latency_histogram", {})
    rows = [
        ["queue_depth", metrics.get("queue_depth", 0)],
        ["jobs", " ".join(f"{state}={count}"
                          for state, count in sorted(jobs.items()))],
        ["solves", metrics.get("solves", 0)],
        ["cache_hits", metrics.get("cache_hits", 0)],
        ["cache_hit_rate", metrics.get("cache_hit_rate")],
        ["delta_reused", metrics.get("delta_reused", 0)],
        ["delta_fallback", metrics.get("delta_fallback", 0)],
        ["satellite_claims", metrics.get("satellite_claims", 0)],
        ["satellite_results", metrics.get("satellite_results", 0)],
        ["leases_expired", metrics.get("leases_expired", 0)],
        ["leases", " ".join(f"{worker}={count}" for worker, count
                            in sorted(metrics.get("leases", {}).items()))],
        ["retries", metrics.get("retries", 0)],
        ["recovered", metrics.get("recovered", 0)],
        ["latency", " ".join(f"{bucket}={count}"
                             for bucket, count in histogram.items())],
        ["worker_utilization", metrics.get("worker_utilization", 0.0)],
    ]
    return render_table(["metric", "value"], rows, title=title)


def write_service_json(metrics: dict, path: str | Path) -> dict:
    """Write a ``/v1/metrics`` snapshot as a BENCH-style artifact.

    The CI smoke job and ops tooling use this to persist a service's
    final state next to the other ``BENCH_*.json`` trajectories.
    """
    artifact = {"benchmark": "service", **metrics}
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return artifact


def write_campaign_json(results: Sequence["CampaignResult"],
                        path: str | Path,
                        wall_seconds: float = 0.0,
                        shards: int = 1) -> dict:
    """Write the ``BENCH_*.json``-style campaign artifact; returns it."""
    summary = campaign_summary(results)
    artifact = {
        "benchmark": "campaign",
        "shards": shards,
        "wall_seconds": round(wall_seconds, 3),
        "summary": summary,
        "results": [result.to_json() for result in results],
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return artifact
