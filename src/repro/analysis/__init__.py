"""Experiment drivers and reporting for the paper's evaluation."""

from repro.analysis.report import (
    campaign_summary,
    fuzz_summary,
    render_campaign_table,
    render_fuzz_table,
    render_service_table,
    render_table,
    write_campaign_json,
    write_fuzz_json,
    write_service_json,
)

__all__ = [
    "campaign_summary",
    "fuzz_summary",
    "render_campaign_table",
    "render_fuzz_table",
    "render_service_table",
    "render_table",
    "write_campaign_json",
    "write_fuzz_json",
    "write_service_json",
]
