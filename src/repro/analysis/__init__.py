"""Experiment drivers and reporting for the paper's evaluation."""

from repro.analysis.report import render_table

__all__ = ["render_table"]
