"""cProfile plumbing for the campaign and fuzz CLIs (``--profile``).

Hot-path claims about the solver and translator should be reproducible
from a command, not from someone's one-off notebook.  Both sweep CLIs
accept ``--profile [PATH]``: the sweep is forced inline (a child process
cannot be profiled from the parent, so sharding is collapsed to one
in-process shard) and the cProfile top-N cumulative table is written to
a text artifact next to the JSON one.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from pathlib import Path
from typing import Callable, TypeVar

T = TypeVar("T")

DEFAULT_TOP = 25


def run_profiled(fn: Callable[[], T], artifact: str | Path,
                 top: int = DEFAULT_TOP) -> T:
    """Run ``fn`` under cProfile and write the top-``top`` cumulative
    table to ``artifact``; returns ``fn``'s result.

    The profile is written even when ``fn`` raises, so a sweep that dies
    half-way still leaves evidence of where the time went.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return fn()
    finally:
        profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative").print_stats(top)
        Path(artifact).write_text(stream.getvalue(), encoding="utf-8")
