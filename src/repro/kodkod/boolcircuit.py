"""Hash-consed boolean circuits over a flat gate arena.

The relational translator compiles expressions to matrices of circuit nodes
(:mod:`repro.kodkod.matrix`); this module provides the node factory with
structural sharing and simplification, plus the compilation of a circuit to
CNF.  It mirrors the role of Kodkod's ``BooleanFactory``.

Nodes are small integers.  ``TRUE`` and ``FALSE`` are pre-allocated; inputs
("free" boolean variables, one per undetermined relation tuple) and gates
are allocated on demand.  Negation is represented implicitly: the negation
of node ``n`` is ``-n``, so hash-consing covers complementation for free.

Storage is *flat*: instead of a dict of per-gate tuples, the factory keeps
parallel append-only lists indexed by node id — an opcode, plus a
(start, count) span into one shared children array.  This keeps every
lookup a couple of list indexings on the translation hot path and makes
the whole circuit cache-friendly and cheap to share across the repeated
translations of a campaign sweep.

Simplification happens at construction time: constant folding, absorption
of duplicate and complementary children, flattening of nested same-op
gates, and ITE/IFF rewriting against constant or equal branches.  A node,
once built, is therefore already in simplified form, and shared subformulas
are built exactly once.

CNF compilation is polarity-aware (Plaisted–Greenbaum): gates only ever
seen in one polarity under the roots emit one-sided implication clauses,
which preserves satisfiability per input assignment while cutting the
clause count roughly in half on ``check``-shaped (single-polarity)
problems.  The classic bipolar Tseitin encoding is kept selectable for
differential testing.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.sat.cnf import CNF

# Node encoding: TRUE = 1, FALSE = -1; every other node is a positive id >= 2
# or its negation.  Node ids index the factory's flat arrays directly.
TRUE = 1
FALSE = -1

# Opcodes stored in the flat arena.
_NONE = 0
_CONST = 1
_INPUT = 2
_AND = 3
_OR = 4

# Polarity bitmask used during CNF compilation.
_POS = 1
_NEG = 2


class BooleanFactory:
    """Builds AND/OR/NOT circuits with structural sharing.

    The gate store is a flat, append-only arena: ``_op[n]`` is node ``n``'s
    opcode and ``_children[_start[n]:_start[n] + _count[n]]`` its children.
    """

    def __init__(self) -> None:
        # Index 0 is unused; index 1 is the TRUE constant.
        self._op: list[int] = [_NONE, _CONST]
        self._start: list[int] = [0, 0]
        self._count: list[int] = [0, 0]
        self._children: list[int] = []
        # (opcode, children tuple) -> node id (hash-consing).
        self._cache: dict[tuple[int, tuple[int, ...]], int] = {}
        self._num_inputs = 0
        self._num_gates = 0
        # Gate construction requests before simplification/sharing kicked
        # in: the size the circuit would have had with one gate per
        # constructor call ("gates before simplification").
        self.gate_requests = 0
        # Populated by :meth:`to_cnf`: clause-count savings of the
        # polarity-aware encoding relative to bipolar Tseitin.
        self.cnf_stats: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def fresh_input(self) -> int:
        """Allocate a free boolean input (one per undetermined tuple)."""
        node = len(self._op)
        self._op.append(_INPUT)
        self._start.append(len(self._children))
        self._count.append(0)
        self._num_inputs += 1
        return node

    def is_input(self, node: int) -> bool:
        """True when ``abs(node)`` is a free input."""
        base = abs(node)
        return base < len(self._op) and self._op[base] == _INPUT

    def not_(self, node: int) -> int:
        """Negation (an involution thanks to signed node ids)."""
        return -node

    def _alloc(self, opcode: int, children: tuple[int, ...]) -> int:
        key = (opcode, children)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        node = len(self._op)
        self._op.append(opcode)
        self._start.append(len(self._children))
        self._count.append(len(children))
        self._children.extend(children)
        self._cache[key] = node
        self._num_gates += 1
        return node

    def and_(self, children: Iterable[int]) -> int:
        """N-ary conjunction with constant folding, dedup and flattening."""
        self.gate_requests += 1
        op = self._op
        flat: list[int] = []
        seen: set[int] = set()
        stack = list(children)
        while stack:
            child = stack.pop()
            if child == TRUE:
                continue
            if child == FALSE:
                return FALSE
            if -child in seen:
                return FALSE
            if child in seen:
                continue
            # Flatten nested conjunctions for better sharing.
            if child > 0 and op[child] == _AND:
                s = self._start[child]
                stack.extend(self._children[s:s + self._count[child]])
                continue
            seen.add(child)
            flat.append(child)
        if not flat:
            return TRUE
        if len(flat) == 1:
            return flat[0]
        flat.sort()
        return self._alloc(_AND, tuple(flat))

    def or_(self, children: Iterable[int]) -> int:
        """N-ary disjunction with constant folding, dedup and flattening."""
        self.gate_requests += 1
        op = self._op
        flat: list[int] = []
        seen: set[int] = set()
        stack = list(children)
        while stack:
            child = stack.pop()
            if child == FALSE:
                continue
            if child == TRUE:
                return TRUE
            if -child in seen:
                return TRUE
            if child in seen:
                continue
            if child > 0 and op[child] == _OR:
                s = self._start[child]
                stack.extend(self._children[s:s + self._count[child]])
                continue
            seen.add(child)
            flat.append(child)
        if not flat:
            return FALSE
        if len(flat) == 1:
            return flat[0]
        flat.sort()
        return self._alloc(_OR, tuple(flat))

    def and2(self, a: int, b: int) -> int:
        """Binary conjunction: the matrix layer's hot path.

        Skips the generic flatten/dedup loop; nested gates still hash-cons
        structurally, and the n-ary :meth:`and_` remains the entry point
        for formula-level conjunctions.
        """
        self.gate_requests += 1
        if a == TRUE:
            return b
        if b == TRUE:
            return a
        if a == FALSE or b == FALSE or a == -b:
            return FALSE
        if a == b:
            return a
        if a > b:
            a, b = b, a
        return self._alloc(_AND, (a, b))

    def or2(self, a: int, b: int) -> int:
        """Binary disjunction (dual of :meth:`and2`)."""
        self.gate_requests += 1
        if a == FALSE:
            return b
        if b == FALSE:
            return a
        if a == TRUE or b == TRUE or a == -b:
            return TRUE
        if a == b:
            return a
        if a > b:
            a, b = b, a
        return self._alloc(_OR, (a, b))

    def implies(self, a: int, b: int) -> int:
        """Material implication."""
        return self.or2(-a, b)

    def iff(self, a: int, b: int) -> int:
        """Biconditional, rewritten against constant/equal operands."""
        if a == b:
            return TRUE
        if a == -b:
            return FALSE
        if a == TRUE:
            return b
        if a == FALSE:
            return -b
        if b == TRUE:
            return a
        if b == FALSE:
            return -a
        return self.and2(self.or2(-a, b), self.or2(a, -b))

    def ite(self, cond: int, then_node: int, else_node: int) -> int:
        """If-then-else, rewritten against constant/equal branches."""
        if cond == TRUE:
            return then_node
        if cond == FALSE:
            return else_node
        if then_node == else_node:
            return then_node
        if then_node == -else_node:
            return self.iff(cond, then_node)
        if then_node == TRUE:
            return self.or2(cond, else_node)
        if then_node == FALSE:
            return self.and2(-cond, else_node)
        if else_node == TRUE:
            return self.or2(-cond, then_node)
        if else_node == FALSE:
            return self.and2(cond, then_node)
        return self.or2(self.and2(cond, then_node),
                        self.and2(-cond, else_node))

    # ------------------------------------------------------------------
    # Evaluation (for tests and instance extraction)
    # ------------------------------------------------------------------

    def evaluate(self, node: int, inputs: dict[int, bool]) -> bool:
        """Evaluate ``node`` given values for every reachable input.

        Iterative (explicit stack): circuits produced by deep formula
        chains routinely exceed Python's recursion limit.
        """
        op, start, count, children = (
            self._op, self._start, self._count, self._children,
        )
        memo: dict[int, bool] = {TRUE: True}
        root = abs(node)
        stack = [root]
        while stack:
            n = stack[-1]
            if n in memo:
                stack.pop()
                continue
            kind = op[n]
            if kind == _INPUT:
                memo[n] = inputs[n]
                stack.pop()
                continue
            s = start[n]
            kids = children[s:s + count[n]]
            pending = [abs(c) for c in kids if abs(c) not in memo]
            if pending:
                stack.extend(pending)
                continue
            if kind == _AND:
                value = True
                for c in kids:
                    if not (memo[c] if c > 0 else not memo[-c]):
                        value = False
                        break
            else:
                value = False
                for c in kids:
                    if memo[c] if c > 0 else not memo[-c]:
                        value = True
                        break
            memo[n] = value
            stack.pop()
        value = memo[root]
        return value if node > 0 else not value

    # ------------------------------------------------------------------
    # CNF compilation
    # ------------------------------------------------------------------

    def to_cnf(self, roots: Sequence[int],
               polarity_aware: bool = True) -> tuple[CNF, dict[int, int]]:
        """Compile the circuit to CNF, asserting every root true.

        With ``polarity_aware`` (the default) gates reachable in only one
        polarity emit one-sided Plaisted–Greenbaum clauses; pass ``False``
        for the classic bipolar Tseitin encoding (used by the differential
        encoding tests).  Returns the CNF and a map from circuit input node
        to CNF variable, used later to read relation tuples out of a SAT
        model.  Clause-count savings are recorded in :attr:`cnf_stats`.
        """
        op, start, count, children = (
            self._op, self._start, self._count, self._children,
        )

        # Pass 1: mark the polarity under which each node is reachable.
        polarity: dict[int, int] = {}
        stack: list[tuple[int, int]] = []
        for root in roots:
            base = abs(root)
            if base == TRUE:
                continue
            mark = (_POS if root > 0 else _NEG) if polarity_aware else (_POS | _NEG)
            old = polarity.get(base, 0)
            new = old | mark
            if new != old:
                polarity[base] = new
                stack.append((base, new & ~old))
        while stack:
            n, added = stack.pop()
            kind = op[n]
            if kind != _AND and kind != _OR:
                continue
            flipped = ((added & _POS) and _NEG) | ((added & _NEG) and _POS)
            s = start[n]
            for child in children[s:s + count[n]]:
                if child > 0:
                    base, mark = child, added
                else:
                    base, mark = -child, flipped
                old = polarity.get(base, 0)
                new = old | mark
                if new != old:
                    polarity[base] = new
                    stack.append((base, new & ~old))

        # Pass 2: allocate CNF variables in node order (deterministic) and
        # emit gate clauses according to the recorded polarities.
        cnf = CNF()
        new_var = cnf.new_var
        emit = cnf._append_clause
        node_var: dict[int, int] = {}
        marked = sorted(polarity)
        for n in marked:
            node_var[n] = new_var()
        saved = 0
        one_sided = 0
        for n in marked:
            kind = op[n]
            if kind != _AND and kind != _OR:
                continue
            var = node_var[n]
            pol = polarity[n]
            s = count[n]
            kids = children[start[n]:start[n] + s]
            lits = [node_var[c] if c > 0 else -node_var[-c] for c in kids]
            if kind == _AND:
                if pol & _POS:
                    # var -> every child.
                    for lit in lits:
                        emit((-var, lit))
                else:
                    saved += s
                if pol & _NEG:
                    # every child -> var.
                    big = [var]
                    big.extend(-lit for lit in lits)
                    emit(tuple(big))
                else:
                    saved += 1
            else:
                if pol & _POS:
                    # var -> some child.
                    big = [-var]
                    big.extend(lits)
                    emit(tuple(big))
                else:
                    saved += 1
                if pol & _NEG:
                    # every child's negation -> not var.
                    for lit in lits:
                        emit((var, -lit))
                else:
                    saved += s
            if pol != (_POS | _NEG):
                one_sided += 1

        # Assert the roots.
        true_var = 0
        for root in roots:
            base = abs(root)
            if base == TRUE:
                # Encode the constant with a dedicated always-true variable.
                # The defining unit already asserts a TRUE root, so only a
                # FALSE root needs its (contradicting) unit on top — a
                # trivially-true translation stays a single unit clause
                # instead of a duplicated pair.
                if not true_var:
                    true_var = new_var()
                    node_var[TRUE] = true_var
                    emit((true_var,))
                if root < 0:
                    emit((-true_var,))
            else:
                var = node_var[base]
                emit((var if root > 0 else -var,))

        self.cnf_stats = {
            "clauses_saved_by_polarity": saved,
            "one_sided_gates": one_sided,
        }
        input_map = {
            n: v for n, v in node_var.items()
            if n != TRUE and op[n] == _INPUT
        }
        return cnf, input_map

    def opcode_histogram(self) -> dict[str, int]:
        """Gate/input counts by opcode (a cheap fuzzing coverage signal)."""
        names = {_CONST: "const", _INPUT: "input", _AND: "and", _OR: "or"}
        histogram: dict[str, int] = {}
        for opcode in self._op[1:]:
            name = names.get(opcode)
            if name is not None:
                histogram[name] = histogram.get(name, 0) + 1
        return histogram

    @property
    def num_gates(self) -> int:
        """Number of gates allocated (excluding inputs and constants)."""
        return self._num_gates

    @property
    def num_inputs(self) -> int:
        """Number of free inputs allocated."""
        return self._num_inputs
