"""Hash-consed boolean circuits.

The relational translator compiles expressions to matrices of circuit nodes
(:mod:`repro.kodkod.matrix`); this module provides the node factory with
structural sharing and light simplification, plus the Tseitin compilation of
a circuit to CNF.  It mirrors the role of Kodkod's ``BooleanFactory``.

Nodes are small integers.  ``TRUE`` and ``FALSE`` are pre-allocated; inputs
("free" boolean variables, one per undetermined relation tuple) and gates are
allocated on demand.  Negation is represented implicitly: the negation of
node ``n`` is ``-n``, so hash-consing covers complementation for free.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.sat.cnf import CNF

# Node encoding: TRUE = 1, FALSE = -1; every other node is a positive id >= 2
# or its negation.  Gate ids index into the factory tables.
TRUE = 1
FALSE = -1


class BooleanFactory:
    """Builds AND/OR/NOT circuits with structural sharing."""

    _AND = "and"
    _OR = "or"

    def __init__(self) -> None:
        # id -> (kind, children tuple); id 1 reserved for TRUE.
        self._gates: dict[int, tuple[str, tuple[int, ...]]] = {}
        self._cache: dict[tuple[str, tuple[int, ...]], int] = {}
        self._inputs: set[int] = set()
        self._next_id = 2

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def fresh_input(self) -> int:
        """Allocate a free boolean input (one per undetermined tuple)."""
        node = self._next_id
        self._next_id += 1
        self._inputs.add(node)
        return node

    def is_input(self, node: int) -> bool:
        """True when ``abs(node)`` is a free input."""
        return abs(node) in self._inputs

    def not_(self, node: int) -> int:
        """Negation (an involution thanks to signed node ids)."""
        return -node

    def _gate(self, kind: str, children: tuple[int, ...]) -> int:
        key = (kind, children)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        node = self._next_id
        self._next_id += 1
        self._gates[node] = key
        self._cache[key] = node
        return node

    def and_(self, children: Iterable[int]) -> int:
        """N-ary conjunction with constant folding and dedup."""
        flat: list[int] = []
        seen: set[int] = set()
        stack = list(children)
        while stack:
            child = stack.pop()
            if child == TRUE:
                continue
            if child == FALSE:
                return FALSE
            if -child in seen:
                return FALSE
            if child in seen:
                continue
            # Flatten nested conjunctions for better sharing.
            if child > 0 and self._gates.get(child, ("", ()))[0] == self._AND:
                stack.extend(self._gates[child][1])
                continue
            seen.add(child)
            flat.append(child)
        if not flat:
            return TRUE
        if len(flat) == 1:
            return flat[0]
        return self._gate(self._AND, tuple(sorted(flat)))

    def or_(self, children: Iterable[int]) -> int:
        """N-ary disjunction with constant folding and dedup."""
        flat: list[int] = []
        seen: set[int] = set()
        stack = list(children)
        while stack:
            child = stack.pop()
            if child == FALSE:
                continue
            if child == TRUE:
                return TRUE
            if -child in seen:
                return TRUE
            if child in seen:
                continue
            if child > 0 and self._gates.get(child, ("", ()))[0] == self._OR:
                stack.extend(self._gates[child][1])
                continue
            seen.add(child)
            flat.append(child)
        if not flat:
            return FALSE
        if len(flat) == 1:
            return flat[0]
        return self._gate(self._OR, tuple(sorted(flat)))

    def implies(self, a: int, b: int) -> int:
        """Material implication."""
        return self.or_([-a, b])

    def iff(self, a: int, b: int) -> int:
        """Biconditional."""
        return self.and_([self.implies(a, b), self.implies(b, a)])

    def ite(self, cond: int, then_node: int, else_node: int) -> int:
        """If-then-else."""
        return self.or_([self.and_([cond, then_node]), self.and_([-cond, else_node])])

    # ------------------------------------------------------------------
    # Evaluation (for tests and instance extraction)
    # ------------------------------------------------------------------

    def evaluate(self, node: int, inputs: dict[int, bool]) -> bool:
        """Evaluate ``node`` given values for every reachable input."""
        memo: dict[int, bool] = {TRUE: True}

        def walk(n: int) -> bool:
            if n < 0:
                return not walk(-n)
            if n in memo:
                return memo[n]
            if n in self._inputs:
                value = inputs[n]
            else:
                kind, children = self._gates[n]
                if kind == self._AND:
                    value = all(walk(c) for c in children)
                else:
                    value = any(walk(c) for c in children)
            memo[n] = value
            return value

        return walk(node)

    # ------------------------------------------------------------------
    # CNF compilation (Tseitin)
    # ------------------------------------------------------------------

    def to_cnf(self, roots: Sequence[int]) -> tuple[CNF, dict[int, int]]:
        """Compile the circuit to CNF, asserting every root true.

        Returns the CNF and a map from circuit input node to CNF variable,
        used later to read relation tuples out of a SAT model.
        """
        cnf = CNF()
        node_var: dict[int, int] = {}

        def literal(node: int) -> int:
            sign = 1 if node > 0 else -1
            base = abs(node)
            if base == TRUE:
                # Encode the constant with a dedicated always-true variable.
                var = node_var.get(TRUE)
                if var is None:
                    var = cnf.new_var()
                    node_var[TRUE] = var
                    cnf.add_clause([var])
                return sign * var
            var = node_var.get(base)
            if var is None:
                var = cnf.new_var()
                node_var[base] = var
                if base in self._gates:
                    kind, children = self._gates[base]
                    child_lits = [literal(c) for c in children]
                    if kind == self._AND:
                        cnf.add_and_gate(var, child_lits)
                    else:
                        cnf.add_or_gate(var, child_lits)
            return sign * var

        for root in roots:
            cnf.add_clause([literal(root)])
        input_map = {
            node: var for node, var in node_var.items() if node in self._inputs
        }
        return cnf, input_map

    @property
    def num_gates(self) -> int:
        """Number of gates allocated (excluding inputs and constants)."""
        return len(self._gates)

    @property
    def num_inputs(self) -> int:
        """Number of free inputs allocated."""
        return len(self._inputs)
