"""Instances: concrete relation valuations extracted from SAT models."""

from __future__ import annotations

from typing import Iterator

from repro.kodkod import ast
from repro.kodkod.translate import Translation
from repro.kodkod.universe import TupleSet, Universe
from repro.sat.types import Model


class Instance:
    """A valuation assigning a concrete tuple set to every bounded relation."""

    def __init__(self, universe: Universe,
                 valuations: dict[ast.Relation, TupleSet]) -> None:
        self._universe = universe
        self._valuations = dict(valuations)

    @property
    def universe(self) -> Universe:
        """The universe of atoms."""
        return self._universe

    def value_of(self, relation: ast.Relation) -> TupleSet:
        """Tuples assigned to ``relation``."""
        try:
            return self._valuations[relation]
        except KeyError:
            raise KeyError(f"relation {relation.name!r} not in instance") from None

    def relations(self) -> Iterator[ast.Relation]:
        """All relations with valuations."""
        return iter(self._valuations)

    def __contains__(self, relation: object) -> bool:
        return relation in self._valuations

    def describe(self) -> str:
        """Human-readable rendering (used for counterexample output)."""
        lines = []
        for relation in sorted(self._valuations, key=lambda r: r.name):
            tuples = sorted(self._valuations[relation])
            rendered = ", ".join("->".join(t) for t in tuples)
            lines.append(f"{relation.name} = {{{rendered}}}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Instance({len(self._valuations)} relations)"


def extract_instance(translation: Translation, model: Model) -> Instance:
    """Read relation valuations out of a SAT model.

    Lower-bound tuples are always present; a free tuple is present when its
    circuit input's CNF variable is true in the model.  Inputs that were
    simplified out of the CNF default to false (absent), which is always a
    legal completion because the root formula did not depend on them.
    """
    universe = translation.bounds.universe
    valuations: dict[ast.Relation, TupleSet] = {}
    tuples_by_relation: dict[ast.Relation, set[tuple[str, ...]]] = {}
    for relation in translation.bounds.relations():
        tuples_by_relation[relation] = {
            tuple(t) for t in translation.bounds.lower(relation)
        }
    for (relation, index), node in translation.tuple_inputs.items():
        var = translation.input_vars.get(node)
        present = False
        if var is not None and var in model:
            present = model[var]
        if present:
            atoms = tuple(universe.atom(i) for i in index)
            tuples_by_relation[relation].add(atoms)
    for relation, tuples in tuples_by_relation.items():
        valuations[relation] = universe.tuple_set(relation.arity, tuples)
    return Instance(universe, valuations)
