"""Symmetry detection and lex-leader symmetry-breaking predicates.

Bounded relational problems are riddled with symmetry: atoms that appear
identically in every relation's lower and upper bounds are interchangeable,
so every model has up to ``k!`` isomorphic variants per class of ``k``
such atoms.  Real Kodkod detects these atom symmetries from the bounds and
conjoins *symmetry-breaking predicates* (SBPs) onto the translated formula,
shrinking the SAT search space without changing satisfiability.  This
module does the same for the mini-Kodkod stack:

* :func:`atom_partition` computes classes of interchangeable atoms.  Two
  atoms are in one class only when *transposing* them maps every relation's
  lower bound onto itself and every upper bound onto itself.  Because
  verified transpositions generate the full symmetric group on a class,
  every permutation within a class is a symmetry of the bounds — the
  soundness condition for lex-leader breaking.
* :func:`break_predicates` emits, for each adjacent transposition within a
  class, a length-limited lexicographic-leader constraint over the primary
  (free tuple) variables: the canonical solution in each orbit satisfies
  ``v <= pi(v)``.  Conjoining these preserves SAT/UNSAT (at least one
  representative of every orbit survives) while pruning isomorphic models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kodkod import ast
from repro.kodkod.boolcircuit import TRUE, BooleanFactory
from repro.kodkod.bounds import Bounds

# Kodkod's default predicate-length bound ("symmetry breaking" option).
DEFAULT_SBP_LENGTH = 20

IndexTuple = tuple[int, ...]


@dataclass(frozen=True)
class SymmetryInfo:
    """What the detector found and how much breaking was emitted."""

    classes: tuple[tuple[int, ...], ...]
    num_predicates: int

    @property
    def num_classes(self) -> int:
        """Number of atom classes (including singletons)."""
        return len(self.classes)

    @property
    def largest_class(self) -> int:
        """Size of the biggest interchangeable-atom class."""
        return max((len(c) for c in self.classes), default=0)


def _index_tuples(bounds: Bounds, rel: ast.Relation) -> tuple[frozenset, frozenset]:
    """Lower/upper bounds of ``rel`` as frozensets of atom-index tuples."""
    universe = bounds.universe
    lower = frozenset(
        tuple(universe.index(a) for a in t) for t in bounds.lower(rel)
    )
    upper = frozenset(
        tuple(universe.index(a) for a in t) for t in bounds.upper(rel)
    )
    return lower, upper


def _swap_preserves(tuples: frozenset, a: int, b: int) -> bool:
    """True when transposing atoms ``a``/``b`` maps ``tuples`` onto itself."""
    swap = {a: b, b: a}
    for t in tuples:
        if a in t or b in t:
            if tuple(swap.get(x, x) for x in t) not in tuples:
                return False
    return True


def atom_partition(bounds: Bounds) -> list[list[int]]:
    """Partition universe atom indices into interchangeable classes.

    Atoms are first pre-split by a cheap occurrence signature (per relation
    and tuple position, how often the atom appears in the lower and upper
    bounds), then grouped greedily: an atom joins a class when transposing
    it with the class representative preserves every bound.  Transpositions
    compose, so membership via the representative implies every pair within
    the class is interchangeable.
    """
    universe = bounds.universe
    relations = sorted(bounds.relations(), key=lambda r: r.name)
    bound_sets = [_index_tuples(bounds, rel) for rel in relations]

    def signature(atom: int) -> tuple:
        sig = []
        for (lower, upper), rel in zip(bound_sets, relations):
            for tuples in (lower, upper):
                counts = [0] * rel.arity
                for t in tuples:
                    for pos, x in enumerate(t):
                        if x == atom:
                            counts[pos] += 1
                sig.append(tuple(counts))
        return tuple(sig)

    by_signature: dict[tuple, list[int]] = {}
    for atom in range(len(universe)):
        by_signature.setdefault(signature(atom), []).append(atom)

    def interchangeable(a: int, b: int) -> bool:
        return all(
            _swap_preserves(lower, a, b) and _swap_preserves(upper, a, b)
            for lower, upper in bound_sets
        )

    classes: list[list[int]] = []
    for candidates in by_signature.values():
        subclasses: list[list[int]] = []
        for atom in candidates:
            for subclass in subclasses:
                if interchangeable(subclass[0], atom):
                    subclass.append(atom)
                    break
            else:
                subclasses.append([atom])
        classes.extend(subclasses)
    for cls in classes:
        cls.sort()
    classes.sort()
    return classes


def _permuted(index: IndexTuple, a: int, b: int) -> IndexTuple:
    swap = {a: b, b: a}
    return tuple(swap.get(x, x) for x in index)


def break_predicates(
    factory: BooleanFactory,
    bounds: Bounds,
    tuple_inputs: dict[tuple[ast.Relation, IndexTuple], int],
    classes: list[list[int]],
    max_length: int = DEFAULT_SBP_LENGTH,
) -> list[int]:
    """Build lex-leader circuit nodes for every adjacent transposition.

    For each class ``a0 < a1 < ... < ak`` and each transposition
    ``(ai, ai+1)``, the primary variables are laid out in a fixed order and
    the constraint ``v <= pi(v)`` is encoded with the standard equality
    -prefix chain, truncated at ``max_length`` variable pairs (longer
    suffixes break less and cost more, per Kodkod's default of 20).

    Only free cells can differ under a verified transposition (constants
    map to constants because the bounds are preserved), so each pair in
    the chain is a pair of circuit inputs.
    """
    if max_length <= 0:
        return []
    # Fixed global cell order: relation name, then tuple index order.
    ordered_cells: list[tuple[ast.Relation, IndexTuple]] = []
    for rel in sorted(bounds.relations(), key=lambda r: r.name):
        cells = [
            index for (r, index) in tuple_inputs if r is rel
        ]
        ordered_cells.extend((rel, index) for index in sorted(cells))

    predicates: list[int] = []
    for cls in classes:
        for a, b in zip(cls, cls[1:]):
            constraints: list[int] = []
            prev_eq = TRUE
            pairs = 0
            for rel, index in ordered_cells:
                permuted = _permuted(index, a, b)
                if permuted == index:
                    continue
                p = tuple_inputs[(rel, index)]
                q = tuple_inputs[(rel, permuted)]
                # prefix-equal -> (p <= q), with False < True.
                constraints.append(factory.or_([-prev_eq, -p, q]))
                prev_eq = factory.and_([prev_eq, factory.iff(p, q)])
                pairs += 1
                if pairs >= max_length:
                    break
            if constraints:
                predicates.append(factory.and_(constraints))
    return predicates
