"""Relation bounds: the scope declaration of a bounded verification run.

Every relation gets a *lower* bound (tuples it must contain) and an *upper*
bound (tuples it may contain).  The translator allocates one free boolean
input per tuple in ``upper - lower``; this is exactly Kodkod's notion of
partial instances, and is how Alloy scopes are expressed after
"atomization".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.kodkod.universe import TupleSet, Universe

if TYPE_CHECKING:  # pragma: no cover
    from repro.kodkod.ast import Relation


class Bounds:
    """Lower/upper bounds for every relation of a problem."""

    def __init__(self, universe: Universe) -> None:
        self._universe = universe
        self._lowers: dict["Relation", TupleSet] = {}
        self._uppers: dict["Relation", TupleSet] = {}

    @property
    def universe(self) -> Universe:
        """The universe the bounds range over."""
        return self._universe

    def bound(self, relation: "Relation", lower: TupleSet, upper: TupleSet) -> None:
        """Declare ``lower <= relation <= upper``."""
        if lower.universe is not self._universe or upper.universe is not self._universe:
            raise ValueError("bounds must range over the bounds' universe")
        if lower.arity != relation.arity or upper.arity != relation.arity:
            raise ValueError(
                f"bounds for {relation.name!r} must have arity {relation.arity}"
            )
        if not lower.issubset(upper):
            raise ValueError(f"lower bound of {relation.name!r} exceeds upper bound")
        self._lowers[relation] = lower
        self._uppers[relation] = upper

    def bound_exactly(self, relation: "Relation", tuples: TupleSet) -> None:
        """Fix ``relation`` to exactly ``tuples`` (a constant relation)."""
        self.bound(relation, tuples, tuples)

    def lower(self, relation: "Relation") -> TupleSet:
        """Tuples the relation must contain."""
        try:
            return self._lowers[relation]
        except KeyError:
            raise KeyError(f"relation {relation.name!r} has no bounds") from None

    def upper(self, relation: "Relation") -> TupleSet:
        """Tuples the relation may contain."""
        try:
            return self._uppers[relation]
        except KeyError:
            raise KeyError(f"relation {relation.name!r} has no bounds") from None

    def relations(self) -> Iterator["Relation"]:
        """All bounded relations."""
        return iter(self._lowers)

    def __contains__(self, relation: object) -> bool:
        return relation in self._lowers

    def free_tuple_count(self) -> int:
        """Total number of undetermined tuples (free boolean variables)."""
        return sum(
            len(self._uppers[r].difference(self._lowers[r])) for r in self._lowers
        )
