"""Translation of relational formulas to boolean circuits and CNF.

The pipeline mirrors Kodkod: every bounded relation becomes a matrix whose
cells are TRUE (lower-bound tuples), FALSE (outside the upper bound) or a
fresh boolean input; expressions are evaluated over matrices; formulas
become circuit nodes; the root is compiled to CNF by Tseitin encoding.

Quantifiers are ground: ``all x: D | F`` unrolls over the atoms in the
upper bound of ``D``, guarding each instantiation by the atom's membership
circuit.  This is sound and complete for finite scopes, which is the whole
point of bounded verification.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass

from repro.kodkod import ast
from repro.kodkod.boolcircuit import FALSE, TRUE, BooleanFactory
from repro.kodkod.bounds import Bounds
from repro.kodkod.matrix import BoolMatrix
from repro.kodkod.symmetry import SymmetryInfo, atom_partition, break_predicates
from repro.sat.cnf import CNF

Env = dict[ast.Variable, int]


@dataclass
class Translation:
    """The result of translating a formula within bounds."""

    cnf: CNF
    factory: BooleanFactory
    # (relation, atom-index tuple) -> circuit input node
    tuple_inputs: dict[tuple[ast.Relation, tuple[int, ...]], int]
    # circuit input node -> CNF variable (inputs absent from the CNF were
    # simplified away and may take either value)
    input_vars: dict[int, int]
    bounds: Bounds
    stats: "TranslationStats"
    symmetry: SymmetryInfo | None = None

    def primary_vars(self) -> list[int]:
        """Sorted CNF variables of the primary (free tuple) inputs."""
        return sorted(
            self.input_vars[node] for node in self.tuple_inputs.values()
        )

    def to_dimacs(self, comments: list[str] | None = None) -> str:
        """Render the translated CNF in DIMACS format.

        The header comments document the primary-variable mapping
        (``relation(atom indices) -> CNF variable``), so models found by an
        external solver can be read back as relation tuples.  Used by the
        ``python -m repro.sat.dimacs`` cross-checking CLI.
        """
        from repro.sat import dimacs

        lines = list(comments or [])
        lines.append(
            f"primary vars: {len(self.tuple_inputs)} of {self.cnf.num_vars}"
        )
        for (rel, index), node in sorted(
            self.tuple_inputs.items(), key=lambda kv: (kv[0][0].name, kv[0][1])
        ):
            var = self.input_vars[node]
            atoms = ",".join(str(i) for i in index)
            lines.append(f"primary {rel.name}({atoms}) -> {var}")
        return dimacs.dumps(self.cnf, comments=lines)


@dataclass
class TranslationStats:
    """Size/timing metrics of a translation (feeds the encoding benchmark)."""

    num_primary_vars: int = 0
    num_cnf_vars: int = 0
    num_clauses: int = 0
    num_gates: int = 0
    num_symmetry_classes: int = 0
    num_sbp_predicates: int = 0
    translation_seconds: float = 0.0
    # Gate constructions requested before hash-consing/simplification
    # collapsed them ("gates before simplification"; ``num_gates`` is the
    # count after).
    num_gates_raw: int = 0
    # Clauses the polarity-aware (Plaisted-Greenbaum) encoding avoided
    # emitting relative to bipolar Tseitin (0 under ``cnf_encoding="tseitin"``).
    num_clauses_saved_by_polarity: int = 0


class UnboundRelationError(KeyError):
    """A relation used in the formula has no bounds."""


class Translator:
    """Translates formulas to CNF within a :class:`Bounds`.

    ``symmetry`` bounds the length of the lex-leader symmetry-breaking
    predicates conjoined onto the root formula (0 disables symmetry
    breaking entirely).  Breaking preserves SAT/UNSAT but prunes models
    that only differ by a permutation of interchangeable atoms.

    ``cnf_encoding`` selects the circuit-to-CNF compilation: ``"pg"``
    (default) is polarity-aware Plaisted-Greenbaum, ``"tseitin"`` the
    classic bipolar encoding.  Both are equisatisfiable per input
    assignment; the differential encoding tests solve the same problem
    under each and compare verdicts and model projections.
    """

    def __init__(self, bounds: Bounds, symmetry: int = 0,
                 cnf_encoding: str = "pg") -> None:
        if cnf_encoding not in ("pg", "tseitin"):
            raise ValueError(
                f"cnf_encoding must be 'pg' or 'tseitin', got {cnf_encoding!r}"
            )
        self._bounds = bounds
        self._universe = bounds.universe
        self._symmetry = symmetry
        self._cnf_encoding = cnf_encoding
        self._factory = BooleanFactory()
        self._relation_matrices: dict[ast.Relation, BoolMatrix] = {}
        self._tuple_inputs: dict[tuple[ast.Relation, tuple[int, ...]], int] = {}

    # ------------------------------------------------------------------
    # Relation leaves
    # ------------------------------------------------------------------

    def _relation_matrix(self, rel: ast.Relation) -> BoolMatrix:
        matrix = self._relation_matrices.get(rel)
        if matrix is not None:
            return matrix
        if rel not in self._bounds:
            raise UnboundRelationError(f"relation {rel.name!r} has no bounds")
        lower = self._bounds.lower(rel)
        upper = self._bounds.upper(rel)
        matrix = BoolMatrix(self._factory, len(self._universe), rel.arity)
        for tup in upper:
            index = tuple(self._universe.index(a) for a in tup)
            if tup in lower:
                matrix.set(index, TRUE)
            else:
                node = self._factory.fresh_input()
                matrix.set(index, node)
                self._tuple_inputs[(rel, index)] = node
        self._relation_matrices[rel] = matrix
        return matrix

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def expr_matrix(self, expr: ast.Expr, env: Env | None = None) -> BoolMatrix:
        """Translate an expression to its boolean matrix."""
        env = env or {}
        return self._expr(expr, env)

    def _expr(self, expr: ast.Expr, env: Env) -> BoolMatrix:
        size = len(self._universe)
        if isinstance(expr, ast.Relation):
            return self._relation_matrix(expr)
        if isinstance(expr, ast.Variable):
            try:
                atom_index = env[expr]
            except KeyError:
                raise ValueError(f"unbound variable {expr.name!r}") from None
            matrix = BoolMatrix(self._factory, size, 1)
            matrix.set((atom_index,), TRUE)
            return matrix
        if isinstance(expr, ast.Univ):
            matrix = BoolMatrix(self._factory, size, 1)
            for i in range(size):
                matrix.set((i,), TRUE)
            return matrix
        if isinstance(expr, ast.Iden):
            matrix = BoolMatrix(self._factory, size, 2)
            for i in range(size):
                matrix.set((i, i), TRUE)
            return matrix
        if isinstance(expr, ast.NoneExpr):
            return BoolMatrix(self._factory, size, expr.arity)
        if isinstance(expr, ast.Union):
            return self._expr(expr.left, env).union(self._expr(expr.right, env))
        if isinstance(expr, ast.Intersection):
            return self._expr(expr.left, env).intersection(
                self._expr(expr.right, env)
            )
        if isinstance(expr, ast.Difference):
            return self._expr(expr.left, env).difference(self._expr(expr.right, env))
        if isinstance(expr, ast.Product):
            return self._expr(expr.left, env).product(self._expr(expr.right, env))
        if isinstance(expr, ast.Join):
            return self._expr(expr.left, env).join(self._expr(expr.right, env))
        if isinstance(expr, ast.Transpose):
            return self._expr(expr.inner, env).transpose()
        if isinstance(expr, ast.Closure):
            return self._expr(expr.inner, env).closure()
        if isinstance(expr, ast.IfExpr):
            cond = self._formula(expr.cond, env)
            then_matrix = self._expr(expr.then_expr, env)
            else_matrix = self._expr(expr.else_expr, env)
            result = BoolMatrix(self._factory, size, then_matrix.arity)
            indices = {i for i, _ in then_matrix.cells()}
            indices.update(i for i, _ in else_matrix.cells())
            for index in indices:
                result.set(
                    index,
                    self._factory.ite(
                        cond, then_matrix.get(index), else_matrix.get(index)
                    ),
                )
            return result
        if isinstance(expr, ast.Comprehension):
            return self._comprehension(expr, env)
        raise TypeError(f"unknown expression type: {type(expr).__name__}")

    def _comprehension(self, expr: ast.Comprehension, env: Env) -> BoolMatrix:
        size = len(self._universe)
        result = BoolMatrix(self._factory, size, expr.arity)

        def fill(decl_index: int, env_now: Env, index_prefix: tuple[int, ...],
                 guards: list[int]) -> None:
            if decl_index == len(expr.decls):
                body_node = self._formula(expr.body, env_now)
                result.set(
                    index_prefix, self._factory.and_(guards + [body_node])
                )
                return
            var, domain = expr.decls[decl_index]
            domain_matrix = self._expr(domain, env_now)
            for (atom_index,), membership in list(domain_matrix.cells()):
                child_env = dict(env_now)
                child_env[var] = atom_index
                fill(
                    decl_index + 1,
                    child_env,
                    index_prefix + (atom_index,),
                    guards + [membership],
                )

        fill(0, env, (), [])
        return result

    # ------------------------------------------------------------------
    # Formulas
    # ------------------------------------------------------------------

    def formula_node(self, formula: ast.Formula, env: Env | None = None) -> int:
        """Translate a formula to a circuit node."""
        return self._formula(formula, env or {})

    def _formula(self, formula: ast.Formula, env: Env) -> int:
        if isinstance(formula, ast.TrueF):
            return TRUE
        if isinstance(formula, ast.FalseF):
            return FALSE
        if isinstance(formula, ast.Subset):
            return self._expr(formula.left, env).subset_of(
                self._expr(formula.right, env)
            )
        if isinstance(formula, ast.Equal):
            return self._expr(formula.left, env).equals(
                self._expr(formula.right, env)
            )
        if isinstance(formula, ast.Some):
            return self._expr(formula.expr, env).some()
        if isinstance(formula, ast.No):
            return self._expr(formula.expr, env).no()
        if isinstance(formula, ast.One):
            return self._expr(formula.expr, env).one()
        if isinstance(formula, ast.Lone):
            return self._expr(formula.expr, env).lone()
        if isinstance(formula, ast.CardinalityEq):
            return self._expr(formula.expr, env).count_eq(formula.count)
        if isinstance(formula, ast.CardinalityGe):
            return self._expr(formula.expr, env).count_ge(formula.count)
        if isinstance(formula, ast.Not):
            return -self._formula(formula.inner, env)
        if isinstance(formula, ast.And):
            return self._factory.and_(
                [self._formula(part, env) for part in formula.parts]
            )
        if isinstance(formula, ast.Or):
            return self._factory.or_(
                [self._formula(part, env) for part in formula.parts]
            )
        if isinstance(formula, ast.ForAll):
            return self._quantified(formula, env, universal=True)
        if isinstance(formula, ast.Exists):
            return self._quantified(formula, env, universal=False)
        raise TypeError(f"unknown formula type: {type(formula).__name__}")

    def _quantified(self, formula: ast._Quantified, env: Env, universal: bool) -> int:
        def unroll(decl_index: int, env_now: Env, guards: list[int]) -> list[int]:
            if decl_index == len(formula.decls):
                body_node = self._formula(formula.body, env_now)
                if universal:
                    # guards -> body
                    return [
                        self._factory.or_(
                            [-g for g in guards] + [body_node]
                        )
                    ]
                return [self._factory.and_(guards + [body_node])]
            var, domain = formula.decls[decl_index]
            domain_matrix = self._expr(domain, env_now)
            instantiations: list[int] = []
            for (atom_index,), membership in list(domain_matrix.cells()):
                child_env = dict(env_now)
                child_env[var] = atom_index
                instantiations.extend(
                    unroll(decl_index + 1, child_env, guards + [membership])
                )
            return instantiations

        nodes = unroll(0, env, [])
        if universal:
            return self._factory.and_(nodes)
        return self._factory.or_(nodes)

    # ------------------------------------------------------------------
    # End-to-end translation
    # ------------------------------------------------------------------

    def translate(self, formula: ast.Formula) -> Translation:
        """Translate ``formula`` into CNF, collecting size statistics."""
        started = time.perf_counter()
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 100000))
        try:
            # Allocate primary variables for every bounded relation, whether
            # or not the formula mentions it: enumeration must distinguish
            # instances on all declared relations.
            for rel in self._bounds.relations():
                self._relation_matrix(rel)
            root = self._formula(formula, {})
            symmetry_info: SymmetryInfo | None = None
            if self._symmetry > 0:
                classes = atom_partition(self._bounds)
                sbp = break_predicates(
                    self._factory, self._bounds, self._tuple_inputs,
                    classes, self._symmetry,
                )
                root = self._factory.and_([root] + sbp)
                symmetry_info = SymmetryInfo(
                    classes=tuple(tuple(c) for c in classes),
                    num_predicates=len(sbp),
                )
            cnf, input_vars = self._factory.to_cnf(
                [root], polarity_aware=self._cnf_encoding == "pg"
            )
            # Inputs never mentioned by the root circuit still need CNF
            # variables so instances can be extracted deterministically.
            for node in self._tuple_inputs.values():
                if node not in input_vars:
                    input_vars[node] = cnf.new_var()
        finally:
            sys.setrecursionlimit(old_limit)
        stats = TranslationStats(
            num_primary_vars=len(self._tuple_inputs),
            num_cnf_vars=cnf.num_vars,
            num_clauses=cnf.num_clauses,
            num_gates=self._factory.num_gates,
            num_symmetry_classes=(
                symmetry_info.num_classes if symmetry_info else 0
            ),
            num_sbp_predicates=(
                symmetry_info.num_predicates if symmetry_info else 0
            ),
            translation_seconds=time.perf_counter() - started,
            num_gates_raw=self._factory.gate_requests,
            num_clauses_saved_by_polarity=self._factory.cnf_stats.get(
                "clauses_saved_by_polarity", 0
            ),
        )
        return Translation(
            cnf=cnf,
            factory=self._factory,
            tuple_inputs=dict(self._tuple_inputs),
            input_vars=input_vars,
            bounds=self._bounds,
            stats=stats,
            symmetry=symmetry_info,
        )
