"""Ground evaluator: evaluate expressions/formulas against an instance.

This is the reference semantics of the relational language.  It is used to

* validate instances returned by the SAT pipeline (every ``run`` solution
  must satisfy the formula it was found for), and
* cross-check the translator in property-based tests: for random small
  problems, SAT-based answers must agree with exhaustive evaluation.
"""

from __future__ import annotations

import itertools

from repro.kodkod import ast
from repro.kodkod.instance import Instance
from repro.kodkod.universe import AtomTuple, TupleSet

GroundEnv = dict[ast.Variable, str]


class Evaluator:
    """Evaluates relational syntax against a concrete instance."""

    def __init__(self, instance: Instance) -> None:
        self._instance = instance
        self._universe = instance.universe

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def tuples(self, expr: ast.Expr, env: GroundEnv | None = None) -> TupleSet:
        """The tuple set denoted by ``expr``."""
        return self._expr(expr, env or {})

    def _expr(self, expr: ast.Expr, env: GroundEnv) -> TupleSet:
        universe = self._universe
        if isinstance(expr, ast.Relation):
            return self._instance.value_of(expr)
        if isinstance(expr, ast.Variable):
            try:
                atom = env[expr]
            except KeyError:
                raise ValueError(f"unbound variable {expr.name!r}") from None
            return universe.tuple_set(1, [(atom,)])
        if isinstance(expr, ast.Univ):
            return universe.tuple_set(1, [(a,) for a in universe])
        if isinstance(expr, ast.Iden):
            return universe.tuple_set(2, [(a, a) for a in universe])
        if isinstance(expr, ast.NoneExpr):
            return universe.empty(expr.arity)
        if isinstance(expr, ast.Union):
            return self._expr(expr.left, env).union(self._expr(expr.right, env))
        if isinstance(expr, ast.Intersection):
            return self._expr(expr.left, env).intersection(
                self._expr(expr.right, env)
            )
        if isinstance(expr, ast.Difference):
            return self._expr(expr.left, env).difference(self._expr(expr.right, env))
        if isinstance(expr, ast.Product):
            return self._expr(expr.left, env).product(self._expr(expr.right, env))
        if isinstance(expr, ast.Join):
            return self._join(self._expr(expr.left, env), self._expr(expr.right, env))
        if isinstance(expr, ast.Transpose):
            inner = self._expr(expr.inner, env)
            return self._universe.tuple_set(2, [(b, a) for a, b in inner])
        if isinstance(expr, ast.Closure):
            return self._closure(self._expr(expr.inner, env))
        if isinstance(expr, ast.IfExpr):
            if self.check(expr.cond, env):
                return self._expr(expr.then_expr, env)
            return self._expr(expr.else_expr, env)
        if isinstance(expr, ast.Comprehension):
            return self._comprehension(expr, env)
        raise TypeError(f"unknown expression type: {type(expr).__name__}")

    def _join(self, left: TupleSet, right: TupleSet) -> TupleSet:
        arity = left.arity + right.arity - 2
        if arity < 1:
            raise ValueError("join would produce arity < 1")
        tuples: set[AtomTuple] = set()
        by_head: dict[str, list[AtomTuple]] = {}
        for r in right:
            by_head.setdefault(r[0], []).append(r[1:])
        for l in left:
            for rest in by_head.get(l[-1], []):
                tuples.add(l[:-1] + rest)
        return self._universe.tuple_set(arity, tuples)

    def _closure(self, rel: TupleSet) -> TupleSet:
        if rel.arity != 2:
            raise ValueError("closure requires a binary relation")
        pairs = set(rel)
        changed = True
        while changed:
            changed = False
            new_pairs = {
                (a, d)
                for (a, b) in pairs
                for (c, d) in pairs
                if b == c and (a, d) not in pairs
            }
            if new_pairs:
                pairs |= new_pairs
                changed = True
        return self._universe.tuple_set(2, pairs)

    def _comprehension(self, expr: ast.Comprehension, env: GroundEnv) -> TupleSet:
        tuples: set[AtomTuple] = set()
        domains = []
        # Note: domains may depend on earlier variables, so compute lazily.

        def fill(decl_index: int, env_now: GroundEnv, prefix: AtomTuple) -> None:
            if decl_index == len(expr.decls):
                if self.check(expr.body, env_now):
                    tuples.add(prefix)
                return
            var, domain = expr.decls[decl_index]
            for (atom,) in self._expr(domain, env_now):
                child_env = dict(env_now)
                child_env[var] = atom
                fill(decl_index + 1, child_env, prefix + (atom,))

        fill(0, env, ())
        del domains
        return self._universe.tuple_set(expr.arity, tuples)

    # ------------------------------------------------------------------
    # Formulas
    # ------------------------------------------------------------------

    def check(self, formula: ast.Formula, env: GroundEnv | None = None) -> bool:
        """Evaluate a formula to a boolean."""
        return self._formula(formula, env or {})

    def _formula(self, formula: ast.Formula, env: GroundEnv) -> bool:
        if isinstance(formula, ast.TrueF):
            return True
        if isinstance(formula, ast.FalseF):
            return False
        if isinstance(formula, ast.Subset):
            return self._expr(formula.left, env).issubset(
                self._expr(formula.right, env)
            )
        if isinstance(formula, ast.Equal):
            return self._expr(formula.left, env) == self._expr(formula.right, env)
        if isinstance(formula, ast.Some):
            return len(self._expr(formula.expr, env)) > 0
        if isinstance(formula, ast.No):
            return len(self._expr(formula.expr, env)) == 0
        if isinstance(formula, ast.One):
            return len(self._expr(formula.expr, env)) == 1
        if isinstance(formula, ast.Lone):
            return len(self._expr(formula.expr, env)) <= 1
        if isinstance(formula, ast.CardinalityEq):
            return len(self._expr(formula.expr, env)) == formula.count
        if isinstance(formula, ast.CardinalityGe):
            return len(self._expr(formula.expr, env)) >= formula.count
        if isinstance(formula, ast.Not):
            return not self._formula(formula.inner, env)
        if isinstance(formula, ast.And):
            return all(self._formula(part, env) for part in formula.parts)
        if isinstance(formula, ast.Or):
            return any(self._formula(part, env) for part in formula.parts)
        if isinstance(formula, (ast.ForAll, ast.Exists)):
            universal = isinstance(formula, ast.ForAll)
            return self._quantified(formula, env, universal)
        raise TypeError(f"unknown formula type: {type(formula).__name__}")

    def _quantified(self, formula: ast._Quantified, env: GroundEnv,
                    universal: bool) -> bool:
        def unroll(decl_index: int, env_now: GroundEnv) -> bool:
            if decl_index == len(formula.decls):
                return self._formula(formula.body, env_now)
            var, domain = formula.decls[decl_index]
            atoms = [t[0] for t in self._expr(domain, env_now)]
            if universal:
                result = True
                for atom in atoms:
                    child_env = dict(env_now)
                    child_env[var] = atom
                    if not unroll(decl_index + 1, child_env):
                        result = False
                        break
                return result
            for atom in atoms:
                child_env = dict(env_now)
                child_env[var] = atom
                if unroll(decl_index + 1, child_env):
                    return True
            return False

        return unroll(0, env)


def brute_force_instances(bounds, limit: int | None = None):
    """Enumerate ALL instances within bounds (test oracle; tiny scopes only).

    Yields :class:`Instance` objects for every combination of free tuples.
    """
    from repro.kodkod.bounds import Bounds  # local import to avoid cycle

    assert isinstance(bounds, Bounds)
    relations = list(bounds.relations())
    free_tuples: list[tuple[ast.Relation, AtomTuple]] = []
    for relation in relations:
        for tup in bounds.upper(relation).difference(bounds.lower(relation)):
            free_tuples.append((relation, tup))
    if len(free_tuples) > 20:
        raise ValueError("brute force limited to 20 free tuples")
    universe = bounds.universe
    count = 0
    for bits in itertools.product([False, True], repeat=len(free_tuples)):
        if limit is not None and count >= limit:
            return
        valuations = {}
        for relation in relations:
            tuples = {tuple(t) for t in bounds.lower(relation)}
            for (rel, tup), present in zip(free_tuples, bits):
                if rel is relation and present:
                    tuples.add(tup)
            valuations[relation] = universe.tuple_set(relation.arity, tuples)
        yield Instance(universe, valuations)
        count += 1
