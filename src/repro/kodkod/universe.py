"""Universe of atoms and tuple sets for bounded relational logic.

A :class:`Universe` is a finite, ordered collection of named atoms — the
scope of a bounded verification run.  Relations are interpreted as sets of
tuples of atoms; a :class:`TupleSet` is the concrete representation used by
bounds and by extracted instances.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

Atom = str
AtomTuple = tuple[Atom, ...]


class Universe:
    """An immutable, ordered set of distinct atoms."""

    def __init__(self, atoms: Iterable[Atom]) -> None:
        self._atoms: tuple[Atom, ...] = tuple(atoms)
        if len(set(self._atoms)) != len(self._atoms):
            raise ValueError("universe atoms must be distinct")
        if not self._atoms:
            raise ValueError("universe must contain at least one atom")
        self._index = {atom: i for i, atom in enumerate(self._atoms)}

    @property
    def atoms(self) -> tuple[Atom, ...]:
        """All atoms in declaration order."""
        return self._atoms

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    def __contains__(self, atom: object) -> bool:
        return atom in self._index

    def index(self, atom: Atom) -> int:
        """Position of ``atom`` in the universe."""
        try:
            return self._index[atom]
        except KeyError:
            raise KeyError(f"atom {atom!r} is not in the universe") from None

    def atom(self, index: int) -> Atom:
        """Atom at ``index``."""
        return self._atoms[index]

    def all_tuples(self, arity: int) -> "TupleSet":
        """The full tuple space of the given arity."""
        if arity < 1:
            raise ValueError("arity must be >= 1")
        tuples: set[AtomTuple] = {()}
        for _ in range(arity):
            tuples = {t + (a,) for t in tuples for a in self._atoms}
        return TupleSet(self, arity, tuples)

    def tuple_set(self, arity: int, tuples: Iterable[Sequence[Atom]]) -> "TupleSet":
        """Build a tuple set, validating atoms and arity."""
        converted: set[AtomTuple] = set()
        for t in tuples:
            tup = tuple(t)
            if len(tup) != arity:
                raise ValueError(f"tuple {tup!r} does not have arity {arity}")
            for atom in tup:
                if atom not in self._index:
                    raise KeyError(f"atom {atom!r} is not in the universe")
            converted.add(tup)
        return TupleSet(self, arity, converted)

    def empty(self, arity: int) -> "TupleSet":
        """The empty tuple set of the given arity."""
        return TupleSet(self, arity, set())

    def singletons(self) -> list["TupleSet"]:
        """One singleton unary tuple set per atom, in order."""
        return [TupleSet(self, 1, {(a,)}) for a in self._atoms]

    def __repr__(self) -> str:
        return f"Universe({list(self._atoms)!r})"


class TupleSet:
    """A set of same-arity tuples over a universe."""

    def __init__(self, universe: Universe, arity: int, tuples: set[AtomTuple]) -> None:
        self._universe = universe
        self._arity = arity
        self._tuples = frozenset(tuples)

    @property
    def universe(self) -> Universe:
        """The universe over which the tuples range."""
        return self._universe

    @property
    def arity(self) -> int:
        """Arity shared by every tuple."""
        return self._arity

    def __iter__(self) -> Iterator[AtomTuple]:
        return iter(sorted(self._tuples))

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, item: object) -> bool:
        return item in self._tuples

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TupleSet):
            return NotImplemented
        return (
            self._universe is other._universe
            and self._arity == other._arity
            and self._tuples == other._tuples
        )

    def __hash__(self) -> int:
        return hash((id(self._universe), self._arity, self._tuples))

    def _check_compatible(self, other: "TupleSet") -> None:
        if self._universe is not other._universe:
            raise ValueError("tuple sets range over different universes")
        if self._arity != other._arity:
            raise ValueError("tuple sets have different arities")

    def union(self, other: "TupleSet") -> "TupleSet":
        """Set union."""
        self._check_compatible(other)
        return TupleSet(self._universe, self._arity, set(self._tuples | other._tuples))

    def intersection(self, other: "TupleSet") -> "TupleSet":
        """Set intersection."""
        self._check_compatible(other)
        return TupleSet(self._universe, self._arity, set(self._tuples & other._tuples))

    def difference(self, other: "TupleSet") -> "TupleSet":
        """Set difference."""
        self._check_compatible(other)
        return TupleSet(self._universe, self._arity, set(self._tuples - other._tuples))

    def issubset(self, other: "TupleSet") -> bool:
        """Subset test."""
        self._check_compatible(other)
        return self._tuples <= other._tuples

    def product(self, other: "TupleSet") -> "TupleSet":
        """Cartesian product (arities add)."""
        if self._universe is not other._universe:
            raise ValueError("tuple sets range over different universes")
        tuples = {a + b for a in self._tuples for b in other._tuples}
        return TupleSet(self._universe, self._arity + other._arity, tuples)

    def __repr__(self) -> str:
        return f"TupleSet(arity={self._arity}, tuples={sorted(self._tuples)!r})"
