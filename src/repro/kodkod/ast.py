"""Relational logic AST: expressions, formulas and declarations.

This is the language the MCA model is written in — a Python embedding of
the first-order relational core shared by Alloy and Kodkod:

* expressions denote relations: union ``+``, intersection ``&``, difference
  ``-``, product ``*``, ``~`` transpose, dot ``join``, transitive closure;
* formulas denote truth values: subset ``in_``, equality ``eq``,
  multiplicities ``some/no/one/lone``, boolean connectives and bounded
  quantifiers.

Operator overloading mirrors Alloy syntax where Python allows: ``a + b``,
``a & b``, ``a - b``, ``a * b`` (Alloy's ``->``), ``~a``, and for formulas
``f & g``, ``f | g``, ``~f`` (negation, as ``not`` cannot be overloaded).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence


class Expr:
    """Base class of relational expressions."""

    arity: int

    def __add__(self, other: "Expr") -> "Expr":
        return Union(self, other)

    def __and__(self, other: "Expr") -> "Expr":
        return Intersection(self, other)

    def __sub__(self, other: "Expr") -> "Expr":
        return Difference(self, other)

    def __mul__(self, other: "Expr") -> "Expr":
        return Product(self, other)

    def __invert__(self) -> "Expr":
        return Transpose(self)

    def join(self, other: "Expr") -> "Expr":
        """Relational (dot) join, Alloy's ``self . other``."""
        return Join(self, other)

    def product(self, other: "Expr") -> "Expr":
        """Cartesian product, Alloy's ``self -> other``."""
        return Product(self, other)

    def union(self, other: "Expr") -> "Expr":
        """Set union (same as ``self + other``)."""
        return Union(self, other)

    def intersection(self, other: "Expr") -> "Expr":
        """Set intersection (same as ``self & other``)."""
        return Intersection(self, other)

    def difference(self, other: "Expr") -> "Expr":
        """Set difference (same as ``self - other``)."""
        return Difference(self, other)

    def closure(self) -> "Expr":
        """Transitive closure ``^self`` (binary relations only)."""
        return Closure(self)

    def reflexive_closure(self) -> "Expr":
        """Reflexive-transitive closure ``*self``."""
        return Union(Closure(self), Iden())

    # --- formula constructors -----------------------------------------

    def in_(self, other: "Expr") -> "Formula":
        """Subset formula, Alloy's ``self in other``."""
        return Subset(self, other)

    def eq(self, other: "Expr") -> "Formula":
        """Equality formula."""
        return Equal(self, other)

    def neq(self, other: "Expr") -> "Formula":
        """Negated equality."""
        return Not(Equal(self, other))

    def some(self) -> "Formula":
        """Non-emptiness."""
        return Some(self)

    def no(self) -> "Formula":
        """Emptiness."""
        return No(self)

    def one(self) -> "Formula":
        """Exactly one tuple."""
        return One(self)

    def lone(self) -> "Formula":
        """At most one tuple."""
        return Lone(self)

    def count_eq(self, n: int) -> "Formula":
        """Cardinality equality ``#self = n`` (Alloy's ``#``)."""
        return CardinalityEq(self, n)

    def count_ge(self, n: int) -> "Formula":
        """Cardinality lower bound ``#self >= n``."""
        return CardinalityGe(self, n)


class Relation(Expr):
    """A named free relation (bounded by a :class:`~repro.kodkod.bounds.Bounds`)."""

    def __init__(self, name: str, arity: int) -> None:
        if arity < 1:
            raise ValueError("relation arity must be >= 1")
        self.name = name
        self.arity = arity

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, arity={self.arity})"


class Variable(Expr):
    """A quantified variable, denoting a singleton unary relation."""

    arity = 1

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


class Univ(Expr):
    """The universal unary relation (every atom)."""

    arity = 1

    def __repr__(self) -> str:
        return "Univ()"


class Iden(Expr):
    """The binary identity relation over the universe."""

    arity = 2

    def __repr__(self) -> str:
        return "Iden()"


class NoneExpr(Expr):
    """The empty relation of a given arity."""

    def __init__(self, arity: int = 1) -> None:
        if arity < 1:
            raise ValueError("arity must be >= 1")
        self.arity = arity

    def __repr__(self) -> str:
        return f"NoneExpr(arity={self.arity})"


class _BinaryExpr(Expr):
    """Shared plumbing for same-arity binary operators."""

    op_name = "?"

    def __init__(self, left: Expr, right: Expr) -> None:
        if left.arity != right.arity:
            raise ValueError(
                f"{self.op_name} requires equal arities, got "
                f"{left.arity} and {right.arity}"
            )
        self.left = left
        self.right = right
        self.arity = left.arity

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.left!r}, {self.right!r})"


class Union(_BinaryExpr):
    """Set union ``left + right``."""

    op_name = "union"


class Intersection(_BinaryExpr):
    """Set intersection ``left & right``."""

    op_name = "intersection"


class Difference(_BinaryExpr):
    """Set difference ``left - right``."""

    op_name = "difference"


class Product(Expr):
    """Cartesian product ``left -> right`` (arities add)."""

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right
        self.arity = left.arity + right.arity

    def __repr__(self) -> str:
        return f"Product({self.left!r}, {self.right!r})"


class Join(Expr):
    """Relational join ``left . right`` (arities add minus two)."""

    def __init__(self, left: Expr, right: Expr) -> None:
        arity = left.arity + right.arity - 2
        if arity < 1:
            raise ValueError("join would produce arity < 1")
        self.left = left
        self.right = right
        self.arity = arity

    def __repr__(self) -> str:
        return f"Join({self.left!r}, {self.right!r})"


class Transpose(Expr):
    """Transpose of a binary relation."""

    arity = 2

    def __init__(self, inner: Expr) -> None:
        if inner.arity != 2:
            raise ValueError("transpose requires a binary relation")
        self.inner = inner

    def __repr__(self) -> str:
        return f"Transpose({self.inner!r})"


class Closure(Expr):
    """Transitive closure of a binary relation."""

    arity = 2

    def __init__(self, inner: Expr) -> None:
        if inner.arity != 2:
            raise ValueError("closure requires a binary relation")
        self.inner = inner

    def __repr__(self) -> str:
        return f"Closure({self.inner!r})"


class IfExpr(Expr):
    """Conditional expression ``cond => then_expr else else_expr``."""

    def __init__(self, cond: "Formula", then_expr: Expr, else_expr: Expr) -> None:
        if then_expr.arity != else_expr.arity:
            raise ValueError("conditional branches must have equal arities")
        self.cond = cond
        self.then_expr = then_expr
        self.else_expr = else_expr
        self.arity = then_expr.arity

    def __repr__(self) -> str:
        return f"IfExpr({self.cond!r}, {self.then_expr!r}, {self.else_expr!r})"


class Comprehension(Expr):
    """Set comprehension ``{ x1: D1, ... | body }`` (unary variables)."""

    def __init__(self, decls: Sequence[tuple["Variable", Expr]], body: "Formula") -> None:
        if not decls:
            raise ValueError("comprehension requires at least one declaration")
        for _, domain in decls:
            if domain.arity != 1:
                raise ValueError("comprehension domains must be unary")
        self.decls = list(decls)
        self.body = body
        self.arity = len(decls)

    def __repr__(self) -> str:
        return f"Comprehension({self.decls!r}, {self.body!r})"


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


class Formula:
    """Base class of relational formulas."""

    def __and__(self, other: "Formula") -> "Formula":
        return And([self, other])

    def __or__(self, other: "Formula") -> "Formula":
        return Or([self, other])

    def __invert__(self) -> "Formula":
        return Not(self)

    def implies(self, other: "Formula") -> "Formula":
        """Material implication."""
        return Or([Not(self), other])

    def iff(self, other: "Formula") -> "Formula":
        """Biconditional."""
        return And([self.implies(other), other.implies(self)])


class TrueF(Formula):
    """The true formula."""

    def __repr__(self) -> str:
        return "TrueF()"


class FalseF(Formula):
    """The false formula."""

    def __repr__(self) -> str:
        return "FalseF()"


class Subset(Formula):
    """``left in right``."""

    def __init__(self, left: Expr, right: Expr) -> None:
        if left.arity != right.arity:
            raise ValueError("subset requires equal arities")
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"Subset({self.left!r}, {self.right!r})"


class Equal(Formula):
    """``left = right``."""

    def __init__(self, left: Expr, right: Expr) -> None:
        if left.arity != right.arity:
            raise ValueError("equality requires equal arities")
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"Equal({self.left!r}, {self.right!r})"


class _MultiplicityFormula(Formula):
    def __init__(self, expr: Expr) -> None:
        self.expr = expr

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.expr!r})"


class Some(_MultiplicityFormula):
    """``some expr`` — at least one tuple."""


class No(_MultiplicityFormula):
    """``no expr`` — empty."""


class One(_MultiplicityFormula):
    """``one expr`` — exactly one tuple."""


class Lone(_MultiplicityFormula):
    """``lone expr`` — at most one tuple."""


class CardinalityEq(Formula):
    """``#expr = count``."""

    def __init__(self, expr: Expr, count: int) -> None:
        if count < 0:
            raise ValueError("cardinality must be non-negative")
        self.expr = expr
        self.count = count

    def __repr__(self) -> str:
        return f"CardinalityEq({self.expr!r}, {self.count})"


class CardinalityGe(Formula):
    """``#expr >= count``."""

    def __init__(self, expr: Expr, count: int) -> None:
        if count < 0:
            raise ValueError("cardinality must be non-negative")
        self.expr = expr
        self.count = count

    def __repr__(self) -> str:
        return f"CardinalityGe({self.expr!r}, {self.count})"


class Not(Formula):
    """Negation."""

    def __init__(self, inner: Formula) -> None:
        self.inner = inner

    def __repr__(self) -> str:
        return f"Not({self.inner!r})"


class And(Formula):
    """N-ary conjunction."""

    def __init__(self, parts: Iterable[Formula]) -> None:
        self.parts = list(parts)

    def __repr__(self) -> str:
        return f"And({self.parts!r})"


class Or(Formula):
    """N-ary disjunction."""

    def __init__(self, parts: Iterable[Formula]) -> None:
        self.parts = list(parts)

    def __repr__(self) -> str:
        return f"Or({self.parts!r})"


class _Quantified(Formula):
    """Shared plumbing for bounded quantifiers over unary domains."""

    def __init__(self, decls: Sequence[tuple[Variable, Expr]], body: Formula) -> None:
        if not decls:
            raise ValueError("quantifier requires at least one declaration")
        for _, domain in decls:
            if domain.arity != 1:
                raise ValueError("quantifier domains must be unary")
        self.decls = list(decls)
        self.body = body

    def __repr__(self) -> str:
        names = ", ".join(v.name for v, _ in self.decls)
        return f"{type(self).__name__}([{names}], {self.body!r})"


class ForAll(_Quantified):
    """``all x: D | body``."""


class Exists(_Quantified):
    """``some x: D | body``."""


# ---------------------------------------------------------------------------
# Convenience constructors (module-level, Alloy-flavoured)
# ---------------------------------------------------------------------------


def relation(name: str, arity: int = 1) -> Relation:
    """Declare a free relation."""
    return Relation(name, arity)


def variable(name: str) -> Variable:
    """Declare a quantified variable."""
    return Variable(name)


def forall(*args) -> Formula:
    """``forall(x, D, body)`` or ``forall((x, D), (y, E), body)``."""
    decls, body = _split_quantifier_args(args)
    return ForAll(decls, body)


def exists(*args) -> Formula:
    """``exists(x, D, body)`` or ``exists((x, D), (y, E), body)``."""
    decls, body = _split_quantifier_args(args)
    return Exists(decls, body)


def _split_quantifier_args(args: tuple) -> tuple[list[tuple[Variable, Expr]], Formula]:
    if len(args) == 3 and isinstance(args[0], Variable):
        return [(args[0], args[1])], args[2]
    *decl_args, body = args
    decls = [(v, d) for v, d in decl_args]
    if not isinstance(body, Formula):
        raise TypeError("last argument must be the quantifier body formula")
    return decls, body


def comprehension(*args) -> Comprehension:
    """``comprehension(x, D, body)`` or multi-decl variant."""
    decls, body = _split_quantifier_args(args)
    return Comprehension(decls, body)


def and_all(parts: Iterable[Formula]) -> Formula:
    """Conjunction of an iterable of formulas (True when empty)."""
    parts = list(parts)
    if not parts:
        return TrueF()
    if len(parts) == 1:
        return parts[0]
    return And(parts)


def or_any(parts: Iterable[Formula]) -> Formula:
    """Disjunction of an iterable of formulas (False when empty)."""
    parts = list(parts)
    if not parts:
        return FalseF()
    if len(parts) == 1:
        return parts[0]
    return Or(parts)


def all_different(exprs: Sequence[Expr]) -> Formula:
    """Pairwise disjointness/distinctness, Alloy's ``disj`` keyword."""
    clauses = [
        Not(Equal(a, b)) for a, b in itertools.combinations(exprs, 2)
    ]
    return and_all(clauses)
