"""The model-finding engine: solve and enumerate relational problems.

This is the public face of the mini-Kodkod stack — the equivalent of
``kodkod.engine.Solver``.  It ties together translation
(:mod:`repro.kodkod.translate`), SAT solving (:mod:`repro.sat`) and instance
extraction (:mod:`repro.kodkod.instance`).

The core abstraction is the :class:`Session`: one translation, one live
:class:`~repro.sat.solver.Solver`, reused across queries.  Follow-up
queries go through *assumptions* and enumeration goes through *blocking
clauses* on the same solver, so learned clauses are retained between
queries instead of being thrown away by a rebuild.  ``solve``,
``iter_solutions`` and ``count_solutions`` are thin conveniences over a
session.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.kodkod import ast
from repro.kodkod.bounds import Bounds
from repro.kodkod.instance import Instance, extract_instance
from repro.kodkod.symmetry import DEFAULT_SBP_LENGTH
from repro.kodkod.translate import Translation, TranslationStats, Translator
from repro.sat.solver import Solver
from repro.sat.types import Lit, Status


@dataclass
class Solution:
    """Outcome of a model-finding query."""

    satisfiable: bool
    instance: Instance | None
    stats: TranslationStats
    solve_seconds: float
    solver_stats: dict = field(default_factory=dict)
    """Cumulative search statistics of the deciding solver (conflicts,
    decisions, clause-database reductions, ...)."""

    @property
    def unsatisfiable(self) -> bool:
        """Convenience negation of :attr:`satisfiable`."""
        return not self.satisfiable


def translate(formula: ast.Formula, bounds: Bounds,
              symmetry: int = 0) -> Translation:
    """Translate a problem without solving it (used by encoding benchmarks)."""
    return Translator(bounds, symmetry=symmetry).translate(formula)


class Session:
    """An incremental model-finding session over one translated problem.

    The session keeps a single solver alive for its whole lifetime:

    * :meth:`solve` decides the problem (optionally under assumptions)
      without destroying state — clauses learned by one query speed up the
      next;
    * :meth:`block_current` excludes the most recent model with a blocking
      clause over the primary variables, which is how :meth:`iter_solutions`
      walks the model space without ever rebuilding the solver;
    * :meth:`assume_tuple` turns a (relation, tuple) presence/absence into
      an assumption literal for hypothetical queries.

    ``symmetry`` is the lex-leader predicate length passed to the
    translator (0 disables breaking; see :mod:`repro.kodkod.symmetry`).
    ``kernel`` selects the propagation engine of the session's solver
    (``"pure"`` or ``"vector"``; see :mod:`repro.sat.kernel`) and is
    ignored when an explicit ``solver`` is injected.

    .. warning::
       Symmetry breaking restricts the model space to one canonical
       representative per orbit, so combining ``symmetry > 0`` with
       assumptions (:meth:`assume_tuple`) can refute assumptions that
       describe a *non-canonical* model: the answer is then "no
       canonical model satisfies this", not "no model does".  Sessions
       meant for hypothetical tuple-level queries should be built with
       ``symmetry=0`` (the default).
    """

    def __init__(self, formula: ast.Formula, bounds: Bounds,
                 symmetry: int = 0, solver: Solver | None = None,
                 kernel: str = "pure") -> None:
        self._translation = Translator(bounds, symmetry=symmetry).translate(formula)
        self._solver = solver if solver is not None else Solver(kernel=kernel)
        self._ok = self._solver.add_cnf(self._translation.cnf)
        self._primary_vars = self._translation.primary_vars()
        self._last_model = None
        self._solve_seconds_total = 0.0
        self._solve_propagations_total = 0
        # Blocking clauses installed while assumptions were active are
        # *conditional*: each assumption set gets activation literals that
        # scope its blocking clauses to re-solves under the same set.
        self._scoped_blockers: dict[tuple[Lit, ...], list[Lit]] = {}
        self._last_assumption_key: tuple[Lit, ...] = ()

    @property
    def translation(self) -> Translation:
        """The translation this session decides."""
        return self._translation

    @property
    def solver(self) -> Solver:
        """The live solver (one per session, shared across queries)."""
        return self._solver

    def clause_db_stats(self) -> dict[str, float]:
        """Clause-database statistics of the live solver."""
        return self._solver.clause_db_stats()

    def solver_stats(self) -> dict:
        """Cumulative search statistics, with the derived throughput rate
        (``propagations_per_second``) over this session's solve calls.

        The rate counts only propagations performed *during* solve calls
        (clause loading and blocking-clause installation propagate too,
        but outside the timed window)."""
        stats = dict(self._solver.stats)
        stats["kernel"] = self._solver.kernel
        if self._solve_seconds_total > 0:
            stats["propagations_per_second"] = round(
                self._solve_propagations_total / self._solve_seconds_total
            )
        return stats

    def assume_tuple(self, relation: ast.Relation, atoms: tuple[str, ...],
                     present: bool = True) -> Lit:
        """Assumption literal asserting a free tuple's presence/absence.

        Raises ``KeyError`` for tuples that are not free under the bounds
        (inside the lower bound or outside the upper bound): their value is
        fixed by translation and cannot be assumed away.

        With ``symmetry > 0`` the query is answered over *canonical*
        models only — an assumption satisfied solely by non-canonical
        models comes back UNSAT (see the class-level warning).
        """
        universe = self._translation.bounds.universe
        index = tuple(universe.index(a) for a in atoms)
        try:
            node = self._translation.tuple_inputs[(relation, index)]
        except KeyError:
            raise KeyError(
                f"tuple {atoms!r} of {relation.name!r} is not a free tuple"
            ) from None
        var = self._translation.input_vars[node]
        return var if present else -var

    def solve(self, assumptions: Iterable[Lit] = ()) -> Solution:
        """Decide the problem under optional assumption literals.

        Blocking clauses installed by :meth:`block_current` after an
        assumption-based solve apply only to later solves under the *same*
        assumption set (see :meth:`block_current`); assumption-free solves
        are blocked only by assumption-free blocking clauses.
        """
        started = time.perf_counter()
        assumption_list = list(assumptions)
        key = tuple(sorted(assumption_list))
        # Activate the blocking clauses scoped to this assumption set.
        effective = assumption_list + self._scoped_blockers.get(key, [])
        propagations_before = self._solver.stats["propagations"]
        if not self._ok:
            status = Status.UNSAT
        else:
            status = self._solver.solve(effective)
        self._last_assumption_key = key
        elapsed = time.perf_counter() - started
        self._solve_seconds_total += elapsed
        self._solve_propagations_total += (
            self._solver.stats["propagations"] - propagations_before
        )
        solver_stats = self.solver_stats()
        if status is Status.SAT:
            self._last_model = self._solver.model()
            instance = extract_instance(self._translation, self._last_model)
            return Solution(True, instance, self._translation.stats, elapsed,
                            solver_stats)
        self._last_model = None
        return Solution(False, None, self._translation.stats, elapsed,
                        solver_stats)

    def block_current(self) -> bool:
        """Exclude the most recent model from future queries.

        Adds a blocking clause over the primary variables (the relation
        tuples, not auxiliary Tseitin variables), so the next :meth:`solve`
        yields a semantically different instance.  Returns False when the
        model space is exhausted (no model to block, an empty projection,
        or the solver became UNSAT).

        A model found under assumptions exists only *under* them, so
        blocking it must not contaminate assumption-free queries: in that
        case the blocking clause gets a fresh activation literal and is
        enforced only on later :meth:`solve` calls with the exact same
        assumption set.  Assumption-free blocking clauses stay permanent
        (the :meth:`iter_solutions` enumeration behaviour).
        """
        if self._last_model is None or not self._primary_vars:
            return False
        model = self._last_model
        blocking = [-v if model[v] else v for v in self._primary_vars]
        self._last_model = None
        key = self._last_assumption_key
        if key:
            # Conditional clause: (blocking OR NOT selector).  The clause
            # is inert unless the selector is assumed true, which happens
            # exactly on re-solves under the same assumption set.
            selector = self._solver.new_var()
            self._scoped_blockers.setdefault(key, []).append(selector)
            return self._solver.add_clause(blocking + [-selector])
        if not self._solver.add_clause(blocking):
            self._ok = False
            return False
        return True

    def iter_solutions(self, limit: int | None = None) -> Iterator[Instance]:
        """Enumerate instances, distinct on the bounded relations' valuations."""
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative")
        produced = 0
        while limit is None or produced < limit:
            solution = self.solve()
            if not solution.satisfiable:
                return
            yield solution.instance
            produced += 1
            if not self.block_current():
                return


class DeltaSession:
    """A :class:`Session` specialized for *delta re-solves*: deciding a
    stream of bound-narrowed variants of one anchor problem on a single
    live solver.

    The anchor translation assigns every free tuple a CNF variable, so a
    variant that only narrows the bounds — dropping free tuples from an
    upper bound, promoting free tuples into a lower bound — is exactly an
    assumption set over the anchor's variables: no re-translation, and
    clauses learned by earlier queries keep working for later ones.
    :meth:`assumptions_for` performs that mapping; :meth:`solve` decides
    under the resulting assumptions.

    .. warning::
       Symmetry breaking is hard-wired to 0 here, mirroring the
       :class:`Session` caveat: the lex-leader predicate is computed from
       the *anchor* bounds and restricts the model space to canonical
       representatives, so under narrowed bounds it could refute variants
       whose only models are non-canonical for the anchor.  Callers that
       want symmetry breaking must fall back to a fresh full translation
       (the façade's ``solve_delta`` does exactly that).
    """

    def __init__(self, formula: ast.Formula, bounds: Bounds,
                 kernel: str = "pure") -> None:
        self._session = Session(formula, bounds, symmetry=0, kernel=kernel)
        self._relations = {
            (rel.name, rel.arity): rel for rel in bounds.relations()
        }

    @property
    def session(self) -> Session:
        """The underlying incremental session (one live solver)."""
        return self._session

    @property
    def translation(self) -> Translation:
        """The anchor translation every delta query is answered over."""
        return self._session.translation

    def assumptions_for(self, dropped: Iterable[tuple[str, int, tuple]],
                        promoted: Iterable[tuple[str, int, tuple]],
                        ) -> list[Lit] | None:
        """Assumption literals realizing a bound-narrowing edit.

        ``dropped``/``promoted`` are ``(relation name, arity, atoms)``
        triples: tuples removed from an upper bound (assumed absent) and
        tuples promoted into a lower bound (assumed present).  Returns
        ``None`` when any edit cannot be expressed over the anchor
        translation — an unknown relation, or a free tuple the translator
        never materialized a variable for (relations unmentioned by the
        formula are translated lazily) — in which case the caller must
        fall back to a fresh full solve.
        """
        literals: list[Lit] = []
        try:
            for name, arity, atoms in promoted:
                relation = self._relations[(name, arity)]
                literals.append(self._session.assume_tuple(
                    relation, tuple(atoms), present=True))
            for name, arity, atoms in dropped:
                relation = self._relations[(name, arity)]
                literals.append(self._session.assume_tuple(
                    relation, tuple(atoms), present=False))
        except KeyError:
            return None
        return literals

    def solve(self, assumptions: Iterable[Lit] = ()) -> Solution:
        """Decide the anchor problem under delta assumptions."""
        return self._session.solve(assumptions)


def _solution_from_result(result) -> Solution:
    """Project a façade :class:`~repro.api.result.Result` back onto the
    legacy :class:`Solution` shape (the deprecation-shim converter)."""
    return Solution(
        satisfiable=result.satisfiable,
        instance=result.instance,
        stats=result.stats,
        solve_seconds=result.detail.get("solve_seconds", result.seconds),
        solver_stats=result.solver_stats,
    )


def solve(formula: ast.Formula, bounds: Bounds,
          symmetry: int = DEFAULT_SBP_LENGTH) -> Solution:
    """Deprecated: use :func:`repro.api.solve` (same verdict semantics).

    Thin shim over the façade — symmetry breaking stays on by default
    (verdict-preserving; pass ``symmetry=0`` to see every model) and the
    result is projected back onto the legacy :class:`Solution` shape.
    """
    warnings.warn(
        "repro.kodkod.engine.solve() is deprecated; use repro.api.solve()",
        DeprecationWarning, stacklevel=2,
    )
    # Imported lazily: the façade imports this module at load time.
    from repro.api.facade import solve as _api_solve

    return _solution_from_result(
        _api_solve(formula, bounds, symmetry=symmetry))


def iter_solutions(formula: ast.Formula, bounds: Bounds,
                   limit: int | None = None,
                   symmetry: int = 0) -> Iterator[Instance]:
    """Deprecated: use :func:`repro.api.enumerate`.

    Thin lazy shim over a :class:`Session` (the façade's enumerate path
    materializes its instance list; this generator streams).  Symmetry
    defaults to *off* so every model is produced.
    """
    warnings.warn(
        "repro.kodkod.engine.iter_solutions() is deprecated; use "
        "repro.api.enumerate()",
        DeprecationWarning, stacklevel=2,
    )
    session = Session(formula, bounds, symmetry=symmetry)
    yield from session.iter_solutions(limit)


def count_solutions(formula: ast.Formula, bounds: Bounds,
                    limit: int | None = None, symmetry: int = 0) -> int:
    """Deprecated: use ``len(repro.api.enumerate(...).instances)``."""
    warnings.warn(
        "repro.kodkod.engine.count_solutions() is deprecated; use "
        "repro.api.enumerate()",
        DeprecationWarning, stacklevel=2,
    )
    session = Session(formula, bounds, symmetry=symmetry)
    return sum(1 for _ in session.iter_solutions(limit))
