"""The model-finding engine: solve and enumerate relational problems.

This is the public face of the mini-Kodkod stack — the equivalent of
``kodkod.engine.Solver``.  It ties together translation
(:mod:`repro.kodkod.translate`), SAT solving (:mod:`repro.sat`) and instance
extraction (:mod:`repro.kodkod.instance`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator

from repro.kodkod import ast
from repro.kodkod.bounds import Bounds
from repro.kodkod.instance import Instance, extract_instance
from repro.kodkod.translate import Translation, TranslationStats, Translator
from repro.sat.solver import Solver
from repro.sat.types import Status


@dataclass
class Solution:
    """Outcome of a model-finding query."""

    satisfiable: bool
    instance: Instance | None
    stats: TranslationStats
    solve_seconds: float

    @property
    def unsatisfiable(self) -> bool:
        """Convenience negation of :attr:`satisfiable`."""
        return not self.satisfiable


def translate(formula: ast.Formula, bounds: Bounds) -> Translation:
    """Translate a problem without solving it (used by encoding benchmarks)."""
    return Translator(bounds).translate(formula)


def solve(formula: ast.Formula, bounds: Bounds) -> Solution:
    """Find one instance satisfying ``formula`` within ``bounds``."""
    translation = translate(formula, bounds)
    solver = Solver()
    started = time.perf_counter()
    if not solver.add_cnf(translation.cnf):
        status = Status.UNSAT
    else:
        status = solver.solve()
    elapsed = time.perf_counter() - started
    if status is Status.SAT:
        instance = extract_instance(translation, solver.model())
        return Solution(True, instance, translation.stats, elapsed)
    return Solution(False, None, translation.stats, elapsed)


def iter_solutions(formula: ast.Formula, bounds: Bounds,
                   limit: int | None = None) -> Iterator[Instance]:
    """Enumerate instances, distinct on the bounded relations' valuations."""
    if limit is not None and limit < 0:
        raise ValueError("limit must be non-negative")
    translation = translate(formula, bounds)
    solver = Solver()
    if not solver.add_cnf(translation.cnf):
        return
    primary_vars = sorted(
        translation.input_vars[node] for node in translation.tuple_inputs.values()
    )
    produced = 0
    while limit is None or produced < limit:
        if solver.solve() is not Status.SAT:
            return
        model = solver.model()
        yield extract_instance(translation, model)
        produced += 1
        if not primary_vars:
            return
        blocking = [-v if model[v] else v for v in primary_vars]
        if not solver.add_clause(blocking):
            return


def count_solutions(formula: ast.Formula, bounds: Bounds,
                    limit: int | None = None) -> int:
    """Count instances (up to ``limit``)."""
    return sum(1 for _ in iter_solutions(formula, bounds, limit))
