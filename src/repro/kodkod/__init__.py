"""Mini-Kodkod: a bounded relational model finder.

Plays the role Kodkod plays underneath the Alloy Analyzer: relational
formulas plus per-relation bounds are translated to boolean circuits and
then CNF, decided by the CDCL solver in :mod:`repro.sat`, and satisfying
assignments are lifted back to relational instances.
"""

from repro.kodkod.ast import (
    Expr,
    Formula,
    Iden,
    NoneExpr,
    Relation,
    TrueF,
    FalseF,
    Univ,
    Variable,
    all_different,
    and_all,
    comprehension,
    exists,
    forall,
    or_any,
    relation,
    variable,
)
from repro.kodkod.bounds import Bounds
from repro.kodkod.engine import (
    DeltaSession,
    Session,
    Solution,
    count_solutions,
    iter_solutions,
    solve,
    translate,
)
from repro.kodkod.evaluator import Evaluator, brute_force_instances
from repro.kodkod.instance import Instance, extract_instance
from repro.kodkod.symmetry import (
    DEFAULT_SBP_LENGTH,
    SymmetryInfo,
    atom_partition,
    break_predicates,
)
from repro.kodkod.translate import TranslationStats, Translator
from repro.kodkod.universe import TupleSet, Universe

__all__ = [
    "Bounds",
    "DEFAULT_SBP_LENGTH",
    "DeltaSession",
    "Session",
    "SymmetryInfo",
    "atom_partition",
    "break_predicates",
    "Evaluator",
    "Expr",
    "FalseF",
    "Formula",
    "Iden",
    "Instance",
    "NoneExpr",
    "Relation",
    "Solution",
    "TranslationStats",
    "Translator",
    "TrueF",
    "TupleSet",
    "Univ",
    "Universe",
    "Variable",
    "all_different",
    "and_all",
    "brute_force_instances",
    "comprehension",
    "count_solutions",
    "exists",
    "extract_instance",
    "forall",
    "iter_solutions",
    "or_any",
    "relation",
    "solve",
    "translate",
    "variable",
]
