"""Sparse boolean matrices: the denotation of relational expressions.

Following Kodkod's translation (Torlak & Jackson, TACAS'07), an arity-``k``
expression over a universe of ``n`` atoms denotes an ``n^k`` matrix of
boolean circuit nodes; relational operators become matrix operations.  The
matrices are sparse: absent cells are FALSE, which keeps the translation
proportional to the relations' upper bounds rather than the full tuple
space.

Operators build their result cell dict directly (no intermediate matrices,
no per-cell validation — indices flow from already-validated operands) and
go through the factory's binary ``and2``/``or2`` fast paths, so a chain of
relational operators allocates exactly one result dict per operator.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.kodkod.boolcircuit import FALSE, TRUE, BooleanFactory

IndexTuple = tuple[int, ...]


class BoolMatrix:
    """A sparse matrix of circuit nodes indexed by atom-index tuples."""

    __slots__ = ("factory", "universe_size", "arity", "_cells")

    def __init__(
        self,
        factory: BooleanFactory,
        universe_size: int,
        arity: int,
        cells: dict[IndexTuple, int] | None = None,
    ) -> None:
        if arity < 1:
            raise ValueError("arity must be >= 1")
        if universe_size < 1:
            raise ValueError("universe size must be >= 1")
        self.factory = factory
        self.universe_size = universe_size
        self.arity = arity
        self._cells: dict[IndexTuple, int] = {}
        if cells:
            for index, node in cells.items():
                self._set(index, node)

    @classmethod
    def _raw(cls, factory: BooleanFactory, universe_size: int, arity: int,
             cells: dict[IndexTuple, int]) -> "BoolMatrix":
        """Internal constructor taking ownership of a validated cell dict."""
        matrix = cls.__new__(cls)
        matrix.factory = factory
        matrix.universe_size = universe_size
        matrix.arity = arity
        matrix._cells = cells
        return matrix

    def _validate(self, index: IndexTuple) -> None:
        if len(index) != self.arity:
            raise ValueError(f"index {index!r} does not have arity {self.arity}")
        for component in index:
            if not 0 <= component < self.universe_size:
                raise IndexError(f"index component {component} out of range")

    def _set(self, index: IndexTuple, node: int) -> None:
        self._validate(index)
        if node == FALSE:
            self._cells.pop(index, None)
        else:
            self._cells[index] = node

    def get(self, index: IndexTuple) -> int:
        """Circuit node for a cell (FALSE when absent)."""
        self._validate(index)
        return self._cells.get(index, FALSE)

    def set(self, index: IndexTuple, node: int) -> None:
        """Assign a cell."""
        self._set(index, node)

    def cells(self) -> Iterator[tuple[IndexTuple, int]]:
        """Iterate over (index, node) for possibly-true cells."""
        return iter(self._cells.items())

    def density(self) -> int:
        """Number of possibly-true cells."""
        return len(self._cells)

    def _check_compatible(self, other: "BoolMatrix") -> None:
        if self.factory is not other.factory:
            raise ValueError("matrices belong to different factories")
        if self.universe_size != other.universe_size:
            raise ValueError("matrices range over different universes")

    def _same_shape(self, other: "BoolMatrix") -> None:
        self._check_compatible(other)
        if self.arity != other.arity:
            raise ValueError("matrices have different arities")

    # ------------------------------------------------------------------
    # Relational operations
    # ------------------------------------------------------------------

    def union(self, other: "BoolMatrix") -> "BoolMatrix":
        """Pointwise OR."""
        self._same_shape(other)
        or2 = self.factory.or2
        cells = dict(self._cells)
        for index, node in other._cells.items():
            mine = cells.get(index)
            cells[index] = node if mine is None else or2(mine, node)
        return BoolMatrix._raw(self.factory, self.universe_size, self.arity,
                               cells)

    def intersection(self, other: "BoolMatrix") -> "BoolMatrix":
        """Pointwise AND."""
        self._same_shape(other)
        and2 = self.factory.and2
        other_cells = other._cells
        cells: dict[IndexTuple, int] = {}
        for index, node in self._cells.items():
            theirs = other_cells.get(index)
            if theirs is None:
                continue
            conj = and2(node, theirs)
            if conj != FALSE:
                cells[index] = conj
        return BoolMatrix._raw(self.factory, self.universe_size, self.arity,
                               cells)

    def difference(self, other: "BoolMatrix") -> "BoolMatrix":
        """Pointwise AND-NOT."""
        self._same_shape(other)
        and2 = self.factory.and2
        other_cells = other._cells
        cells: dict[IndexTuple, int] = {}
        for index, node in self._cells.items():
            theirs = other_cells.get(index)
            diff = node if theirs is None else and2(node, -theirs)
            if diff != FALSE:
                cells[index] = diff
        return BoolMatrix._raw(self.factory, self.universe_size, self.arity,
                               cells)

    def product(self, other: "BoolMatrix") -> "BoolMatrix":
        """Cartesian product; arities add."""
        self._check_compatible(other)
        and2 = self.factory.and2
        other_items = list(other._cells.items())
        cells: dict[IndexTuple, int] = {}
        for left_index, left_node in self._cells.items():
            for right_index, right_node in other_items:
                node = and2(left_node, right_node)
                if node != FALSE:
                    cells[left_index + right_index] = node
        return BoolMatrix._raw(self.factory, self.universe_size,
                               self.arity + other.arity, cells)

    def join(self, other: "BoolMatrix") -> "BoolMatrix":
        """Relational join: contract the last column of self with the first
        column of other."""
        self._check_compatible(other)
        arity = self.arity + other.arity - 2
        if arity < 1:
            raise ValueError("join would produce arity < 1")
        factory = self.factory
        and2 = factory.and2
        # Group other's cells by leading atom for the contraction.
        by_head: dict[int, list[tuple[IndexTuple, int]]] = {}
        for right_index, right_node in other._cells.items():
            by_head.setdefault(right_index[0], []).append(
                (right_index[1:], right_node)
            )
        accum: dict[IndexTuple, list[int]] = {}
        for left_index, left_node in self._cells.items():
            matches = by_head.get(left_index[-1])
            if not matches:
                continue
            prefix = left_index[:-1]
            for right_rest, right_node in matches:
                node = and2(left_node, right_node)
                if node == FALSE:
                    continue
                index = prefix + right_rest
                nodes = accum.get(index)
                if nodes is None:
                    accum[index] = [node]
                else:
                    nodes.append(node)
        or_ = factory.or_
        cells: dict[IndexTuple, int] = {}
        for index, nodes in accum.items():
            node = nodes[0] if len(nodes) == 1 else or_(nodes)
            if node != FALSE:
                cells[index] = node
        return BoolMatrix._raw(factory, self.universe_size, arity, cells)

    def transpose(self) -> "BoolMatrix":
        """Transpose (binary only)."""
        if self.arity != 2:
            raise ValueError("transpose requires a binary matrix")
        cells = {(b, a): node for (a, b), node in self._cells.items()}
        return BoolMatrix._raw(self.factory, self.universe_size, 2, cells)

    def closure(self) -> "BoolMatrix":
        """Transitive closure by iterative squaring (binary only)."""
        if self.arity != 2:
            raise ValueError("closure requires a binary matrix")
        current = self
        steps = 1
        while steps < self.universe_size:
            current = current.union(current.join(current))
            steps *= 2
        return current

    def identity_union(self) -> "BoolMatrix":
        """Union with the identity matrix (for reflexive closure)."""
        if self.arity != 2:
            raise ValueError("identity union requires a binary matrix")
        cells = dict(self._cells)
        for i in range(self.universe_size):
            cells[(i, i)] = TRUE
        return BoolMatrix._raw(self.factory, self.universe_size, 2, cells)

    # ------------------------------------------------------------------
    # Comparison / multiplicity circuits
    # ------------------------------------------------------------------

    def subset_of(self, other: "BoolMatrix") -> int:
        """Circuit node asserting self ⊆ other."""
        self._same_shape(other)
        or2 = self.factory.or2
        other_cells = other._cells
        implications = [
            or2(-node, other_cells.get(index, FALSE))
            for index, node in self._cells.items()
        ]
        return self.factory.and_(implications)

    def equals(self, other: "BoolMatrix") -> int:
        """Circuit node asserting pointwise equality."""
        return self.factory.and2(self.subset_of(other), other.subset_of(self))

    def some(self) -> int:
        """Circuit node asserting at least one true cell."""
        return self.factory.or_(self._cells.values())

    def no(self) -> int:
        """Circuit node asserting emptiness."""
        return -self.some()

    def lone(self) -> int:
        """Circuit node asserting at most one true cell (pairwise)."""
        or2 = self.factory.or2
        nodes = list(self._cells.values())
        pair_exclusions = [
            or2(-a, -b) for a, b in itertools.combinations(nodes, 2)
        ]
        return self.factory.and_(pair_exclusions)

    def one(self) -> int:
        """Circuit node asserting exactly one true cell."""
        return self.factory.and2(self.some(), self.lone())

    def count_ge(self, n: int) -> int:
        """Circuit node asserting at least ``n`` true cells."""
        if n <= 0:
            return TRUE
        nodes = list(self._cells.values())
        if n > len(nodes):
            return FALSE
        choices = [
            self.factory.and_(combo) for combo in itertools.combinations(nodes, n)
        ]
        return self.factory.or_(choices)

    def count_eq(self, n: int) -> int:
        """Circuit node asserting exactly ``n`` true cells."""
        at_least = self.count_ge(n)
        more = self.count_ge(n + 1)
        return self.factory.and2(at_least, -more)

    def __repr__(self) -> str:
        return (
            f"BoolMatrix(arity={self.arity}, size={self.universe_size}, "
            f"density={self.density()})"
        )
