"""Sparse boolean matrices: the denotation of relational expressions.

Following Kodkod's translation (Torlak & Jackson, TACAS'07), an arity-``k``
expression over a universe of ``n`` atoms denotes an ``n^k`` matrix of
boolean circuit nodes; relational operators become matrix operations.  The
matrices are sparse: absent cells are FALSE, which keeps the translation
proportional to the relations' upper bounds rather than the full tuple
space.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.kodkod.boolcircuit import FALSE, TRUE, BooleanFactory

IndexTuple = tuple[int, ...]


class BoolMatrix:
    """A sparse matrix of circuit nodes indexed by atom-index tuples."""

    def __init__(
        self,
        factory: BooleanFactory,
        universe_size: int,
        arity: int,
        cells: dict[IndexTuple, int] | None = None,
    ) -> None:
        if arity < 1:
            raise ValueError("arity must be >= 1")
        if universe_size < 1:
            raise ValueError("universe size must be >= 1")
        self.factory = factory
        self.universe_size = universe_size
        self.arity = arity
        self._cells: dict[IndexTuple, int] = {}
        if cells:
            for index, node in cells.items():
                self._set(index, node)

    def _validate(self, index: IndexTuple) -> None:
        if len(index) != self.arity:
            raise ValueError(f"index {index!r} does not have arity {self.arity}")
        for component in index:
            if not 0 <= component < self.universe_size:
                raise IndexError(f"index component {component} out of range")

    def _set(self, index: IndexTuple, node: int) -> None:
        self._validate(index)
        if node == FALSE:
            self._cells.pop(index, None)
        else:
            self._cells[index] = node

    def get(self, index: IndexTuple) -> int:
        """Circuit node for a cell (FALSE when absent)."""
        self._validate(index)
        return self._cells.get(index, FALSE)

    def set(self, index: IndexTuple, node: int) -> None:
        """Assign a cell."""
        self._set(index, node)

    def cells(self) -> Iterator[tuple[IndexTuple, int]]:
        """Iterate over (index, node) for possibly-true cells."""
        return iter(self._cells.items())

    def density(self) -> int:
        """Number of possibly-true cells."""
        return len(self._cells)

    def _check_compatible(self, other: "BoolMatrix") -> None:
        if self.factory is not other.factory:
            raise ValueError("matrices belong to different factories")
        if self.universe_size != other.universe_size:
            raise ValueError("matrices range over different universes")

    def _same_shape(self, other: "BoolMatrix") -> None:
        self._check_compatible(other)
        if self.arity != other.arity:
            raise ValueError("matrices have different arities")

    # ------------------------------------------------------------------
    # Relational operations
    # ------------------------------------------------------------------

    def union(self, other: "BoolMatrix") -> "BoolMatrix":
        """Pointwise OR."""
        self._same_shape(other)
        result = BoolMatrix(self.factory, self.universe_size, self.arity)
        for index in set(self._cells) | set(other._cells):
            result._set(
                index, self.factory.or_([self.get(index), other.get(index)])
            )
        return result

    def intersection(self, other: "BoolMatrix") -> "BoolMatrix":
        """Pointwise AND."""
        self._same_shape(other)
        result = BoolMatrix(self.factory, self.universe_size, self.arity)
        for index in set(self._cells) & set(other._cells):
            result._set(
                index, self.factory.and_([self.get(index), other.get(index)])
            )
        return result

    def difference(self, other: "BoolMatrix") -> "BoolMatrix":
        """Pointwise AND-NOT."""
        self._same_shape(other)
        result = BoolMatrix(self.factory, self.universe_size, self.arity)
        for index, node in self._cells.items():
            result._set(index, self.factory.and_([node, -other.get(index)]))
        return result

    def product(self, other: "BoolMatrix") -> "BoolMatrix":
        """Cartesian product; arities add."""
        self._check_compatible(other)
        result = BoolMatrix(
            self.factory, self.universe_size, self.arity + other.arity
        )
        for left_index, left_node in self._cells.items():
            for right_index, right_node in other._cells.items():
                result._set(
                    left_index + right_index,
                    self.factory.and_([left_node, right_node]),
                )
        return result

    def join(self, other: "BoolMatrix") -> "BoolMatrix":
        """Relational join: contract the last column of self with the first
        column of other."""
        self._check_compatible(other)
        arity = self.arity + other.arity - 2
        if arity < 1:
            raise ValueError("join would produce arity < 1")
        result = BoolMatrix(self.factory, self.universe_size, arity)
        # Group other's cells by leading atom for the contraction.
        by_head: dict[int, list[tuple[IndexTuple, int]]] = {}
        for right_index, right_node in other._cells.items():
            by_head.setdefault(right_index[0], []).append(
                (right_index[1:], right_node)
            )
        accum: dict[IndexTuple, list[int]] = {}
        for left_index, left_node in self._cells.items():
            tail = left_index[-1]
            for right_rest, right_node in by_head.get(tail, []):
                index = left_index[:-1] + right_rest
                accum.setdefault(index, []).append(
                    self.factory.and_([left_node, right_node])
                )
        for index, nodes in accum.items():
            result._set(index, self.factory.or_(nodes))
        return result

    def transpose(self) -> "BoolMatrix":
        """Transpose (binary only)."""
        if self.arity != 2:
            raise ValueError("transpose requires a binary matrix")
        result = BoolMatrix(self.factory, self.universe_size, 2)
        for (a, b), node in self._cells.items():
            result._set((b, a), node)
        return result

    def closure(self) -> "BoolMatrix":
        """Transitive closure by iterative squaring (binary only)."""
        if self.arity != 2:
            raise ValueError("closure requires a binary matrix")
        current = self
        steps = 1
        while steps < self.universe_size:
            current = current.union(current.join(current))
            steps *= 2
        return current

    def identity_union(self) -> "BoolMatrix":
        """Union with the identity matrix (for reflexive closure)."""
        if self.arity != 2:
            raise ValueError("identity union requires a binary matrix")
        result = BoolMatrix(self.factory, self.universe_size, 2, dict(self._cells))
        for i in range(self.universe_size):
            result._set((i, i), TRUE)
        return result

    # ------------------------------------------------------------------
    # Comparison / multiplicity circuits
    # ------------------------------------------------------------------

    def subset_of(self, other: "BoolMatrix") -> int:
        """Circuit node asserting self ⊆ other."""
        self._same_shape(other)
        implications = [
            self.factory.implies(node, other.get(index))
            for index, node in self._cells.items()
        ]
        return self.factory.and_(implications)

    def equals(self, other: "BoolMatrix") -> int:
        """Circuit node asserting pointwise equality."""
        return self.factory.and_([self.subset_of(other), other.subset_of(self)])

    def some(self) -> int:
        """Circuit node asserting at least one true cell."""
        return self.factory.or_(self._cells.values())

    def no(self) -> int:
        """Circuit node asserting emptiness."""
        return -self.some()

    def lone(self) -> int:
        """Circuit node asserting at most one true cell (pairwise)."""
        nodes = list(self._cells.values())
        pair_exclusions = [
            self.factory.or_([-a, -b]) for a, b in itertools.combinations(nodes, 2)
        ]
        return self.factory.and_(pair_exclusions)

    def one(self) -> int:
        """Circuit node asserting exactly one true cell."""
        return self.factory.and_([self.some(), self.lone()])

    def count_ge(self, n: int) -> int:
        """Circuit node asserting at least ``n`` true cells."""
        if n <= 0:
            return TRUE
        nodes = list(self._cells.values())
        if n > len(nodes):
            return FALSE
        choices = [
            self.factory.and_(combo) for combo in itertools.combinations(nodes, n)
        ]
        return self.factory.or_(choices)

    def count_eq(self, n: int) -> int:
        """Circuit node asserting exactly ``n`` true cells."""
        at_least = self.count_ge(n)
        more = self.count_ge(n + 1)
        return self.factory.and_([at_least, -more])

    def __repr__(self) -> str:
        return (
            f"BoolMatrix(arity={self.arity}, size={self.universe_size}, "
            f"density={self.density()})"
        )
