"""Loop-free path enumeration: Yen's k-shortest simple paths.

"physical nodes ... can merely bid to host virtual nodes, and later run
k-shortest path to map the virtual links" (Section II-B).  Implemented from
scratch on top of Dijkstra so the link-mapping phase has no hidden
dependencies.
"""

from __future__ import annotations

import heapq

import networkx as nx


def dijkstra_shortest_path(graph: nx.Graph, source: int, target: int,
                           weight: str = "weight",
                           banned_nodes: set[int] | None = None,
                           banned_edges: set[tuple[int, int]] | None = None,
                           ) -> tuple[float, list[int]] | None:
    """Shortest simple path avoiding banned nodes/edges; None if unreachable."""
    banned_nodes = banned_nodes or set()
    banned_edges = banned_edges or set()
    if source in banned_nodes or target in banned_nodes:
        return None
    distances: dict[int, float] = {source: 0.0}
    previous: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    visited: set[int] = set()
    while heap:
        dist, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == target:
            path = [target]
            while path[-1] != source:
                path.append(previous[path[-1]])
            path.reverse()
            return dist, path
        for neighbor in graph.neighbors(node):
            if neighbor in banned_nodes or neighbor in visited:
                continue
            if (node, neighbor) in banned_edges or (neighbor, node) in banned_edges:
                continue
            edge_weight = graph.edges[node, neighbor].get(weight, 1.0)
            candidate = dist + edge_weight
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                previous[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
    return None


def k_shortest_paths(graph: nx.Graph, source: int, target: int, k: int,
                     weight: str = "weight") -> list[list[int]]:
    """Yen's algorithm: up to ``k`` loop-free paths, shortest first."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if source == target:
        raise ValueError("source and target must differ")
    first = dijkstra_shortest_path(graph, source, target, weight)
    if first is None:
        return []
    paths: list[tuple[float, list[int]]] = [first]
    candidates: list[tuple[float, list[int]]] = []
    seen_candidates: set[tuple[int, ...]] = {tuple(first[1])}

    while len(paths) < k:
        _, last_path = paths[-1]
        for i in range(len(last_path) - 1):
            spur_node = last_path[i]
            root_path = last_path[: i + 1]
            banned_edges: set[tuple[int, int]] = set()
            for _, existing in paths:
                if existing[: i + 1] == root_path and len(existing) > i + 1:
                    banned_edges.add((existing[i], existing[i + 1]))
            banned_nodes = set(root_path[:-1])
            spur = dijkstra_shortest_path(
                graph, spur_node, target, weight,
                banned_nodes=banned_nodes, banned_edges=banned_edges,
            )
            if spur is None:
                continue
            spur_cost, spur_path = spur
            root_cost = sum(
                graph.edges[a, b].get(weight, 1.0)
                for a, b in zip(root_path, root_path[1:])
            )
            total = root_path[:-1] + spur_path
            key = tuple(total)
            if key in seen_candidates:
                continue
            seen_candidates.add(key)
            heapq.heappush(candidates, (root_cost + spur_cost, total))
        if not candidates:
            break
        paths.append(heapq.heappop(candidates))
    return [p for _, p in paths]


def path_is_loop_free(path: list[int]) -> bool:
    """True when the path visits no node twice."""
    return len(path) == len(set(path))


def path_cost(graph: nx.Graph, path: list[int], weight: str = "weight") -> float:
    """Total weight along a path."""
    return sum(
        graph.edges[a, b].get(weight, 1.0) for a, b in zip(path, path[1:])
    )
