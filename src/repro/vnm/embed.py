"""MCA-driven virtual network embedding.

The case study end-to-end: physical nodes are MCA agents bidding on virtual
nodes with the sub-modular residual-capacity utility; after the distributed
auction converges, virtual links are mapped with k-shortest loop-free paths
(Section II-B: "physical nodes can merely bid to host virtual nodes, and
later run k-shortest path to map the virtual links").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mca.engine import RunResult, SynchronousEngine
from repro.mca.network import AgentNetwork
from repro.mca.policies import AgentPolicy, ResidualCapacityUtility
from repro.vnm.mapping import Mapping, ValidationReport, validate_mapping
from repro.vnm.paths import k_shortest_paths
from repro.vnm.physical import PhysicalNetwork
from repro.vnm.virtual import VirtualNetwork


@dataclass
class EmbeddingResult:
    """Outcome of one embedding attempt."""

    success: bool
    mapping: Mapping
    auction: RunResult
    validation: ValidationReport | None
    reason: str = ""


def agent_network_from_physical(physical: PhysicalNetwork) -> AgentNetwork:
    """MCA agents communicate along physical links."""
    return AgentNetwork(
        ((a, b) for a, b, _ in physical.links()),
        nodes=[n.node_id for n in physical.nodes()],
    )


def embed(virtual: VirtualNetwork, physical: PhysicalNetwork,
          target_per_node: int | None = None, k_paths: int = 3,
          max_rounds: int = 200) -> EmbeddingResult:
    """Run the node auction, then map virtual links over shortest paths."""
    demands = virtual.demands()
    items = virtual.names()
    policies = {
        node.node_id: AgentPolicy(
            utility=ResidualCapacityUtility(node.cpu, demands),
            target=len(items) if target_per_node is None else target_per_node,
        )
        for node in physical.nodes()
    }
    agents_net = agent_network_from_physical(physical)
    engine = SynchronousEngine(agents_net, items, policies)
    auction = engine.run(max_rounds=max_rounds)
    mapping = Mapping()
    if not auction.converged:
        return EmbeddingResult(False, mapping, auction, None,
                               reason=f"auction did not converge: {auction.outcome}")
    unassigned = [j for j, w in auction.allocation.items() if w is None]
    if unassigned:
        return EmbeddingResult(False, mapping, auction, None,
                               reason=f"virtual nodes not won: {unassigned}")
    for item, winner in auction.allocation.items():
        mapping.assign_node(item, winner)

    # Link phase: k-shortest loop-free paths with sufficient bandwidth.
    graph = physical.graph.copy()
    residual = {tuple(sorted((a, b))): bw for a, b, bw in physical.links()}
    for a, b, demand in virtual.links():
        src = mapping.node_map[a]
        dst = mapping.node_map[b]
        if src == dst:
            continue  # colocated endpoints need no path
        chosen: list[int] | None = None
        for path in k_shortest_paths(graph, src, dst, k_paths):
            if all(
                residual[tuple(sorted((u, v)))] >= demand
                for u, v in zip(path, path[1:])
            ):
                chosen = path
                break
        if chosen is None:
            return EmbeddingResult(
                False, mapping, auction, None,
                reason=f"no feasible path for virtual link ({a},{b})",
            )
        for u, v in zip(chosen, chosen[1:]):
            residual[tuple(sorted((u, v)))] -= demand
        mapping.assign_link(a, b, chosen)

    validation = validate_mapping(virtual, physical, mapping)
    return EmbeddingResult(validation.valid, mapping, auction, validation,
                           reason="" if validation.valid else "validation failed")
