"""Virtual network requests: ``H = (V_H, E_H, C_H)`` (Section II-B)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import networkx as nx


@dataclass(frozen=True)
class VirtualNode:
    """A virtual node with a CPU demand (an MCA item)."""

    name: str
    cpu: float

    def __post_init__(self) -> None:
        if self.cpu < 0:
            raise ValueError("cpu demand must be non-negative")


class VirtualNetwork:
    """A capacitated virtual network request."""

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._nodes: dict[str, VirtualNode] = {}

    def add_node(self, name: str, cpu: float) -> VirtualNode:
        """Add a virtual node with a CPU demand."""
        if name in self._nodes:
            raise ValueError(f"duplicate virtual node {name!r}")
        node = VirtualNode(name, cpu)
        self._nodes[name] = node
        self._graph.add_node(name)
        return node

    def add_link(self, a: str, b: str, bandwidth: float) -> None:
        """Add a virtual link with a bandwidth demand."""
        if a == b:
            raise ValueError("self-links are not allowed")
        for end in (a, b):
            if end not in self._nodes:
                raise KeyError(f"unknown virtual node {end!r}")
        if bandwidth < 0:
            raise ValueError("bandwidth must be non-negative")
        self._graph.add_edge(a, b, bandwidth=bandwidth)

    def node(self, name: str) -> VirtualNode:
        """Look up a virtual node."""
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(f"unknown virtual node {name!r}") from None

    def nodes(self) -> list[VirtualNode]:
        """All virtual nodes sorted by name."""
        return [self._nodes[n] for n in sorted(self._nodes)]

    def names(self) -> list[str]:
        """Virtual node names, sorted."""
        return sorted(self._nodes)

    def links(self) -> Iterator[tuple[str, str, float]]:
        """Virtual links as (a, b, bandwidth), lexicographically ordered."""
        for a, b, data in sorted(self._graph.edges(data=True)):
            lo, hi = sorted((a, b))
            yield lo, hi, data["bandwidth"]

    def demands(self) -> dict[str, float]:
        """CPU demand per virtual node (the MCA item demand map)."""
        return {name: node.cpu for name, node in self._nodes.items()}

    @property
    def graph(self) -> nx.Graph:
        """Underlying networkx graph."""
        return self._graph

    def __len__(self) -> int:
        return len(self._nodes)

    @staticmethod
    def chain(names: list[str], cpu: float = 10.0,
              bandwidth: float = 10.0) -> "VirtualNetwork":
        """A linear service chain (the classic NFV request shape)."""
        vn = VirtualNetwork()
        for name in names:
            vn.add_node(name, cpu)
        for a, b in zip(names, names[1:]):
            vn.add_link(a, b, bandwidth)
        return vn

    @staticmethod
    def star(center: str, leaves: list[str], cpu: float = 10.0,
             bandwidth: float = 10.0) -> "VirtualNetwork":
        """A hub-and-spoke request."""
        vn = VirtualNetwork()
        vn.add_node(center, cpu)
        for leaf in leaves:
            vn.add_node(leaf, cpu)
            vn.add_link(center, leaf, bandwidth)
        return vn
