"""Physical (substrate) networks for the virtual network mapping problem.

``G = (V_G, E_G, C_G)``: capacitated physical nodes and links owned by one
or more federated infrastructure providers (Section II-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import networkx as nx


@dataclass(frozen=True)
class PhysicalNode:
    """A capacitated physical node (an MCA agent)."""

    node_id: int
    cpu: float
    provider: int = 0

    def __post_init__(self) -> None:
        if self.cpu < 0:
            raise ValueError("cpu capacity must be non-negative")


class PhysicalNetwork:
    """An undirected capacitated substrate network."""

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._nodes: dict[int, PhysicalNode] = {}

    def add_node(self, node_id: int, cpu: float, provider: int = 0) -> PhysicalNode:
        """Add a physical node with a CPU capacity."""
        if node_id in self._nodes:
            raise ValueError(f"duplicate physical node {node_id}")
        node = PhysicalNode(node_id, cpu, provider)
        self._nodes[node_id] = node
        self._graph.add_node(node_id)
        return node

    def add_link(self, a: int, b: int, bandwidth: float) -> None:
        """Add an undirected capacitated link."""
        if a == b:
            raise ValueError("self-links are not allowed")
        for end in (a, b):
            if end not in self._nodes:
                raise KeyError(f"unknown physical node {end}")
        if bandwidth < 0:
            raise ValueError("bandwidth must be non-negative")
        self._graph.add_edge(a, b, bandwidth=bandwidth)

    def node(self, node_id: int) -> PhysicalNode:
        """Look up a node."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"unknown physical node {node_id}") from None

    def nodes(self) -> list[PhysicalNode]:
        """All nodes sorted by id."""
        return [self._nodes[i] for i in sorted(self._nodes)]

    def links(self) -> Iterator[tuple[int, int, float]]:
        """All links as (a, b, bandwidth), a < b."""
        for a, b, data in sorted(self._graph.edges(data=True)):
            lo, hi = min(a, b), max(a, b)
            yield lo, hi, data["bandwidth"]

    def bandwidth(self, a: int, b: int) -> float:
        """Bandwidth of a link."""
        try:
            return self._graph.edges[a, b]["bandwidth"]
        except KeyError:
            raise KeyError(f"no link between {a} and {b}") from None

    def neighbors(self, node_id: int) -> list[int]:
        """Neighbor node ids, sorted."""
        return sorted(self._graph.neighbors(node_id))

    def has_link(self, a: int, b: int) -> bool:
        """True when a physical link exists."""
        return self._graph.has_edge(a, b)

    @property
    def graph(self) -> nx.Graph:
        """Underlying networkx graph."""
        return self._graph

    def __len__(self) -> int:
        return len(self._nodes)

    def is_connected(self) -> bool:
        """True when the substrate is connected."""
        if len(self._nodes) <= 1:
            return True
        return nx.is_connected(self._graph)

    @staticmethod
    def grid(width: int, height: int, cpu: float = 100.0,
             bandwidth: float = 100.0) -> "PhysicalNetwork":
        """A width x height grid substrate (a common evaluation topology)."""
        net = PhysicalNetwork()
        for y in range(height):
            for x in range(width):
                net.add_node(y * width + x, cpu)
        for y in range(height):
            for x in range(width):
                node = y * width + x
                if x + 1 < width:
                    net.add_link(node, node + 1, bandwidth)
                if y + 1 < height:
                    net.add_link(node, node + width, bandwidth)
        return net
