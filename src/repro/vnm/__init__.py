"""Virtual network mapping: the paper's case-study application.

Physical/virtual network models, mapping validity checking, k-shortest
loop-free paths, and MCA-driven distributed embedding.
"""

from repro.vnm.embed import EmbeddingResult, agent_network_from_physical, embed
from repro.vnm.mapping import Mapping, ValidationReport, validate_mapping
from repro.vnm.paths import (
    dijkstra_shortest_path,
    k_shortest_paths,
    path_cost,
    path_is_loop_free,
)
from repro.vnm.physical import PhysicalNetwork, PhysicalNode
from repro.vnm.virtual import VirtualNetwork, VirtualNode

__all__ = [
    "EmbeddingResult",
    "Mapping",
    "PhysicalNetwork",
    "PhysicalNode",
    "ValidationReport",
    "VirtualNetwork",
    "VirtualNode",
    "agent_network_from_physical",
    "dijkstra_shortest_path",
    "embed",
    "k_shortest_paths",
    "path_cost",
    "path_is_loop_free",
    "validate_mapping",
]
