"""Mapping validity: the definition of Section II-B, executable.

``M : H -> (V_G, P)`` is *valid* iff every virtual node maps to exactly one
physical node with enough residual CPU, and every virtual link maps to at
least one loop-free physical path whose endpoints host the link's endpoints
and whose links have enough residual bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vnm.paths import path_is_loop_free
from repro.vnm.physical import PhysicalNetwork
from repro.vnm.virtual import VirtualNetwork


@dataclass
class Mapping:
    """A (possibly partial) virtual-to-physical mapping."""

    node_map: dict[str, int] = field(default_factory=dict)
    link_map: dict[tuple[str, str], list[int]] = field(default_factory=dict)

    def assign_node(self, virtual: str, physical: int) -> None:
        """Map a virtual node onto a physical node."""
        self.node_map[virtual] = physical

    def assign_link(self, a: str, b: str, path: list[int]) -> None:
        """Map virtual link (a,b) onto a physical path."""
        self.link_map[tuple(sorted((a, b)))] = list(path)

    def path_for(self, a: str, b: str) -> list[int] | None:
        """The path carrying virtual link (a, b), if mapped."""
        return self.link_map.get(tuple(sorted((a, b))))


@dataclass
class ValidationReport:
    """Outcome of validating a mapping."""

    valid: bool
    errors: list[str] = field(default_factory=list)


def validate_mapping(virtual: VirtualNetwork, physical: PhysicalNetwork,
                     mapping: Mapping) -> ValidationReport:
    """Check every constraint of the valid-mapping definition."""
    errors: list[str] = []

    # Every virtual node mapped to exactly one existing physical node.
    for vnode in virtual.nodes():
        if vnode.name not in mapping.node_map:
            errors.append(f"virtual node {vnode.name!r} is unmapped")
            continue
        target = mapping.node_map[vnode.name]
        try:
            physical.node(target)
        except KeyError:
            errors.append(
                f"virtual node {vnode.name!r} mapped to unknown node {target}"
            )

    # CPU capacity per physical node.
    load: dict[int, float] = {}
    for vname, pnode in mapping.node_map.items():
        load[pnode] = load.get(pnode, 0.0) + virtual.node(vname).cpu
    for pnode_id, used in load.items():
        try:
            capacity = physical.node(pnode_id).cpu
        except KeyError:
            continue
        if used > capacity:
            errors.append(
                f"physical node {pnode_id} overloaded: {used} > {capacity}"
            )

    # Virtual links: loop-free connected paths with matching endpoints and
    # sufficient bandwidth.
    bandwidth_load: dict[tuple[int, int], float] = {}
    for a, b, demand in virtual.links():
        path = mapping.path_for(a, b)
        if path is None:
            errors.append(f"virtual link ({a},{b}) is unmapped")
            continue
        if len(path) < 2:
            # Colocated endpoints would need path of length 1; the paper
            # requires a loop-free physical path between distinct hosts.
            if mapping.node_map.get(a) == mapping.node_map.get(b):
                continue  # colocation: no physical path needed
            errors.append(f"virtual link ({a},{b}) has a degenerate path")
            continue
        if not path_is_loop_free(path):
            errors.append(f"virtual link ({a},{b}) path has a loop: {path}")
        expected_ends = {mapping.node_map.get(a), mapping.node_map.get(b)}
        if {path[0], path[-1]} != expected_ends:
            errors.append(
                f"virtual link ({a},{b}) path endpoints {path[0]},{path[-1]} "
                f"do not match node mapping"
            )
        for u, v in zip(path, path[1:]):
            if not physical.has_link(u, v):
                errors.append(
                    f"virtual link ({a},{b}) uses missing physical link ({u},{v})"
                )
            else:
                key = (min(u, v), max(u, v))
                bandwidth_load[key] = bandwidth_load.get(key, 0.0) + demand
    for (u, v), used in bandwidth_load.items():
        capacity = physical.bandwidth(u, v)
        if used > capacity:
            errors.append(
                f"physical link ({u},{v}) overloaded: {used} > {capacity}"
            )

    return ValidationReport(valid=not errors, errors=errors)
