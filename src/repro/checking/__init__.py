"""Explicit-state dynamic checking of the MCA protocol."""

from repro.checking.explorer import (
    ExplorationResult,
    StateCanonicalizer,
    explore_message_orders,
)

__all__ = [
    "ExplorationResult",
    "StateCanonicalizer",
    "explore_message_orders",
]
