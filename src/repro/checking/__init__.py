"""Explicit-state dynamic checking of the MCA protocol."""

from repro.checking.explorer import ExplorationResult, explore_message_orders

__all__ = ["ExplorationResult", "explore_message_orders"]
