"""Explicit-state dynamic checking of the MCA protocol.

:func:`explore` is the raw engine (returns :class:`ExplorationResult`);
the façade entry point :func:`repro.api.run_protocol` wraps it in the
uniform result shape.  ``explore_message_orders`` is a deprecated alias.
"""

from repro.checking.explorer import (
    ExplorationResult,
    StateCanonicalizer,
    explore,
    explore_message_orders,
)

__all__ = [
    "ExplorationResult",
    "StateCanonicalizer",
    "explore",
    "explore_message_orders",
]
