"""Explicit-state exploration of the MCA protocol under all schedules.

Complements the SAT-based bounded check: instead of encoding transitions
relationally, this checker executes the real protocol implementation
(:mod:`repro.mca`) over *every* synchronous-round interleaving choice the
scheduler exposes, up to a depth bound — the "dynamic model" the paper's
conclusion promises.  It detects:

* convergence on all explored paths (with the worst-case round count),
* divergence counterexamples (a path exceeding the round bound), and
* oscillation lassos (a path revisiting a logical state).

Two mechanisms keep exhaustive exploration tractable:

* **Snapshot/restore branching** — the engine's snapshot protocol
  (:meth:`repro.mca.engine.SynchronousEngine.snapshot`) captures agent
  state in O(agents * items); each branch runs on the *same* engine and is
  rolled back afterwards, so there is no ``copy.deepcopy`` anywhere on the
  branch hot path.
* **A global canonical-state memo table** — once every schedule from a
  state has been shown to converge within ``k`` more rounds, that
  certificate holds regardless of the path that reached the state, so
  isomorphic interleavings (different activation orders meeting in the
  same state, or in a state identical up to a renaming of same-policy
  agents that is also a network automorphism) are pruned once instead of
  re-explored.  A certificate is only reused when its worst-case depth
  fits the remaining round budget, which keeps verdicts identical to the
  non-memoized search.  States are compared at the explorer's native
  granularity — the *logical* view signature (winners, bids, bundles),
  the same abstraction the oscillation detector has always used.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass

from repro.mca.engine import SynchronousEngine
from repro.mca.items import AgentId, ItemId
from repro.mca.network import AgentNetwork
from repro.mca.policies import AgentPolicy

# Give up on agent-renaming canonicalization past this many relabelings
# per state (product of group factorials); the exact-state memo still works.
_MAX_RELABELINGS = 720


@dataclass
class ExplorationResult:
    """Aggregate verdict over all explored asynchronous paths."""

    all_converged: bool
    paths_explored: int
    max_rounds_to_converge: int
    oscillating_trace: list[str] | None = None
    diverging_trace: list[str] | None = None
    memo_hits: int = 0
    states_memoized: int = 0

    @property
    def counterexample(self) -> list[str] | None:
        """A failing trace, if any path failed to converge."""
        return self.oscillating_trace or self.diverging_trace


class StateCanonicalizer:
    """Maps global signatures to canonical memo keys.

    Agents are interchangeable when they share the *same policy object*
    AND renaming them is an automorphism of the communication network:
    only then does a renaming map protocol runs to protocol runs (the
    branch set already covers every activation order, and message
    connectivity is preserved).  The canonical key is the lexicographic
    minimum of the signature over all such renamings, so states that
    only differ by a valid renaming share one memo entry.
    """

    def __init__(self, network: AgentNetwork,
                 policies: dict[AgentId, AgentPolicy]) -> None:
        self._agent_ids = network.agents()
        self._position = {a: i for i, a in enumerate(self._agent_ids)}
        edges = set(network.edges())
        groups: dict[int, list[AgentId]] = {}
        for agent_id in self._agent_ids:
            groups.setdefault(id(policies[agent_id]), []).append(agent_id)
        self._groups = [sorted(g) for g in groups.values() if len(g) > 1]
        count = 1
        for group in self._groups:
            for k in range(2, len(group) + 1):
                count *= k

        def is_automorphism(mapping: dict[AgentId, AgentId]) -> bool:
            return all(
                tuple(sorted((mapping.get(u, u), mapping.get(v, v)))) in edges
                for u, v in edges
            )

        self._relabelings: list[dict[AgentId, AgentId]] = []
        if self._groups and count <= _MAX_RELABELINGS:
            per_group = [
                [dict(zip(group, perm))
                 for perm in itertools.permutations(group)]
                for group in self._groups
            ]
            for combo in itertools.product(*per_group):
                mapping: dict[AgentId, AgentId] = {}
                for part in combo:
                    mapping.update(part)
                if is_automorphism(mapping):
                    self._relabelings.append(mapping)

    @property
    def groups(self) -> list[list[AgentId]]:
        """Interchangeable-agent groups of size >= 2 (pre-automorphism)."""
        return self._groups

    def _relabel(self, signature: tuple, mapping: dict[AgentId, AgentId]) -> tuple:
        # signature[i] belongs to agent self._agent_ids[i]; a renaming
        # permutes the per-agent slots and rewrites winner ids.  ``None``
        # winners are encoded as -1 so the relabeled keys stay orderable.
        slots: list[tuple] = [()] * len(self._agent_ids)
        for i, agent_id in enumerate(self._agent_ids):
            beliefs, bundle = signature[i]
            rewritten = tuple(
                (item, -1 if winner is None else mapping.get(winner, winner), bid)
                for item, winner, bid in beliefs
            )
            slots[self._position[mapping.get(agent_id, agent_id)]] = (
                rewritten, bundle
            )
        return tuple(slots)

    def key(self, signature: tuple) -> tuple:
        """Canonical memo key for a global signature."""
        if not self._relabelings:
            return self._relabel(signature, {})
        return min(
            self._relabel(signature, mapping) for mapping in self._relabelings
        )


def explore(
    network: AgentNetwork,
    items: list[ItemId],
    policies: dict[int, AgentPolicy],
    max_rounds: int = 12,
    max_paths: int = 2000,
    memoize: bool = True,
) -> ExplorationResult:
    """Explore per-round *agent activation orders* exhaustively.

    Each round, the engine normally activates agents in id order.  Here we
    branch over every permutation of the bid-phase activation order — the
    source of nondeterminism a synchronous protocol actually has — and
    check that every branch converges.  The search stops at the first
    counterexample, when ``max_paths`` complete paths have been counted,
    or when the whole schedule tree is covered.

    Like the oscillation detector it inherits from the seed explorer,
    the memo table works at the granularity of *logical* states (winner,
    bid, bundle per agent — timestamps, clocks and freshness tables are
    abstracted away, exactly as in ``Agent.view_signature``).  Pass
    ``memoize=False`` for an exact path-by-path search without the
    canonical-state memo (every interleaving is re-explored; also useful
    for differential testing).
    """
    agent_ids = network.agents()
    orders = list(itertools.permutations(agent_ids))
    engine = SynchronousEngine(network, items, policies)
    canonicalizer = StateCanonicalizer(network, policies) if memoize else None
    results = ExplorationResult(
        all_converged=True, paths_explored=0, max_rounds_to_converge=0
    )
    # canonical key -> (worst rounds to converge from the state, leaf count)
    memo: dict[tuple, tuple[int, int]] = {}
    history: list[str] = []

    def fail(marker: str) -> None:
        results.all_converged = False
        trace = history + [marker]
        if marker == "<state repeats>":
            results.oscillating_trace = trace
        else:
            results.diverging_trace = trace
        results.paths_explored += 1

    def dfs(path_seen: frozenset) -> tuple[int, int] | None:
        """Explore all schedules from the engine's current state.

        Returns (worst rounds to converge, converged leaf count), or None
        when a counterexample was recorded or the path cap truncated the
        subtree.  The engine is always left in its entry state.
        """
        if _is_quiescent(engine):
            results.paths_explored += 1
            results.max_rounds_to_converge = max(
                results.max_rounds_to_converge, len(history)
            )
            return 0, 1
        signature = engine.global_signature()
        if signature in path_seen:
            fail("<state repeats>")
            return None
        if len(history) >= max_rounds:
            fail("<bound exceeded>")
            return None
        remaining = max_rounds - len(history)
        key = canonicalizer.key(signature) if canonicalizer else None
        if key is not None:
            hit = memo.get(key)
            # Reuse only when the certified worst case fits the budget;
            # otherwise a fresh search could legitimately report divergence.
            if hit is not None and hit[0] <= remaining:
                results.memo_hits += 1
                # Clamp: a large certificate must not overshoot the
                # documented max_paths cap (the stop condition below
                # still fires as soon as the cap is reached).
                results.paths_explored = min(
                    results.paths_explored + hit[1], max_paths
                )
                results.max_rounds_to_converge = max(
                    results.max_rounds_to_converge, len(history) + hit[0]
                )
                return hit
        deeper = path_seen | {signature}
        snapshot = engine.snapshot()
        worst = 0
        leaves = 0
        for order in orders:
            if results.paths_explored >= max_paths:
                return None  # truncated: no certificate for this state
            _run_round(engine, order)
            history.append(f"round order {order}")
            outcome = dfs(deeper)
            history.pop()
            engine.restore(snapshot)
            if outcome is None:
                return None
            worst = max(worst, outcome[0] + 1)
            leaves += outcome[1]
        if key is not None:
            memo[key] = (worst, leaves)
            results.states_memoized = len(memo)
        return worst, leaves

    dfs(frozenset())
    return results


def explore_message_orders(
    network: AgentNetwork,
    items: list[ItemId],
    policies: dict[int, AgentPolicy],
    max_rounds: int = 12,
    max_paths: int = 2000,
    memoize: bool = True,
) -> ExplorationResult:
    """Deprecated alias for :func:`explore`.

    Kept as a thin shim for old call sites; new code should go through
    :func:`repro.api.run_protocol`, which wraps :func:`explore` in the
    uniform :class:`~repro.api.result.Result` shape.
    """
    warnings.warn(
        "explore_message_orders() is deprecated; use repro.api.run_protocol()"
        " (or repro.checking.explore() for the raw ExplorationResult)",
        DeprecationWarning, stacklevel=2,
    )
    return explore(network, items, policies, max_rounds=max_rounds,
                   max_paths=max_paths, memoize=memoize)


def _run_round(engine: SynchronousEngine, order) -> None:
    for agent_id in order:
        engine.agents[agent_id].bid_phase()
    outbox = []
    for sender in order:
        for receiver in engine.network.neighbors(sender):
            outbox.append(engine.agents[sender].outgoing_message(receiver))
    for message in outbox:
        engine.messages_processed += 1
        engine.agents[message.receiver].receive(message)


def _is_quiescent(engine: SynchronousEngine) -> bool:
    """True when one more round would change nothing."""
    before = engine.global_signature()
    snapshot = engine.snapshot()
    _run_round(engine, engine.network.agents())
    after = engine.global_signature()
    engine.restore(snapshot)
    return before == after
