"""Explicit-state exploration of the MCA protocol under all schedules.

Complements the SAT-based bounded check: instead of encoding transitions
relationally, this checker executes the real protocol implementation
(:mod:`repro.mca`) over *every* synchronous-round interleaving choice the
scheduler exposes, up to a depth bound — the "dynamic model" the paper's
conclusion promises.  It detects:

* convergence on all explored paths (with the worst-case round count),
* divergence counterexamples (a path exceeding the round bound), and
* oscillation lassos (a path revisiting a logical state).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.mca.engine import SynchronousEngine
from repro.mca.items import ItemId
from repro.mca.network import AgentNetwork
from repro.mca.policies import AgentPolicy


@dataclass
class ExplorationResult:
    """Aggregate verdict over all explored asynchronous paths."""

    all_converged: bool
    paths_explored: int
    max_rounds_to_converge: int
    oscillating_trace: list[str] | None = None
    diverging_trace: list[str] | None = None

    @property
    def counterexample(self) -> list[str] | None:
        """A failing trace, if any path failed to converge."""
        return self.oscillating_trace or self.diverging_trace


@dataclass
class _PathState:
    engine: SynchronousEngine
    history: list[str] = field(default_factory=list)
    seen: set = field(default_factory=set)


def explore_message_orders(
    network: AgentNetwork,
    items: list[ItemId],
    policies: dict[int, AgentPolicy],
    max_rounds: int = 12,
    max_paths: int = 2000,
) -> ExplorationResult:
    """Explore per-round *agent activation orders* exhaustively.

    Each round, the engine normally activates agents in id order.  Here we
    branch over every permutation of the bid-phase activation order — the
    source of nondeterminism a synchronous protocol actually has — and
    check that every branch converges.
    """
    import itertools

    agent_ids = network.agents()
    orders = list(itertools.permutations(agent_ids))
    root = SynchronousEngine(network, items, policies)
    results = ExplorationResult(
        all_converged=True, paths_explored=0, max_rounds_to_converge=0
    )
    stack: list[_PathState] = [_PathState(root)]
    while stack and results.paths_explored < max_paths:
        state = stack.pop()
        engine = state.engine
        signature = tuple(
            engine.agents[a].view_signature() for a in agent_ids
        )
        quiescent = _is_quiescent(engine)
        if quiescent:
            results.paths_explored += 1
            results.max_rounds_to_converge = max(
                results.max_rounds_to_converge, len(state.history)
            )
            continue
        if signature in state.seen:
            results.all_converged = False
            results.oscillating_trace = state.history + ["<state repeats>"]
            results.paths_explored += 1
            continue
        if len(state.history) >= max_rounds:
            results.all_converged = False
            results.diverging_trace = state.history + ["<bound exceeded>"]
            results.paths_explored += 1
            continue
        for order in orders:
            child = copy.deepcopy(engine)
            _run_round(child, order)
            stack.append(_PathState(
                engine=child,
                history=state.history + [f"round order {order}"],
                seen=state.seen | {signature},
            ))
    return results


def _run_round(engine: SynchronousEngine, order) -> None:
    for agent_id in order:
        engine.agents[agent_id].bid_phase()
    outbox = []
    for sender in order:
        for receiver in engine.network.neighbors(sender):
            outbox.append(engine.agents[sender].outgoing_message(receiver))
    for message in outbox:
        engine.messages_processed += 1
        engine.agents[message.receiver].receive(message)


def _is_quiescent(engine: SynchronousEngine) -> bool:
    """True when one more round would change nothing."""
    probe = copy.deepcopy(engine)
    before = tuple(
        probe.agents[a].view_signature() for a in probe.network.agents()
    )
    _run_round(probe, probe.network.agents())
    after = tuple(
        probe.agents[a].view_signature() for a in probe.network.agents()
    )
    return before == after
