"""Synthetic workload generators for the three MCA application domains.

The paper motivates MCA with UAV task allocation [Choi 2009], distributed
virtual network embedding [Esposito 2014] and smart-grid economic dispatch
[Binetti 2014].  Remark 4: the protocol is application-agnostic, so these
generators only differ in how they derive items, agents and utilities.
"""

from repro.workloads.uav import uav_task_allocation
from repro.workloads.vnet import vn_embedding_workload
from repro.workloads.smartgrid import economic_dispatch

__all__ = ["economic_dispatch", "uav_task_allocation", "vn_embedding_workload"]
