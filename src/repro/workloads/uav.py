"""UAV task-allocation workloads (Choi et al. 2009 style).

A fleet of vehicles bids on geo-located tasks; a vehicle's utility for a
task decays with distance from its position, and marginal utilities shrink
as its route fills up (sub-modular, the setting where CBBA-style protocols
are guaranteed to converge).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.mca.network import AgentNetwork
from repro.mca.policies import AgentPolicy, GeometricUtility


@dataclass
class UavWorkload:
    """A generated fleet scenario ready to run through an MCA engine."""

    network: AgentNetwork
    items: list[str]
    policies: dict[int, AgentPolicy]
    positions: dict[int, tuple[float, float]]
    task_locations: dict[str, tuple[float, float]]


def uav_task_allocation(num_uavs: int = 4, num_tasks: int = 6,
                        comm_radius: float = 60.0, area: float = 100.0,
                        capacity: int = 3, seed: int = 0) -> UavWorkload:
    """Generate a random fleet scenario.

    Vehicles within ``comm_radius`` of each other are neighbors; if the
    resulting graph is disconnected, a line topology is used as fallback
    (MCA requires connectivity for consensus).
    """
    rng = random.Random(seed)
    positions = {
        u: (rng.uniform(0, area), rng.uniform(0, area)) for u in range(num_uavs)
    }
    tasks = [f"task{t}" for t in range(num_tasks)]
    task_locations = {
        t: (rng.uniform(0, area), rng.uniform(0, area)) for t in tasks
    }
    edges = [
        (a, b)
        for a in range(num_uavs)
        for b in range(a + 1, num_uavs)
        if _distance(positions[a], positions[b]) <= comm_radius
    ]
    try:
        network = AgentNetwork(edges, nodes=range(num_uavs))
    except ValueError:
        network = AgentNetwork.line(num_uavs)
    policies = {}
    max_distance = math.hypot(area, area)
    for u in range(num_uavs):
        base = {
            t: round(100 * (1 - _distance(positions[u], task_locations[t])
                            / max_distance), 2)
            for t in tasks
        }
        policies[u] = AgentPolicy(
            utility=GeometricUtility(base, growth=0.5),
            target=capacity,
        )
    return UavWorkload(
        network=network,
        items=tasks,
        policies=policies,
        positions=positions,
        task_locations=task_locations,
    )


def _distance(a: tuple[float, float], b: tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])
