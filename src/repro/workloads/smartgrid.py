"""Economic-dispatch workloads (Binetti et al. 2014 style).

Generation units (agents) bid to take on power-block duties (items); a
unit's utility for a block reflects its cost efficiency at its current
loading, decreasing as it takes on more blocks (sub-modular: marginal
efficiency falls with load).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.mca.network import AgentNetwork
from repro.mca.policies import AgentPolicy, GeometricUtility


@dataclass
class DispatchWorkload:
    """A generated dispatch scenario."""

    network: AgentNetwork
    items: list[str]
    policies: dict[int, AgentPolicy]
    unit_efficiency: dict[int, float]


def economic_dispatch(num_units: int = 5, num_blocks: int = 8,
                      capacity_blocks: int = 3, seed: int = 0
                      ) -> DispatchWorkload:
    """Generate a ring-connected set of generation units and power blocks."""
    rng = random.Random(seed)
    blocks = [f"block{b}" for b in range(num_blocks)]
    efficiency = {u: round(rng.uniform(0.5, 1.0), 3) for u in range(num_units)}
    policies = {}
    for u in range(num_units):
        base = {
            b: round(100 * efficiency[u] * rng.uniform(0.8, 1.2), 2)
            for b in blocks
        }
        policies[u] = AgentPolicy(
            utility=GeometricUtility(base, growth=0.6),
            target=capacity_blocks,
        )
    network = (AgentNetwork.ring(num_units) if num_units >= 3
               else AgentNetwork.complete(num_units))
    return DispatchWorkload(
        network=network,
        items=blocks,
        policies=policies,
        unit_efficiency=efficiency,
    )
