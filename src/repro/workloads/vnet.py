"""Virtual-network-embedding workloads (Esposito et al. 2014 style)."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.vnm.physical import PhysicalNetwork
from repro.vnm.virtual import VirtualNetwork


@dataclass
class VnWorkload:
    """A substrate plus a batch of virtual network requests."""

    physical: PhysicalNetwork
    requests: list[VirtualNetwork]


def vn_embedding_workload(grid_width: int = 3, grid_height: int = 3,
                          num_requests: int = 3, request_size: int = 3,
                          cpu: float = 100.0, bandwidth: float = 100.0,
                          demand_cpu: tuple[float, float] = (5.0, 25.0),
                          demand_bw: tuple[float, float] = (1.0, 10.0),
                          seed: int = 0) -> VnWorkload:
    """A grid substrate with random chain/star virtual requests."""
    rng = random.Random(seed)
    physical = PhysicalNetwork.grid(grid_width, grid_height, cpu, bandwidth)
    requests = []
    for r in range(num_requests):
        names = [f"r{r}v{i}" for i in range(request_size)]
        if rng.random() < 0.5:
            vn = VirtualNetwork.chain(
                names,
                cpu=round(rng.uniform(*demand_cpu), 1),
                bandwidth=round(rng.uniform(*demand_bw), 1),
            )
        else:
            vn = VirtualNetwork.star(
                names[0], names[1:],
                cpu=round(rng.uniform(*demand_cpu), 1),
                bandwidth=round(rng.uniform(*demand_bw), 1),
            )
        requests.append(vn)
    return VnWorkload(physical=physical, requests=requests)
