"""repro: a full-stack reproduction of "An Alloy Verification Model for
Consensus-Based Auction Protocols" (Mirzaei & Esposito, ICDCS 2015).

Public API
----------
The supported entry point is the :mod:`repro.api` façade, re-exported
here: build a problem (:class:`FormulaProblem`, :class:`ModuleProblem`,
:class:`ProtocolProblem`), call :func:`solve` / :func:`check` /
:func:`enumerate` / :func:`run_protocol` (or :func:`solve_many` for
cached, sharded batches), and read the uniform :class:`Result`.
Backends plug in via :func:`register_backend`.

Subpackages
-----------
``repro.api``
    The unified verification façade (problems, options, results,
    pluggable backends, batch execution).
``repro.sat``
    A CDCL SAT solver -- the MiniSat role under the Alloy Analyzer.
``repro.kodkod``
    A bounded relational model finder -- the Kodkod role.
``repro.alloylite``
    An Alloy-style frontend: sigs, facts, scopes, run/check, ordering.
``repro.mca``
    The executable Max-Consensus Auction protocol with pluggable policies.
``repro.vnm``
    The virtual network mapping case study (Section II-B).
``repro.model``
    The paper's MCA Alloy model, in both the naive and optimized encodings.
``repro.checking``
    Explicit-state dynamic checking of the executable protocol.
``repro.campaign``
    Sharded randomized differential verification sweeps.
``repro.workloads``
    UAV / virtual-network / smart-grid workload generators.
``repro.analysis``
    Experiment drivers and report rendering.
"""

__version__ = "1.1.0"

# The façade is re-exported lazily (PEP 562) so that ``import repro``
# stays cheap and subpackage imports never cycle through the package
# root.  ``from repro import solve`` and ``repro.Options`` both work.
_API_EXPORTS = frozenset({
    "Backend",
    "DeltaSession",
    "FormulaProblem",
    "ModuleProblem",
    "Options",
    "Problem",
    "ProblemDelta",
    "ProtocolProblem",
    "Result",
    "Verdict",
    "available_backends",
    "check",
    "diff_problems",
    "enumerate",
    "problem_from_spec",
    "register_backend",
    "run_protocol",
    "solve",
    "solve_delta",
    "solve_many",
})

__all__ = ["__version__", "api", *sorted(_API_EXPORTS)]


def __getattr__(name: str):
    if name in _API_EXPORTS:
        from repro import api

        return getattr(api, name)
    if name == "api":
        import repro.api as api

        return api
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
