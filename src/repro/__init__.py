"""repro: a full-stack reproduction of "An Alloy Verification Model for
Consensus-Based Auction Protocols" (Mirzaei & Esposito, ICDCS 2015).

Subpackages
-----------
``repro.sat``
    A CDCL SAT solver -- the MiniSat role under the Alloy Analyzer.
``repro.kodkod``
    A bounded relational model finder -- the Kodkod role.
``repro.alloylite``
    An Alloy-style frontend: sigs, facts, scopes, run/check, ordering.
``repro.mca``
    The executable Max-Consensus Auction protocol with pluggable policies.
``repro.vnm``
    The virtual network mapping case study (Section II-B).
``repro.model``
    The paper's MCA Alloy model, in both the naive and optimized encodings.
``repro.checking``
    Explicit-state dynamic checking of the executable protocol.
``repro.workloads``
    UAV / virtual-network / smart-grid workload generators.
``repro.analysis``
    Experiment drivers and report rendering.
"""

__version__ = "1.0.0"
