"""Sharded campaign runner: specs × oracles over a process pool, cached.

The runner takes a task list of ``(ScenarioSpec, oracle name)`` pairs,
resolves what it can from the on-disk result cache, fans the misses out
over a :class:`~concurrent.futures.ProcessPoolExecutor` (``shards``
workers) with a per-task timeout, and aggregates everything into
structured :class:`CampaignResult` records.

Cache layout
------------

``<cache_dir>/<k[:2]>/<k>.json`` where ``k`` is a sha256 over the
canonical JSON of ``{schema, spec, oracle}``:

* ``schema`` — :data:`CACHE_SCHEMA` bumps whenever result semantics
  change, invalidating every older entry at once;
* ``spec`` — the spec's canonical dict (family, seed, sorted params), the
  full identity of the generated instance (generators are deterministic
  functions of the spec; see ``scenario_fingerprint``);
* ``oracle`` — the oracle name (oracle tuning parameters travel inside
  the spec's params, so they are part of the key automatically).

Entries are written atomically (temp file + rename), so concurrent shards
and concurrent campaigns can share one cache directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.campaign.oracles import ORACLES
from repro.campaign.specs import (
    ScenarioSpec,
    grid_sweep,
    materialize,
    random_sweep,
)

CACHE_SCHEMA = 1
"""Bump to invalidate every cached result (semantic change in any oracle)."""

DEFAULT_CACHE_DIR = ".campaign_cache"

CampaignTask = tuple[ScenarioSpec, str]


@dataclass
class CampaignResult:
    """One (spec, oracle) verdict, as recorded in the JSON artifact."""

    family: str
    seed: int
    params: dict
    spec_hash: str
    oracle: str
    agree: bool
    detail: dict = field(default_factory=dict)
    seconds: float = 0.0
    cached: bool = False
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the oracle ran to completion and both paths agreed."""
        return self.agree and self.error is None

    def to_json(self) -> dict:
        """JSON-able form (cache entry and artifact row)."""
        return {
            "family": self.family,
            "seed": self.seed,
            "params": self.params,
            "spec_hash": self.spec_hash,
            "oracle": self.oracle,
            "agree": self.agree,
            "detail": self.detail,
            "seconds": self.seconds,
            "cached": self.cached,
            "error": self.error,
        }

    @staticmethod
    def from_json(data: Mapping) -> "CampaignResult":
        """Inverse of :meth:`to_json`."""
        return CampaignResult(
            family=data["family"],
            seed=data["seed"],
            params=dict(data["params"]),
            spec_hash=data["spec_hash"],
            oracle=data["oracle"],
            agree=data["agree"],
            detail=dict(data.get("detail", {})),
            seconds=data.get("seconds", 0.0),
            cached=data.get("cached", False),
            error=data.get("error"),
        )


@dataclass
class CampaignReport:
    """Aggregate outcome of one campaign run."""

    results: list[CampaignResult]
    wall_seconds: float
    cache_hits: int
    executed: int
    shards: int

    @property
    def total(self) -> int:
        """Number of (spec, oracle) tasks covered."""
        return len(self.results)

    @property
    def disagreements(self) -> list[CampaignResult]:
        """Results whose fast and reference paths diverged."""
        return [r for r in self.results if not r.agree and r.error is None]

    @property
    def errors(self) -> list[CampaignResult]:
        """Results that crashed or timed out instead of completing."""
        return [r for r in self.results if r.error is not None]

    @property
    def clean(self) -> bool:
        """True when every task completed and every oracle agreed."""
        return not self.disagreements and not self.errors


def cache_key(spec: ScenarioSpec, oracle_name: str) -> str:
    """Content hash identifying one (spec, oracle) computation."""
    payload = json.dumps(
        {"schema": CACHE_SCHEMA, "spec": spec.as_dict(), "oracle": oracle_name},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Content-addressed on-disk store of campaign results.

    Safe under concurrent multi-process writers and readers: every write
    lands via an exclusive temp file plus an atomic ``os.replace``, so a
    reader sees either nothing or one complete entry — never a
    half-written one — and racing writers of the same key resolve to
    whichever complete entry replaced last.  ``durable=True`` adds an
    ``fsync`` before the rename (and of the directory after it), so an
    entry that :meth:`put` has acknowledged survives a machine crash —
    the verification service runs its shared result store in this mode,
    backing its no-accepted-job-lost recovery guarantee.
    """

    def __init__(self, directory: str | Path, *, durable: bool = False) -> None:
        self._dir = Path(directory)
        self._durable = durable

    @property
    def directory(self) -> Path:
        """Root of the cache tree."""
        return self._dir

    def _path(self, key: str) -> Path:
        return self._dir / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Stored result payload, or None on miss / unreadable entry.

        A truncated or otherwise corrupt entry (killed writer, disk
        hiccup) is a cache *miss*, never an exception: ``ValueError``
        covers ``json.JSONDecodeError`` plus malformed-content cases,
        and a payload that parses but is not a dict is rejected too.
        """
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def put(self, key: str, payload: dict) -> bool:
        """Atomically persist one result payload under its key.

        Best-effort: a failed write (disk, or a third-party oracle whose
        detail dict is not JSON-able) must never abort the campaign, so
        every failure is swallowed after cleaning up the temp file.
        Returns True when the entry is fully in place (callers that need
        the write — the service's worker pool — can react to False).
        """
        try:
            path = self._path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        except OSError:
            return False
        try:
            try:
                handle = os.fdopen(fd, "w", encoding="utf-8")
            except OSError:
                os.close(fd)
                raise
            with handle:
                json.dump(payload, handle, sort_keys=True)
                if self._durable:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp, path)
            if self._durable:
                self._fsync_dir(path.parent)
            return True
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        """Flush a rename to disk (POSIX: the directory holds the name)."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def __len__(self) -> int:
        if not self._dir.is_dir():
            return 0
        return sum(1 for _ in self._dir.glob("*/*.json"))


def _result_payload(spec: ScenarioSpec, oracle_name: str, *,
                    agree: bool, detail: dict, seconds: float,
                    error: str | None) -> dict:
    """The one place the result-record schema is spelled out.

    Every producer (worker success/failure, coordinator timeout and
    pool-death branches) goes through here, so the dict always matches
    what :meth:`CampaignResult.from_json` expects.
    """
    return {
        "family": spec.family,
        "seed": spec.seed,
        "params": dict(spec.params),
        "spec_hash": spec.content_hash(),
        "oracle": oracle_name,
        "agree": agree,
        "detail": detail,
        "seconds": seconds,
        "cached": False,
        "error": error,
    }


def execute_task(spec_dict: dict, oracle_name: str) -> dict:
    """Run one oracle on one spec; always returns a JSON-able result dict.

    Module-level (picklable) so it can serve as the process-pool worker.
    Exceptions are captured into the ``error`` field rather than raised:
    one crashing scenario must not abort a ten-thousand-task sweep.
    """
    spec = ScenarioSpec.from_dict(spec_dict)
    started = time.perf_counter()
    try:
        oracle = ORACLES[oracle_name]
        if not oracle.applicable(spec):
            raise ValueError(
                f"oracle {oracle_name!r} does not apply to family "
                f"{spec.family!r} (accepts {sorted(oracle.families)})"
            )
        scenario = materialize(spec)
        outcome = oracle.run(spec, scenario)
    except Exception:
        return _result_payload(
            spec, oracle_name, agree=False, detail={},
            seconds=time.perf_counter() - started,
            error=traceback.format_exc(limit=8),
        )
    return _result_payload(
        spec, oracle_name, agree=outcome.agree, detail=outcome.detail,
        seconds=time.perf_counter() - started, error=None,
    )


def map_jobs(
    jobs: Sequence[tuple[int, tuple]],
    worker: Callable[..., dict],
    record: Callable[[int, dict], None],
    failure_payload: Callable[[int, str, float], dict],
    *,
    shards: int,
    task_timeout: float,
    executor: ProcessPoolExecutor | None = None,
) -> bool:
    """Run ``worker(*args)`` for every ``(slot, args)`` job and record it.

    The generic half of the campaign runner, shared with the façade's
    ``solve_many`` batch path and the verification service's worker
    pool.  ``shards <= 1`` runs inline (no pool, no preemption);
    otherwise jobs fan out over a
    :class:`~concurrent.futures.ProcessPoolExecutor` with the *stall*
    semantics documented on :func:`run_campaign`: when no job completes
    for ``task_timeout`` seconds, every unfinished job is recorded via
    ``failure_payload(slot, error, seconds)`` and the workers are
    killed.  ``worker`` must be a module-level (picklable) callable that
    returns a JSON-able payload dict; a worker that raises is recorded
    as a failure payload instead of aborting the batch.

    ``executor`` lends an existing pool for this batch: long-running
    callers (the service drains job batches continuously) reuse one pool
    across calls instead of paying worker spawn per batch.  A lent pool
    is left running on success and is **killed and shut down** after a
    stall/crash, exactly like an owned one — the caller must replace it
    then.  Returns True when the pool stayed healthy (always True on the
    inline path), False when it was abandoned.
    """
    if executor is None and shards <= 1:
        for slot, args in jobs:
            record(slot, worker(*args))
        return True
    owned = executor is None
    if owned:
        executor = ProcessPoolExecutor(max_workers=shards)
    abandoned = False
    try:
        pending = {
            executor.submit(worker, *args): (slot, args)
            for slot, args in jobs
        }
        while pending:
            done, _ = wait(pending, timeout=task_timeout,
                           return_when=FIRST_COMPLETED)
            if not done:
                # No completion for a full timeout window: every worker
                # is wedged, so the queued jobs behind them can never
                # start.  Record them all at once instead of burning one
                # window per remaining job.
                abandoned = True
                for future, (slot, _args) in pending.items():
                    queued = future.cancel()
                    error = ("never started (pool stalled)" if queued
                             else f"timeout after {task_timeout:g}s")
                    record(slot, failure_payload(
                        slot, error, 0.0 if queued else task_timeout))
                break
            for future in done:
                slot, _args = pending.pop(future)
                try:
                    payload = future.result()
                except Exception:  # worker or pool died
                    abandoned = True
                    payload = failure_payload(
                        slot, traceback.format_exc(limit=4), 0.0)
                record(slot, payload)
    finally:
        # A timed-out worker cannot be interrupted cooperatively, and a
        # live worker keeps the interpreter from exiting (the pool's
        # atexit hook joins it).  Kill the worker processes outright so
        # the batch — and the process — finishes promptly.
        if abandoned:
            for process in list(
                    (getattr(executor, "_processes", None) or {}).values()):
                process.kill()
        if owned or abandoned:
            executor.shutdown(wait=True, cancel_futures=True)
    return not abandoned


def run_campaign(
    tasks: Sequence[CampaignTask],
    shards: int = 1,
    task_timeout: float = 120.0,
    cache_dir: str | Path | None = DEFAULT_CACHE_DIR,
    progress: Callable[[CampaignResult], None] | None = None,
) -> CampaignReport:
    """Run every (spec, oracle) task; return the aggregated report.

    ``shards`` is the worker-process count (``<= 1`` runs inline, which is
    also the fallback for environments without working multiprocessing).
    ``cache_dir=None`` disables the result cache.  ``task_timeout`` is a
    *stall* bound on the sharded path: whenever no task completes for that
    long, every worker must be stuck, so all unfinished tasks are recorded
    as error results and the workers are killed — a few hung scenarios
    cost one timeout window in total, not one window each.  The inline
    path cannot preempt a running oracle and ignores the timeout.
    """
    started = time.perf_counter()
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    results: list[CampaignResult] = [None] * len(tasks)  # type: ignore[list-item]
    misses: list[tuple[int, CampaignTask]] = []
    cache_hits = 0
    for index, (spec, oracle_name) in enumerate(tasks):
        hit = (cache.get(cache_key(spec, oracle_name))
               if cache is not None else None)
        # Never serve an error from cache: crashes and timeouts may be
        # environmental, so they are retried on the next run.
        if hit is not None and hit.get("error") is None:
            result = CampaignResult.from_json(hit)
            result.cached = True
            results[index] = result
            cache_hits += 1
            if progress:
                progress(result)
        else:
            misses.append((index, (spec, oracle_name)))

    def record(index: int, payload: dict) -> None:
        result = CampaignResult.from_json(payload)
        results[index] = result
        if cache is not None and result.error is None:
            spec, oracle_name = tasks[index]
            cache.put(cache_key(spec, oracle_name), payload)
        if progress:
            progress(result)

    def failure(index: int, error: str, seconds: float) -> dict:
        spec, oracle_name = tasks[index]
        return _result_payload(spec, oracle_name, agree=False, detail={},
                               seconds=seconds, error=error)

    map_jobs(
        [(index, (spec.as_dict(), oracle_name))
         for index, (spec, oracle_name) in misses],
        execute_task,
        record,
        failure,
        shards=shards,
        task_timeout=task_timeout,
    )
    return CampaignReport(
        results=list(results),
        wall_seconds=time.perf_counter() - started,
        cache_hits=cache_hits,
        executed=len(misses),
        shards=max(1, shards),
    )


# ----------------------------------------------------------------------
# Default campaign construction
# ----------------------------------------------------------------------


def build_default_campaign(instances: int = 120,
                           base_seed: int = 0) -> list[CampaignTask]:
    """A balanced randomized sweep across all families and oracles.

    Produces at least ``instances`` (spec, oracle) tasks: relational specs
    feed the three kodkod-level oracles, auction specs feed the engine
    oracle, and deliberately small auction specs feed the (factorially
    exploding) explorer oracle.  Deterministic in ``base_seed``.
    """
    if instances < 1:
        raise ValueError("instances must be positive")
    tasks: list[CampaignTask] = []
    # Weights chosen so each oracle gets meaningful coverage per 12 tasks.
    relational = random_sweep(
        "relational", max(1, instances // 4), base_seed=base_seed,
        num_atoms=(3, 4), depth=(1, 2), max_edges=(0, 4),
    )
    relational_oracles = ["symmetry", "evaluator", "kernels", "delta"]
    if "external" in ORACLES:
        # Registered only when REPRO_EXTERNAL_SOLVER names a real binary
        # (see repro.campaign.oracles); ride the same spec sweep.
        relational_oracles.append("external")
    for spec in relational:
        for oracle_name in relational_oracles:
            tasks.append((spec, oracle_name))
    # Enumeration rebuilds a fresh solver per model, so it gets its own
    # sweep over 3-atom universes (<= 2^10 models) to keep shards brisk.
    for spec in random_sweep(
            "relational", max(1, instances // 4), base_seed=base_seed + 8,
            num_atoms=(3, 3), depth=(1, 2), max_edges=(0, 3)):
        tasks.append((spec, "enumeration"))
    per_family = max(1, instances // 12)
    engine_specs = (
        random_sweep("mca", per_family, base_seed=base_seed + 1,
                     num_agents=(3, 6), num_items=(3, 7), target=(1, 3))
        + random_sweep("dispatch", per_family, base_seed=base_seed + 2,
                       num_units=(3, 6), num_blocks=(4, 8),
                       capacity_blocks=(1, 3))
        + random_sweep("uav", per_family, base_seed=base_seed + 3,
                       num_uavs=(3, 6), num_tasks=(3, 7), capacity=(1, 3))
        + random_sweep("vnet", per_family, base_seed=base_seed + 4,
                       grid_width=(2, 3), grid_height=(2, 3),
                       request_size=(2, 4))
    )
    for spec in engine_specs:
        tasks.append((spec, "engines"))
    explorer_specs = (
        random_sweep("mca", per_family, base_seed=base_seed + 5,
                     num_agents=(2, 3), num_items=(1, 2), target=(1, 2))
        + random_sweep("dispatch", per_family, base_seed=base_seed + 6,
                       num_units=(2, 3), num_blocks=(1, 2),
                       capacity_blocks=(1, 1))
        + random_sweep("uav", per_family, base_seed=base_seed + 7,
                       num_uavs=(2, 3), num_tasks=(1, 2), capacity=(1, 1))
    )
    for spec in explorer_specs:
        tasks.append((spec, "explorer"))
    # Delta verification over protocols re-runs the (factorially
    # exploding) explorer twice per task, so its auction specs stay as
    # small as the explorer's; vnet additionally caps the exploration
    # budget through spec params (read via ``spec.param`` by the oracle).
    delta_specs = (
        random_sweep("mca", per_family, base_seed=base_seed + 9,
                     num_agents=(2, 3), num_items=(1, 2), target=(1, 2))
        + random_sweep("dispatch", per_family, base_seed=base_seed + 10,
                       num_units=(2, 3), num_blocks=(1, 2),
                       capacity_blocks=(1, 1))
        + random_sweep("uav", per_family, base_seed=base_seed + 11,
                       num_uavs=(2, 3), num_tasks=(1, 2), capacity=(1, 1))
        + random_sweep("vnet", per_family, base_seed=base_seed + 12,
                       grid_width=(2, 2), grid_height=(2, 2),
                       request_size=(2, 2), explore_rounds=(6, 6),
                       explore_paths=(400, 400))
    )
    for spec in delta_specs:
        tasks.append((spec, "delta"))
    # Top up with extra relational specs until the requested size is hit.
    extra_seed = base_seed + 1000
    while len(tasks) < instances:
        spec = random_sweep("relational", 1, base_seed=extra_seed,
                            num_atoms=(3, 4), depth=(1, 2),
                            max_edges=(0, 4))[0]
        tasks.append((spec, "symmetry"))
        extra_seed += 1
    return tasks


__all__ = [
    "CACHE_SCHEMA",
    "CampaignReport",
    "CampaignResult",
    "CampaignTask",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "build_default_campaign",
    "cache_key",
    "execute_task",
    "grid_sweep",
    "map_jobs",
    "random_sweep",
    "run_campaign",
]
