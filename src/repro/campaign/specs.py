"""Seeded scenario generators: the randomized instance side of a campaign.

A :class:`ScenarioSpec` is a *pure description* of one randomized instance:
a family name, a seed and a flat parameter mapping.  Materialization is a
deterministic function of the spec alone — the same spec produces the same
scenario in any process — which is what makes the campaign result cache
(:mod:`repro.campaign.runner`) safe to key by the spec's content hash.

Four workload families mirror the repo's application domains (random MCA
auctions, economic-dispatch grids, UAV task sets, virtual-network
topologies) and a fifth, ``relational``, generates random bounded
relational problems for the kodkod-level oracles.  New families register
through :func:`register_family`; see the README's campaign section.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.kodkod import ast
from repro.kodkod.bounds import Bounds
from repro.kodkod.universe import Universe
from repro.mca.network import AgentNetwork
from repro.mca.policies import AgentPolicy, GeometricUtility, ResidualCapacityUtility
from repro.workloads.smartgrid import economic_dispatch
from repro.workloads.uav import uav_task_allocation
from repro.workloads.vnet import vn_embedding_workload

ParamValue = int | float | str | bool


@dataclass(frozen=True)
class ScenarioSpec:
    """A reproducible description of one randomized scenario instance.

    ``params`` is stored as a sorted tuple of (name, value) pairs so that
    specs are hashable, order-insensitive and canonically serializable.
    """

    family: str
    seed: int
    params: tuple[tuple[str, ParamValue], ...] = ()

    @staticmethod
    def make(family: str, seed: int, **params: ParamValue) -> "ScenarioSpec":
        """Build a spec with canonically sorted parameters."""
        return ScenarioSpec(family, seed, tuple(sorted(params.items())))

    def param(self, name: str, default: ParamValue | None = None) -> ParamValue:
        """Look up one parameter (``default`` when absent)."""
        for key, value in self.params:
            if key == name:
                return value
        if default is None:
            raise KeyError(f"spec has no parameter {name!r}")
        return default

    def as_dict(self) -> dict:
        """JSON-able canonical form (the cache-key payload)."""
        return {
            "family": self.family,
            "seed": self.seed,
            "params": {k: v for k, v in self.params},
        }

    @staticmethod
    def from_dict(data: Mapping) -> "ScenarioSpec":
        """Inverse of :meth:`as_dict` (used by the process-pool worker)."""
        return ScenarioSpec.make(data["family"], data["seed"], **data["params"])

    def content_hash(self) -> str:
        """Stable sha256 over the canonical JSON form.

        Never uses Python's builtin ``hash`` (salted per process), so the
        value is identical across processes and runs — the property the
        result cache and the sharded runner rely on.
        """
        payload = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def label(self) -> str:
        """Short human-readable identifier for tables and logs."""
        return f"{self.family}#{self.seed}"


# ----------------------------------------------------------------------
# Materialized scenario containers
# ----------------------------------------------------------------------


@dataclass
class AuctionScenario:
    """A ready-to-run MCA auction (the common shape of the MCA families)."""

    network: AgentNetwork
    items: list[str]
    policies: dict[int, AgentPolicy]


@dataclass
class RelationalProblem:
    """A bounded relational problem for the kodkod-level oracles."""

    formula: ast.Formula
    bounds: Bounds

    def instance_key(self, instance) -> tuple:
        """Hashable identity of an instance on the bounded relations."""
        return tuple(
            (rel.name, frozenset(instance.value_of(rel)))
            for rel in sorted(self.bounds.relations(), key=lambda r: r.name)
        )


# ----------------------------------------------------------------------
# Family registry
# ----------------------------------------------------------------------

FAMILIES: dict[str, Callable[[ScenarioSpec], object]] = {}


def register_family(name: str):
    """Decorator: register a generator under a family name."""

    def decorate(fn: Callable[[ScenarioSpec], object]):
        FAMILIES[name] = fn
        return fn

    return decorate


def materialize(spec: ScenarioSpec) -> object:
    """Deterministically build the concrete scenario a spec describes."""
    try:
        generator = FAMILIES[spec.family]
    except KeyError:
        raise KeyError(
            f"unknown scenario family {spec.family!r}; "
            f"known: {sorted(FAMILIES)}"
        ) from None
    return generator(spec)


@register_family("mca")
def _mca_family(spec: ScenarioSpec) -> AuctionScenario:
    """Random connected networks with random sub-modular valuations.

    Sub-modular utilities plus honest rebidding is the regime where the
    paper proves convergence, so every engine/explorer oracle run on this
    family must converge — disagreement or divergence is a real bug.
    """
    rng = random.Random(spec.seed)
    num_agents = int(spec.param("num_agents", 4))
    num_items = int(spec.param("num_items", 5))
    target = int(spec.param("target", 2))
    items = [f"item{i}" for i in range(num_items)]
    topology = str(spec.param("topology", "random"))
    if topology == "random":
        network = AgentNetwork.random_connected(
            num_agents, extra_edge_prob=0.3, seed=rng.randrange(1 << 30)
        )
    elif topology == "ring" and num_agents >= 3:
        network = AgentNetwork.ring(num_agents)
    elif topology == "star":
        network = AgentNetwork.star(num_agents)
    elif topology == "line":
        network = AgentNetwork.line(num_agents)
    else:
        network = AgentNetwork.complete(num_agents)
    policies = {}
    for agent in range(num_agents):
        base = {j: round(rng.uniform(1.0, 100.0), 2) for j in items}
        growth = round(rng.uniform(0.3, 0.9), 2)  # strictly sub-modular
        policies[agent] = AgentPolicy(
            utility=GeometricUtility(base, growth=growth), target=target
        )
    return AuctionScenario(network=network, items=items, policies=policies)


@register_family("dispatch")
def _dispatch_family(spec: ScenarioSpec) -> AuctionScenario:
    """Economic-dispatch grids (:func:`repro.workloads.economic_dispatch`)."""
    workload = economic_dispatch(
        num_units=int(spec.param("num_units", 5)),
        num_blocks=int(spec.param("num_blocks", 8)),
        capacity_blocks=int(spec.param("capacity_blocks", 3)),
        seed=spec.seed,
    )
    return AuctionScenario(
        network=workload.network,
        items=list(workload.items),
        policies=workload.policies,
    )


@register_family("uav")
def _uav_family(spec: ScenarioSpec) -> AuctionScenario:
    """UAV fleets (:func:`repro.workloads.uav_task_allocation`)."""
    workload = uav_task_allocation(
        num_uavs=int(spec.param("num_uavs", 4)),
        num_tasks=int(spec.param("num_tasks", 6)),
        comm_radius=float(spec.param("comm_radius", 60.0)),
        capacity=int(spec.param("capacity", 3)),
        seed=spec.seed,
    )
    return AuctionScenario(
        network=workload.network,
        items=list(workload.items),
        policies=workload.policies,
    )


@register_family("vnet")
def _vnet_family(spec: ScenarioSpec) -> AuctionScenario:
    """VN-embedding node auctions: physical nodes bid residual capacity.

    Materializes a grid substrate plus random requests and lifts the
    *first* request into an MCA auction exactly the way
    :func:`repro.vnm.embed.embed` does — the residual-capacity utility is
    sub-modular, so the convergence oracles apply.
    """
    workload = vn_embedding_workload(
        grid_width=int(spec.param("grid_width", 3)),
        grid_height=int(spec.param("grid_height", 3)),
        num_requests=int(spec.param("num_requests", 1)),
        request_size=int(spec.param("request_size", 3)),
        seed=spec.seed,
    )
    request = workload.requests[0]
    demands = request.demands()
    items = request.names()
    policies = {
        node.node_id: AgentPolicy(
            utility=ResidualCapacityUtility(node.cpu, demands),
            target=len(items),
        )
        for node in workload.physical.nodes()
    }
    network = AgentNetwork(
        ((a, b) for a, b, _ in workload.physical.links()),
        nodes=[n.node_id for n in workload.physical.nodes()],
    )
    return AuctionScenario(network=network, items=items, policies=policies)


@register_family("relational")
def _relational_family(spec: ScenarioSpec) -> RelationalProblem:
    """Random bounded relational problems over a small universe.

    A seeded port of the hypothesis strategy in
    ``tests/kodkod/test_translate_vs_evaluator.py``: two unary relations
    bounded by the whole universe, one binary relation with a sampled
    upper bound, and a random formula of bounded depth over them.  The
    free-variable count stays small enough that brute-force enumeration
    over the bounds (the evaluator oracle's reference path) is tractable.
    """
    rng = random.Random(spec.seed)
    num_atoms = int(spec.param("num_atoms", 3))
    depth = int(spec.param("depth", 2))
    max_edges = int(spec.param("max_edges", 4))
    atoms = [f"a{i}" for i in range(num_atoms)]
    universe = Universe(atoms)
    r_un = ast.Relation("r", 1)
    s_un = ast.Relation("s", 1)
    edge = ast.Relation("edge", 2)
    bounds = Bounds(universe)
    bounds.bound(r_un, universe.empty(1), universe.all_tuples(1))
    bounds.bound(s_un, universe.empty(1), universe.all_tuples(1))
    pairs = [(a, b) for a in atoms for b in atoms]
    upper = rng.sample(pairs, rng.randint(0, min(max_edges, len(pairs))))
    bounds.bound(edge, universe.empty(2), universe.tuple_set(2, upper))

    x = ast.Variable("x")
    y = ast.Variable("y")

    def expr(level: int) -> ast.Expr:
        choices = ["r", "s", "univ"]
        if level > 0:
            choices += ["union", "inter", "diff", "join_edge"]
        kind = rng.choice(choices)
        if kind == "r":
            return r_un
        if kind == "s":
            return s_un
        if kind == "univ":
            return ast.Univ()
        if kind == "join_edge":
            return ast.Join(expr(level - 1), edge)
        left, right = expr(level - 1), expr(level - 1)
        if kind == "union":
            return ast.Union(left, right)
        if kind == "inter":
            return ast.Intersection(left, right)
        return ast.Difference(left, right)

    def formula(level: int) -> ast.Formula:
        choices = ["some", "no", "one", "lone", "subset", "eq"]
        if level > 0:
            choices += ["and", "or", "not", "forall", "exists"]
        kind = rng.choice(choices)
        if kind == "some":
            return ast.Some(expr(1))
        if kind == "no":
            return ast.No(expr(1))
        if kind == "one":
            return ast.One(expr(1))
        if kind == "lone":
            return ast.Lone(expr(1))
        if kind == "subset":
            return ast.Subset(expr(1), expr(1))
        if kind == "eq":
            return ast.Equal(expr(1), expr(1))
        if kind == "and":
            return ast.And([formula(level - 1), formula(level - 1)])
        if kind == "or":
            return ast.Or([formula(level - 1), formula(level - 1)])
        if kind == "not":
            return ast.Not(formula(level - 1))
        var = x if kind == "forall" else y
        body_expr = ast.Join(var, edge) if rng.random() < 0.5 else r_un
        body = rng.choice([
            ast.Some(body_expr),
            ast.Subset(var, r_un),
            ast.No(ast.Intersection(var, s_un)),
        ])
        if kind == "forall":
            return ast.ForAll([(var, ast.Univ())], body)
        return ast.Exists([(var, ast.Univ())], body)

    return RelationalProblem(formula=formula(depth), bounds=bounds)


# ----------------------------------------------------------------------
# Fingerprints (determinism guard for the result cache)
# ----------------------------------------------------------------------


def scenario_fingerprint(spec: ScenarioSpec) -> str:
    """Stable sha256 digest of the *materialized* scenario.

    Two processes materializing the same spec must produce this exact
    digest — the determinism contract that makes the result cache's
    (spec hash, oracle) key sound.  Covered by a cross-process test.
    """
    scenario = materialize(spec)
    if isinstance(scenario, AuctionScenario):
        # Probe marginals against several bundle prefixes: utilities like
        # ResidualCapacityUtility are constant on the empty bundle, so the
        # empty probe alone would not see the per-item demands.
        probes = [scenario.items[:size] for size in range(3)]
        payload = {
            "agents": scenario.network.agents(),
            "edges": list(scenario.network.edges()),
            "items": scenario.items,
            "policies": {
                str(agent): {
                    "target": policy.target,
                    "release_outbid": policy.release_outbid,
                    "rebid": policy.rebid.value,
                    "marginals": {
                        item: [
                            round(policy.utility.marginal(item, probe), 6)
                            for probe in probes
                        ]
                        for item in scenario.items
                    },
                }
                for agent, policy in sorted(scenario.policies.items())
            },
        }
    elif isinstance(scenario, RelationalProblem):
        bounds = scenario.bounds
        payload = {
            "formula": repr(scenario.formula),
            "universe": list(bounds.universe.atoms),
            "bounds": {
                rel.name: {
                    "lower": sorted(bounds.lower(rel)),
                    "upper": sorted(bounds.upper(rel)),
                }
                for rel in sorted(bounds.relations(), key=lambda r: r.name)
            },
        }
    else:  # pragma: no cover - third-party families fingerprint via repr
        payload = {"repr": repr(scenario)}
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


# ----------------------------------------------------------------------
# Sweep expansion
# ----------------------------------------------------------------------


def grid_sweep(family: str, base_seed: int = 0, seeds_per_cell: int = 1,
               **param_lists: Sequence[ParamValue]) -> list[ScenarioSpec]:
    """Cartesian-product sweep: one spec per parameter cell per seed.

    Seeds are assigned deterministically by cell position, so the sweep is
    itself reproducible: ``grid_sweep("uav", num_uavs=[3, 4], num_tasks=[4])``
    produces the same specs everywhere.
    """
    names = sorted(param_lists)
    cells: list[dict[str, ParamValue]] = [{}]
    for name in names:
        cells = [
            {**cell, name: value}
            for cell in cells
            for value in param_lists[name]
        ]
    specs = []
    for index, cell in enumerate(cells):
        for offset in range(seeds_per_cell):
            seed = base_seed + index * seeds_per_cell + offset
            specs.append(ScenarioSpec.make(family, seed, **cell))
    return specs


def random_sweep(family: str, count: int, base_seed: int = 0,
                 **param_ranges: tuple[ParamValue, ParamValue] | Sequence[ParamValue]
                 ) -> list[ScenarioSpec]:
    """Randomized sweep: ``count`` specs with parameters drawn per spec.

    A range is either a ``(low, high)`` pair (ints sample inclusive
    integers, floats sample uniforms) or any other sequence, sampled
    uniformly.  Parameter draws come from a dedicated RNG seeded by
    ``(base_seed, index)``, independent of the scenario seed, so the sweep
    is reproducible and each spec stays self-describing.
    """
    specs = []
    for index in range(count):
        rng = random.Random(base_seed * 1_000_003 + index)
        params: dict[str, ParamValue] = {}
        for name in sorted(param_ranges):
            domain = param_ranges[name]
            if (isinstance(domain, tuple) and len(domain) == 2
                    and all(isinstance(v, (int, float)) for v in domain)
                    and not isinstance(domain[0], bool)):
                low, high = domain
                if isinstance(low, int) and isinstance(high, int):
                    params[name] = rng.randint(low, high)
                else:
                    params[name] = round(rng.uniform(float(low), float(high)), 4)
            else:
                params[name] = rng.choice(list(domain))
        specs.append(ScenarioSpec.make(family, base_seed + index, **params))
    return specs


def expand(specs: Iterable[ScenarioSpec],
           oracle_names: Iterable[str]) -> list[tuple[ScenarioSpec, str]]:
    """Pair every spec with every oracle name (the campaign task list)."""
    names = list(oracle_names)
    return [(spec, name) for spec in specs for name in names]
