"""Scenario campaigns: sharded randomized verification sweeps.

The campaign subsystem turns the verification stack into its own oracle:

* :mod:`repro.campaign.specs` — seeded :class:`ScenarioSpec` generators
  for every workload family plus random relational problems, with
  grid/random sweep expansion;
* :mod:`repro.campaign.oracles` — differential oracles pairing each fast
  path (symmetry breaking, incremental sessions, the memoized explorer,
  the engines) with a slow reference path;
* :mod:`repro.campaign.runner` — a sharded process-pool runner with
  per-task timeouts and a content-addressed on-disk result cache.

``python -m repro.campaign`` runs a default randomized sweep and writes a
``BENCH_campaign.json`` artifact; see the README's campaign section.
"""

from repro.campaign.oracles import ORACLES, Oracle, OracleOutcome, oracles_for
from repro.campaign.runner import (
    CACHE_SCHEMA,
    CampaignReport,
    CampaignResult,
    CampaignTask,
    DEFAULT_CACHE_DIR,
    ResultCache,
    build_default_campaign,
    cache_key,
    execute_task,
    run_campaign,
)
from repro.campaign.specs import (
    FAMILIES,
    AuctionScenario,
    RelationalProblem,
    ScenarioSpec,
    expand,
    grid_sweep,
    materialize,
    random_sweep,
    register_family,
    scenario_fingerprint,
)

__all__ = [
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "FAMILIES",
    "ORACLES",
    "AuctionScenario",
    "CampaignReport",
    "CampaignResult",
    "CampaignTask",
    "Oracle",
    "OracleOutcome",
    "RelationalProblem",
    "ResultCache",
    "ScenarioSpec",
    "build_default_campaign",
    "cache_key",
    "execute_task",
    "expand",
    "grid_sweep",
    "materialize",
    "oracles_for",
    "random_sweep",
    "register_family",
    "run_campaign",
    "scenario_fingerprint",
]
