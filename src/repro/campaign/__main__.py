"""``python -m repro.campaign`` — run a randomized verification sweep.

Builds the default campaign (every family, every oracle), runs it over
the requested number of shards with the on-disk result cache, prints the
per-oracle/per-family summary table, writes the ``BENCH_campaign.json``
artifact and exits non-zero on any oracle disagreement or task error.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import render_campaign_table, write_campaign_json
from repro.campaign.runner import (
    DEFAULT_CACHE_DIR,
    build_default_campaign,
    run_campaign,
)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="sharded randomized differential-verification sweep",
    )
    parser.add_argument("--instances", type=int, default=120,
                        help="minimum number of (spec, oracle) tasks "
                             "(default: %(default)s)")
    parser.add_argument("--shards", type=int, default=2,
                        help="worker processes; <=1 runs inline "
                             "(default: %(default)s)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed of the sweep (default: %(default)s)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="stall timeout in seconds: if no task "
                             "completes for this long, unfinished tasks "
                             "are recorded as errors and workers killed "
                             "(default: %(default)s)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="result cache directory (default: %(default)s)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the result cache entirely")
    parser.add_argument("--json", default="BENCH_campaign.json",
                        help="path of the JSON artifact "
                             "(default: %(default)s)")
    parser.add_argument("--profile", nargs="?", metavar="PATH",
                        const="BENCH_campaign.profile.txt", default=None,
                        help="run the sweep inline under cProfile and dump "
                             "the top-25 cumulative table to PATH "
                             "(default: %(const)s); forces --shards 1 so "
                             "worker CPU is actually captured")
    args = parser.parse_args(argv)

    tasks = build_default_campaign(instances=args.instances,
                                   base_seed=args.seed)

    def sweep():
        return run_campaign(
            tasks,
            shards=1 if args.profile else args.shards,
            task_timeout=args.timeout,
            cache_dir=None if args.no_cache else args.cache_dir,
        )

    if args.profile:
        from repro.analysis.profiling import run_profiled

        if args.shards > 1:
            print("profiling runs inline: --shards collapsed to 1 so the "
                  "profiler sees the task CPU", file=sys.stderr)
        report = run_profiled(sweep, args.profile)
        print(f"profile: {args.profile}")
    else:
        report = sweep()
    print(render_campaign_table(
        report.results,
        title=(f"campaign sweep: {report.total} tasks, "
               f"{report.shards} shard(s), "
               f"{report.cache_hits} cache hit(s), "
               f"{report.wall_seconds:.2f}s wall"),
    ))
    write_campaign_json(report.results, args.json,
                        wall_seconds=report.wall_seconds,
                        shards=report.shards)
    print(f"artifact: {args.json}")
    for bad in report.disagreements:
        print(f"DISAGREEMENT: {bad.family}#{bad.seed} / {bad.oracle}: "
              f"{bad.detail}", file=sys.stderr)
    for err in report.errors:
        print(f"ERROR: {err.family}#{err.seed} / {err.oracle}: {err.error}",
              file=sys.stderr)
    return 0 if report.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
