"""Differential oracles: fast paths checked against reference paths.

Every optimization PR 1 added to the verification core has a slower,
obviously-correct twin.  An oracle runs both on the same materialized
scenario and reports whether they agree — across a large randomized sweep
the whole stack becomes its own test oracle:

==============  =====================================  ==========================
oracle          fast path                              reference path
==============  =====================================  ==========================
``symmetry``    ``api.solve`` with lex-leader SBP      ``api.solve(symmetry=0)``
``enumeration`` ``api.enumerate`` (one live session)   fresh solver per model
``evaluator``   ``api.enumerate`` (CDCL pipeline)      brute force + ground eval
``kernels``     ``solver="kodkod-vector"`` (numpy)     ``solver="kodkod"`` (pure)
``external``    ``solver="dimacs:<cmd>"`` (env-gated)  ``solver="kodkod"`` (pure)
``explorer``    ``api.run_protocol`` (memoized)        plain DFS (``memoize=False``)
``engines``     synchronous lock-step engine           asynchronous delivery
``delta``       ``solve_delta`` on a mutated problem   fresh ``api.solve``
==============  =====================================  ==========================

The ``external`` oracle needs a SAT-competition-conformant binary and is
registered only when the ``REPRO_EXTERNAL_SOLVER`` environment variable
names one (the nightly CI job installs picosat and sets it); call
:func:`register_external_oracle` to wire a command explicitly.

Fast paths go through the :mod:`repro.api` façade — the surface every
user-facing caller takes — so the sweep exercises the exact production
code path; reference paths deliberately stay on the low-level internals
(a raw :class:`~repro.kodkod.engine.Session`, the plain explorer DFS)
that bypass the optimizations under test.

An oracle *agrees* when the two paths produce the same verdict; the
returned detail dict records what was compared so disagreements are
diagnosable from the campaign JSON artifact alone.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Callable

from repro.api import FormulaProblem, ProtocolProblem
from repro.api import enumerate as api_enumerate
from repro.api import run_protocol, solve as api_solve
from repro.campaign.specs import AuctionScenario, RelationalProblem, ScenarioSpec
from repro.checking.explorer import explore
from repro.kodkod.engine import Session
from repro.kodkod.evaluator import Evaluator, brute_force_instances
from repro.kodkod.symmetry import DEFAULT_SBP_LENGTH
from repro.mca.convergence import consensus_report
from repro.mca.engine import AsynchronousEngine, SynchronousEngine


@dataclass
class OracleOutcome:
    """Verdict of one oracle on one scenario."""

    oracle: str
    agree: bool
    detail: dict = field(default_factory=dict)
    """JSON-able breakdown of what the two paths reported."""


@dataclass(frozen=True)
class Oracle:
    """A named differential check over one scenario family shape."""

    name: str
    families: frozenset[str]
    run: Callable[[ScenarioSpec, object], OracleOutcome]
    description: str = ""

    def applicable(self, spec: ScenarioSpec) -> bool:
        """Whether this oracle knows how to check the spec's family."""
        return spec.family in self.families


ORACLES: dict[str, Oracle] = {}

_RELATIONAL = frozenset({"relational"})
_AUCTIONS = frozenset({"mca", "dispatch", "uav", "vnet"})

# Fresh-solver enumeration rebuilds the translation per model; cap the
# model count so a pathological spec cannot stall a shard (specs whose
# model space exceeds the cap are reported as truncated, still compared).
_ENUMERATION_CAP = 1500


def register_oracle(name: str, families: frozenset[str], description: str = ""):
    """Decorator: register an oracle implementation under a name."""

    def decorate(fn: Callable[[ScenarioSpec, object], OracleOutcome]):
        ORACLES[name] = Oracle(name, families, fn, description)
        return fn

    return decorate


def oracles_for(spec: ScenarioSpec) -> list[str]:
    """Names of every registered oracle applicable to a spec."""
    return sorted(n for n, o in ORACLES.items() if o.applicable(spec))


@register_oracle("symmetry", _RELATIONAL,
                 "solve with lex-leader SBP vs solve(symmetry=0): same verdict")
def _symmetry_oracle(spec: ScenarioSpec,
                     scenario: RelationalProblem) -> OracleOutcome:
    problem = FormulaProblem(scenario.formula, scenario.bounds)
    fast = api_solve(problem, symmetry=DEFAULT_SBP_LENGTH)
    reference = api_solve(problem, symmetry=0)
    return OracleOutcome(
        oracle="symmetry",
        agree=fast.satisfiable == reference.satisfiable,
        detail={
            "sat_with_sbp": fast.satisfiable,
            "sat_without_sbp": reference.satisfiable,
            "sbp_clauses": fast.stats.num_clauses,
            "plain_clauses": reference.stats.num_clauses,
        },
    )


@register_oracle("enumeration", _RELATIONAL,
                 "Session-incremental enumeration vs fresh solver per model")
def _enumeration_oracle(spec: ScenarioSpec,
                        scenario: RelationalProblem) -> OracleOutcome:
    formula, bounds = scenario.formula, scenario.bounds
    incremental = {
        scenario.instance_key(inst)
        for inst in api_enumerate(FormulaProblem(formula, bounds),
                                  limit=_ENUMERATION_CAP).instances
    }
    # Reference: a brand-new translation and solver for every model, with
    # the blocking clauses re-asserted from scratch each round.  No learned
    # clause survives between queries, so any incremental-state bug in the
    # session path shows up as a set difference.
    reference: set = set()
    blocking: list[list[int]] = []
    while len(reference) < _ENUMERATION_CAP:
        fresh = Session(formula, bounds)
        if not all(fresh.solver.add_clause(cl) for cl in blocking):
            break
        solution = fresh.solve()
        if not solution.satisfiable:
            break
        reference.add(scenario.instance_key(solution.instance))
        primary = fresh.translation.primary_vars()
        if not primary:
            break
        model = fresh.solver.model()
        blocking.append([-v if model[v] else v for v in primary])
    truncated = (len(incremental) >= _ENUMERATION_CAP
                 or len(reference) >= _ENUMERATION_CAP)
    # Under the cap both paths must enumerate the exact same instance set.
    # At the cap the sets may legitimately differ (the two paths walk the
    # model space in different orders), so only the counts are compared.
    agree = (len(incremental) == len(reference) if truncated
             else incremental == reference)
    return OracleOutcome(
        oracle="enumeration",
        agree=agree,
        detail={
            "incremental_models": len(incremental),
            "fresh_solver_models": len(reference),
            "truncated": truncated,
        },
    )


@register_oracle("evaluator", _RELATIONAL,
                 "translator + solver enumeration vs brute force + ground eval")
def _evaluator_oracle(spec: ScenarioSpec,
                      scenario: RelationalProblem) -> OracleOutcome:
    formula, bounds = scenario.formula, scenario.bounds
    solved = {
        scenario.instance_key(inst)
        for inst in api_enumerate(FormulaProblem(formula, bounds)).instances
    }
    ground = {
        scenario.instance_key(inst)
        for inst in brute_force_instances(bounds)
        if Evaluator(inst).check(formula)
    }
    return OracleOutcome(
        oracle="evaluator",
        agree=solved == ground,
        detail={
            "sat_models": len(solved),
            "ground_models": len(ground),
            "only_sat": len(solved - ground),
            "only_ground": len(ground - solved),
        },
    )


@register_oracle("kernels", _RELATIONAL,
                 "vector propagation kernel vs pure interpreted loop: "
                 "same verdict and same model set")
def _kernels_oracle(spec: ScenarioSpec,
                    scenario: RelationalProblem) -> OracleOutcome:
    problem = FormulaProblem(scenario.formula, scenario.bounds)
    fast = api_solve(problem, solver="kodkod-vector")
    reference = api_solve(problem, solver="kodkod")
    vector_models = {
        scenario.instance_key(inst)
        for inst in api_enumerate(problem, solver="kodkod-vector",
                                  limit=_ENUMERATION_CAP).instances
    }
    pure_models = {
        scenario.instance_key(inst)
        for inst in api_enumerate(problem, solver="kodkod",
                                  limit=_ENUMERATION_CAP).instances
    }
    truncated = (len(vector_models) >= _ENUMERATION_CAP
                 or len(pure_models) >= _ENUMERATION_CAP)
    # The kernels are search-trajectory identical, so (unlike the
    # enumeration oracle) even the truncated prefixes must match — any
    # difference is a kernel bug, not an enumeration-order artifact.
    agree = (fast.satisfiable == reference.satisfiable
             and vector_models == pure_models)
    return OracleOutcome(
        oracle="kernels",
        agree=agree,
        detail={
            "sat_vector": fast.satisfiable,
            "sat_pure": reference.satisfiable,
            "vector_models": len(vector_models),
            "pure_models": len(pure_models),
            "truncated": truncated,
            # "vector" when numpy is installed, "pure" after the fallback
            # (the oracle then degenerates to pure-vs-pure, which is fine).
            "vector_kernel": fast.solver_stats.get("kernel", "pure"),
        },
    )


def register_external_oracle(command: str) -> None:
    """Register the ``external`` oracle against a solver ``command``.

    The fast path round-trips through ``solver="dimacs:<command>"``; the
    reference is the in-tree pure pipeline.  Verdicts and the enumerated
    primary-variable projections must both match.  The command must print
    ``v``-line models (picosat does; bare minisat does not).

    A command already carrying the ``dimacs-inc:`` prefix selects the
    persistent incremental backend instead (one process per query,
    blocking clauses streamed over stdin) — the nightly CI arms
    ``REPRO_EXTERNAL_SOLVER`` this way on one leg so the incremental
    protocol is differentially checked too.
    """
    if command.startswith("dimacs-inc:"):
        backend = command
        command = command[len("dimacs-inc:"):].strip()
    else:
        backend = f"dimacs:{command}"

    @register_oracle("external", _RELATIONAL,
                     f"external solver '{backend}' vs built-in "
                     "pipeline: same verdict and same model set")
    def _external_oracle(spec: ScenarioSpec,
                         scenario: RelationalProblem) -> OracleOutcome:
        problem = FormulaProblem(scenario.formula, scenario.bounds)
        fast = api_solve(problem, solver=backend)
        reference = api_solve(problem, solver="kodkod")
        external_models = {
            scenario.instance_key(inst)
            for inst in api_enumerate(problem, solver=backend,
                                      limit=_ENUMERATION_CAP).instances
        }
        pure_models = {
            scenario.instance_key(inst)
            for inst in api_enumerate(problem, solver="kodkod",
                                      limit=_ENUMERATION_CAP).instances
        }
        truncated = (len(external_models) >= _ENUMERATION_CAP
                     or len(pure_models) >= _ENUMERATION_CAP)
        # Distinct solvers walk the model space in different orders, so at
        # the cap only the counts are comparable (as in `enumeration`).
        agree = (fast.satisfiable == reference.satisfiable
                 and (len(external_models) == len(pure_models) if truncated
                      else external_models == pure_models))
        return OracleOutcome(
            oracle="external",
            agree=agree,
            detail={
                "sat_external": fast.satisfiable,
                "sat_pure": reference.satisfiable,
                "external_models": len(external_models),
                "pure_models": len(pure_models),
                "truncated": truncated,
                "external_command": command,
                "external_wall_time": round(
                    fast.solver_stats.get("external_wall_time", 0.0), 6),
            },
        )


_EXTERNAL_SOLVER_ENV = "REPRO_EXTERNAL_SOLVER"

if os.environ.get(_EXTERNAL_SOLVER_ENV):
    register_external_oracle(os.environ[_EXTERNAL_SOLVER_ENV])


@register_oracle("explorer", _AUCTIONS,
                 "memoized schedule exploration vs plain DFS: same verdict")
def _explorer_oracle(spec: ScenarioSpec,
                     scenario: AuctionScenario) -> OracleOutcome:
    max_rounds = int(spec.param("explore_rounds", 8))
    max_paths = int(spec.param("explore_paths", 4000))
    memoized = run_protocol(
        ProtocolProblem(scenario.network, tuple(scenario.items),
                        scenario.policies),
        max_rounds=max_rounds, max_paths=max_paths, memoize=True,
    )
    plain = explore(
        scenario.network, scenario.items, scenario.policies,
        max_rounds=max_rounds, max_paths=max_paths, memoize=False,
    )
    memoized_worst = memoized.detail["max_rounds_to_converge"]
    agree = (
        memoized.holds == plain.all_converged
        and memoized_worst == plain.max_rounds_to_converge
        and (memoized.trace is None) == (plain.counterexample is None)
    )
    return OracleOutcome(
        oracle="explorer",
        agree=agree,
        detail={
            "memoized_converged": memoized.holds,
            "plain_converged": plain.all_converged,
            "memoized_worst_rounds": memoized_worst,
            "plain_worst_rounds": plain.max_rounds_to_converge,
            "memo_hits": memoized.detail["memo_hits"],
            "plain_paths": plain.paths_explored,
        },
    )


@register_oracle("delta", _RELATIONAL | _AUCTIONS,
                 "solve_delta on a mutated problem vs fresh solve: "
                 "same verdict")
def _delta_oracle(spec: ScenarioSpec, scenario) -> OracleOutcome:
    """Verdict equivalence of the delta path against a fresh full solve.

    Anchors a :class:`repro.api.DeltaSession` on the scenario's problem,
    mutates the problem once (seeded by spec seed + problem identity, so
    reruns are deterministic in any process), solves the mutant through
    the session, and compares against a cold ``api.solve`` of the same
    mutant.  Both the warm-reuse path (delta-safe edits) and the fallback
    path (structural edits, protocol edits) flow through here — which
    path was taken is recorded in the detail, but *any* verdict
    difference is a disagreement regardless of path.
    """
    # Imported lazily: repro.fuzz pulls the campaign oracles in at
    # package load time (and repro.api.delta pulls repro.fuzz in), so
    # module-level imports here would cycle through three packages.
    from repro.api.delta import DeltaSession
    from repro.fuzz import codec
    from repro.fuzz.mutators import mutate_problem

    if isinstance(scenario, AuctionScenario):
        problem = ProtocolProblem(scenario.network, tuple(scenario.items),
                                  scenario.policies)
        opts = {
            "max_rounds": int(spec.param("explore_rounds", 8)),
            "max_paths": int(spec.param("explore_paths", 4000)),
        }
    else:
        problem = FormulaProblem(scenario.formula, scenario.bounds)
        opts = {"symmetry": 0}
    identity = codec.problem_identity(codec.problem_to_json(problem))
    rng = random.Random(f"delta:{spec.seed}:{identity}")
    mutated = mutate_problem(problem, rng)
    if mutated is None:
        new_problem, mutation = problem, "identity"
    else:
        new_problem, mutation = mutated
    session = DeltaSession(problem, **opts)
    delta_result = session.solve(new_problem)
    fresh = api_solve(new_problem, **opts)
    provenance = delta_result.detail.get("delta", {})
    return OracleOutcome(
        oracle="delta",
        agree=delta_result.verdict == fresh.verdict,
        detail={
            "mutation": mutation,
            "delta_path": provenance.get("path"),
            "delta_reason": provenance.get("reason"),
            "verdict_delta": delta_result.verdict.value,
            "verdict_fresh": fresh.verdict.value,
            "delta_seconds": round(
                delta_result.detail.get("solve_seconds", 0.0), 6),
            "fresh_seconds": round(
                fresh.detail.get("solve_seconds", 0.0), 6),
        },
    )


@register_oracle("engines", _AUCTIONS,
                 "synchronous vs asynchronous (fifo + random) convergence")
def _engines_oracle(spec: ScenarioSpec,
                    scenario: AuctionScenario) -> OracleOutcome:
    max_rounds = int(spec.param("max_rounds", 300))
    max_messages = int(spec.param("max_messages", 500000))
    sync_engine = SynchronousEngine(
        scenario.network, scenario.items, scenario.policies)
    sync = sync_engine.run(max_rounds=max_rounds)
    fifo_engine = AsynchronousEngine(
        scenario.network, scenario.items, scenario.policies, scheduler="fifo")
    fifo = fifo_engine.run(max_messages=max_messages)
    random_engine = AsynchronousEngine(
        scenario.network, scenario.items, scenario.policies,
        scheduler="random", seed=spec.seed)
    rand = random_engine.run(max_messages=max_messages)
    # The campaign families generate sub-modular, honest policies, where
    # the paper guarantees convergence under *every* schedule — so every
    # engine must converge, not merely agree (three identical livelocks
    # would be a real bug, not agreement).  The final allocation may
    # legitimately differ between schedules (bids depend on bundle build
    # order), so the oracle requires the consensus predicate of each
    # converged state rather than allocation equality.
    verdicts = {
        "synchronous": sync.converged,
        "async_fifo": fifo.converged,
        "async_random": rand.converged,
    }
    consensus = {
        "synchronous": consensus_report(sync_engine.agents).consensus,
        "async_fifo": consensus_report(fifo_engine.agents).consensus,
        "async_random": consensus_report(random_engine.agents).consensus,
    }
    agree = all(verdicts.values()) and all(consensus.values())
    return OracleOutcome(
        oracle="engines",
        agree=agree,
        detail={
            **{f"converged_{k}": v for k, v in verdicts.items()},
            **{f"consensus_{k}": v for k, v in consensus.items()},
            "sync_rounds": sync.rounds,
            "fifo_messages": fifo.messages_processed,
            "random_messages": rand.messages_processed,
        },
    )
