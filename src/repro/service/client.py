"""A small stdlib client for the verification service.

Used by the tests, the benchmark and the CI smoke job; also the shortest
path for scripts::

    client = ServiceClient("http://127.0.0.1:8765")
    job = client.submit({"problem": tree, "options": {"solver": "kodkod"}})
    result = client.wait(job["id"])["result"]

Every method raises :class:`ServiceError` (carrying the HTTP status and
the server's ``error`` message) on any non-2xx response.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request


class ServiceError(RuntimeError):
    """A non-2xx service response (``.status`` holds the HTTP code)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Thin JSON-over-HTTP wrapper around the five endpoints."""

    def __init__(self, base_url: str, *, token: str | None = None,
                 timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.token = token
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def request(self, method: str, path: str, body=None) -> dict:
        data = None if body is None else json.dumps(body).encode()
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method)
        request.add_header("Content-Type", "application/json")
        if self.token is not None:
            request.add_header("Authorization", f"Bearer {self.token}")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except ValueError:
                message = str(exc)
            raise ServiceError(exc.code, message) from exc

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------

    def submit(self, submission: dict) -> dict:
        """POST /v1/jobs — returns the job envelope (``id``, ``state``)."""
        return self.request("POST", "/v1/jobs", submission)

    def job(self, job_id: str) -> dict:
        """GET /v1/jobs/<id>."""
        return self.request("GET", f"/v1/jobs/{job_id}")

    def results(self, fingerprint: str) -> dict:
        """GET /v1/results/<fingerprint>."""
        return self.request("GET", f"/v1/results/{fingerprint}")

    def metrics(self) -> dict:
        """GET /v1/metrics."""
        return self.request("GET", "/v1/metrics")

    def healthz(self) -> dict:
        """GET /v1/healthz."""
        return self.request("GET", "/v1/healthz")

    def claim(self, worker: str, *, limit: int = 1,
              lease_seconds: float = 30.0) -> dict:
        """POST /v1/claims — lease up to ``limit`` pending jobs.

        Returns ``{"claims": [{"id", "lease", "deadline", "payload",
        ...}]}``; an empty list means nothing is pending (or everything
        pending is hub-local, e.g. ``delta_of`` jobs).
        """
        return self.request("POST", "/v1/claims", {
            "worker": worker, "limit": limit,
            "lease_seconds": lease_seconds,
        })

    def post_result(self, job_id: str, *, lease: str, worker: str,
                    result: dict, retryable: bool = False) -> dict:
        """POST /v1/jobs/<id>/result — complete or fail a leased job."""
        return self.request("POST", f"/v1/jobs/{job_id}/result", {
            "lease": lease, "worker": worker, "result": result,
            "retryable": retryable,
        })

    def heartbeat(self, lease: str,
                  lease_seconds: float | None = None) -> dict:
        """POST /v1/claims/<lease>/heartbeat — extend a live lease."""
        body = {} if lease_seconds is None else {
            "lease_seconds": lease_seconds}
        return self.request("POST", f"/v1/claims/{lease}/heartbeat", body)

    def wait(self, job_id: str, *, timeout: float = 120.0,
             poll_interval: float = 0.05) -> dict:
        """Poll one job until it leaves pending/running.

        Returns the final job body (``state`` is ``done`` or ``error``);
        raises :class:`TimeoutError` if the deadline passes first.
        """
        deadline = time.time() + timeout
        while True:
            body = self.job(job_id)
            if body["state"] in ("done", "error"):
                return body
            if time.time() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {body['state']} after {timeout}s")
            time.sleep(poll_interval)
