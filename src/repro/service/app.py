"""The HTTP layer: the versioned endpoints over one service object.

==================================  ===================================
``POST /v1/jobs``                   submit a job (``202``; idempotent —
                                    the same work resubmitted returns
                                    the same content-addressed id with
                                    ``created`` false, and a finished
                                    job's result is inlined)
``GET /v1/jobs/<id>``               poll one job: state envelope + the
                                    result payload once ``done``
``GET /v1/results/<fp>``            every finished result for one
                                    problem fingerprint (any options)
``POST /v1/claims``                 lease up to N pending jobs to a
                                    remote satellite worker (cache hits
                                    complete inline; ``delta_of`` jobs
                                    stay local)
``POST /v1/jobs/<id>/result``       complete or fail a leased job with
                                    a ``result_to_json`` payload (409
                                    on a lapsed lease)
``POST /v1/claims/<lease>/heartbeat``  extend a live lease's deadline
``GET /v1/healthz``                 liveness + queue counts (never
                                    auth-gated)
``GET /v1/metrics``                 queue depth, jobs by state, leases
                                    by worker, cache hit rate,
                                    solve-latency histogram, worker
                                    utilization
==================================  ===================================

Served by a stdlib :class:`~http.server.ThreadingHTTPServer` — requests
are handled on threads, solving happens in the worker pool's processes,
and the two meet only at the (locked) queue.

Two production stubs ship default-off so local use never trips them:

* **token auth** — configuring ``token`` requires
  ``Authorization: Bearer <token>`` on every endpoint except
  ``/v1/healthz`` (``401`` otherwise);
* **rate limiting** — configuring ``rate_limit`` gives each client
  address a token bucket (``burst`` capacity, ``rate_limit`` refills
  per second); an empty bucket answers ``429`` with ``Retry-After``.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.campaign.runner import ResultCache
from repro.service.queue import (
    DONE,
    LOCAL_WORKER,
    JobQueue,
    JobRecord,
    LeaseError,
    QueueError,
)
from repro.service.schema import SERVICE_SCHEMA, SchemaError, decode_submission
from repro.service.workers import WorkerPool

MAX_BODY_BYTES = 8 * 1024 * 1024
"""Submission size ceiling (a codec tree this large is a client bug)."""

MAX_CLAIM_LIMIT = 32
"""Jobs one POST /v1/claims may lease (keeps responses bounded)."""

DEFAULT_LEASE_SECONDS = 30.0
MIN_LEASE_SECONDS = 0.05
MAX_LEASE_SECONDS = 3600.0


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a service instance needs; only the paths are required."""

    queue_dir: str | Path
    cache_dir: str | Path
    host: str = "127.0.0.1"
    port: int = 0
    """0 binds an ephemeral port; read it back from ``service.port``."""
    workers: int = 2
    max_attempts: int = 3
    batch_limit: int = 16
    task_timeout: float = 120.0
    token: str | None = None
    """Bearer token required on every endpoint but healthz (None = open)."""
    rate_limit: float = 0.0
    """Requests/second refilled per client (0 disables rate limiting)."""
    burst: int = 20
    """Token-bucket capacity per client."""
    local_dispatch: bool = True
    """False runs the hub as a pure coordinator: leases still expire and
    results are still accepted, but only satellites solve jobs."""


class _TokenBucket:
    """One client's rate-limit state (monotonic-clock refill)."""

    __slots__ = ("tokens", "updated")

    def __init__(self, burst: int) -> None:
        self.tokens = float(burst)
        self.updated = time.monotonic()

    def allow(self, rate: float, burst: int) -> tuple[bool, float]:
        now = time.monotonic()
        self.tokens = min(float(burst),
                          self.tokens + (now - self.updated) * rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / rate


class VerificationService:
    """Queue + cache + worker pool + HTTP server, one object to run."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.queue = JobQueue(config.queue_dir,
                              max_attempts=config.max_attempts)
        # Durable: a job the journal marks done must have its result on
        # disk even through kill -9, so cache writes fsync.
        self.cache = ResultCache(config.cache_dir, durable=True)
        self.pool = WorkerPool(
            self.queue, self.cache,
            workers=config.workers,
            task_timeout=config.task_timeout,
            batch_limit=config.batch_limit,
            claim_jobs=config.local_dispatch,
        )
        self._buckets: dict[str, _TokenBucket] = {}
        self._buckets_lock = threading.Lock()
        self._httpd: ThreadingHTTPServer | None = None
        self._http_thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "VerificationService":
        self.pool.start()
        self.pool.kick()  # recovered jobs may already be pending
        self._httpd = _Server((self.config.host, self.config.port),
                              _Handler, service=self)
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="service-http",
            daemon=True)
        self._http_thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._http_thread is not None:
            self._http_thread.join(timeout=10)
            self._http_thread = None
        self.pool.stop()
        self.queue.close()

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    # ------------------------------------------------------------------
    # operations (HTTP-independent, reusable in-process)
    # ------------------------------------------------------------------

    def submit(self, payload) -> tuple[JobRecord, bool]:
        """Validate and enqueue one submission (raises SchemaError)."""
        submission = decode_submission(payload)
        if submission.delta_of is not None:
            if self.queue.get(submission.delta_of) is None:
                raise SchemaError(
                    f"delta_of references unknown job "
                    f"{submission.delta_of!r}; submit the anchor first"
                )
        record, created = self.queue.submit(submission)
        if created:
            self.pool.metrics.count("submitted")
        self.pool.kick()
        return record, created

    def claim_jobs(self, payload) -> dict:
        """Lease up to N pending jobs to a remote satellite.

        Jobs whose ``cache_key`` already has a (non-error) cached result
        are completed inline instead of shipped — a satellite never
        burns a solve the cache can answer.  ``delta_of`` jobs stay
        local: their whole point is the hub's warm session LRU.
        """
        if not isinstance(payload, dict):
            raise SchemaError("claim body must be a JSON object")
        worker = payload.get("worker")
        if not isinstance(worker, str) or not worker:
            raise SchemaError("claim needs a non-empty 'worker' id string")
        if worker == LOCAL_WORKER:
            raise SchemaError(
                f"worker id {LOCAL_WORKER!r} is reserved for the hub's "
                f"own dispatcher")
        limit = payload.get("limit", 1)
        if not isinstance(limit, int) or not 1 <= limit <= MAX_CLAIM_LIMIT:
            raise SchemaError(
                f"limit must be an integer in 1..{MAX_CLAIM_LIMIT}, "
                f"got {limit!r}")
        lease_seconds = payload.get("lease_seconds", DEFAULT_LEASE_SECONDS)
        if (not isinstance(lease_seconds, (int, float))
                or not MIN_LEASE_SECONDS <= lease_seconds
                <= MAX_LEASE_SECONDS):
            raise SchemaError(
                f"lease_seconds must be a number in {MIN_LEASE_SECONDS}.."
                f"{MAX_LEASE_SECONDS}, got {lease_seconds!r}")
        claims = []
        while len(claims) < limit:
            batch = self.queue.claim(
                limit - len(claims), worker=worker,
                lease_seconds=float(lease_seconds), skip_delta=True)
            if not batch:
                break
            for record in batch:
                hit = self.cache.get(record.cache_key)
                if hit is not None and hit.get("error") is None:
                    self.queue.complete(record.id, lease=record.lease)
                    self.pool.metrics.count("cache_hits")
                    self.pool.metrics.observe_done(
                        time.time() - record.submitted_at)
                    continue
                self.pool.metrics.count("satellite_claims")
                claims.append({
                    "id": record.id,
                    "lease": record.lease,
                    "deadline": record.lease_deadline,
                    "attempts": record.attempts,
                    "kind": record.kind,
                    "label": record.label,
                    "cache_key": record.cache_key,
                    "payload": record.payload,
                })
        return {"schema": SERVICE_SCHEMA, "worker": worker,
                "claims": claims}

    def post_result(self, job_id: str, payload) -> dict:
        """Accept a leased job's result from a satellite.

        A non-error result is written to the shared cache *before* the
        job is marked done (the same done-implies-result-on-disk
        invariant the local pool keeps); an error result parks or
        requeues the job through the usual machinery.  A post whose
        lease lapsed raises :class:`LeaseError` (409) — unless the job
        already finished with the identical content-addressed result, in
        which case the duplicate is acknowledged idempotently.
        """
        if not isinstance(payload, dict):
            raise SchemaError("result body must be a JSON object")
        lease = payload.get("lease")
        if not isinstance(lease, str) or not lease:
            raise SchemaError("posting a result requires the claim's "
                              "'lease' id")
        result = payload.get("result")
        if not isinstance(result, dict) or "verdict" not in result:
            raise SchemaError(
                "'result' must be a result_to_json payload (an object "
                "with at least a 'verdict')")
        retryable = bool(payload.get("retryable", False))
        record = self.queue.get(job_id)
        if record is None:
            raise QueueError(f"unknown job {job_id!r}")
        error = result.get("error")
        if error is None and record.state != DONE:
            # Errors are never cached; a good verdict is durably cached
            # before the journal can say done.
            self.cache.put(record.cache_key, result)
        try:
            if error is None:
                record = self.queue.complete(job_id, lease=lease)
                self.pool.metrics.count("satellite_results")
                self.pool.metrics.observe_done(
                    time.time() - record.submitted_at)
            else:
                record = self.queue.fail(job_id, str(error),
                                         retryable=retryable, lease=lease)
                self.pool.metrics.count("satellite_results")
                if record.state == "pending":
                    self.pool.metrics.count("retries")
                else:
                    self.pool.metrics.count("jobs_error")
        except QueueError:
            record = self.queue.get(job_id)
            if record is not None and record.state == DONE:
                # The job finished elsewhere (lease expired, someone
                # re-solved it); same content address, same result.
                return {**self.job_body(record), "duplicate": True}
            raise
        return self.job_body(record)

    def heartbeat_lease(self, lease: str, payload) -> dict:
        """Extend a live lease's deadline (satellite keep-alive)."""
        extend = None
        if isinstance(payload, dict) and "lease_seconds" in payload:
            extend = payload["lease_seconds"]
            if (not isinstance(extend, (int, float))
                    or not MIN_LEASE_SECONDS <= extend
                    <= MAX_LEASE_SECONDS):
                raise SchemaError(
                    f"lease_seconds must be a number in "
                    f"{MIN_LEASE_SECONDS}..{MAX_LEASE_SECONDS}, "
                    f"got {extend!r}")
            extend = float(extend)
        record = self.queue.heartbeat(lease, extend)
        return {"schema": SERVICE_SCHEMA, "lease": lease,
                "id": record.id, "worker": record.worker,
                "deadline": record.lease_deadline}

    def job_body(self, record: JobRecord) -> dict:
        """The GET /v1/jobs/<id> body: envelope + result when done."""
        body = record.envelope()
        if record.state == DONE:
            body["result"] = self.cache.get(record.cache_key)
        return body

    def results_for(self, fingerprint: str) -> dict:
        """Every finished result for one problem fingerprint."""
        entries = []
        for record in self.queue.by_fingerprint(fingerprint):
            if record.state != DONE:
                continue
            entries.append({"id": record.id,
                            "label": record.label,
                            "result": self.cache.get(record.cache_key)})
        return {"schema": SERVICE_SCHEMA, "fingerprint": fingerprint,
                "results": entries}

    def metrics_body(self) -> dict:
        counts = self.queue.counts()
        return {
            "schema": SERVICE_SCHEMA,
            "queue_depth": counts["pending"],
            "jobs": counts,
            "leases": self.queue.lease_counts(),
            "recovered": self.queue.recovered,
            **self.pool.metrics.snapshot(),
        }

    def health_body(self) -> dict:
        return {"ok": True, "schema": SERVICE_SCHEMA,
                "jobs": self.queue.counts(),
                "recovered": self.queue.recovered}

    # ------------------------------------------------------------------
    # edge policies
    # ------------------------------------------------------------------

    def authorized(self, header: str | None) -> bool:
        if self.config.token is None:
            return True
        return header == f"Bearer {self.config.token}"

    def admit(self, client: str) -> tuple[bool, float]:
        """Rate-limit one request from ``client`` (True = admitted)."""
        if self.config.rate_limit <= 0:
            return True, 0.0
        with self._buckets_lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = _TokenBucket(
                    self.config.burst)
            return bucket.allow(self.config.rate_limit, self.config.burst)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, *,
                 service: VerificationService) -> None:
        self.service = service
        super().__init__(address, handler)


_UNREADABLE = object()
"""Sentinel for a POST body that could not be read (error already sent)."""


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: _Server

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the service is quiet; metrics are the observability surface

    def _send(self, status: int, body: dict,
              headers: dict | None = None) -> None:
        data = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _error(self, status: int, message: str,
               headers: dict | None = None) -> None:
        self._send(status, {"error": message}, headers)

    def _gate(self, path: str) -> bool:
        """Auth + rate limit; True means the request may proceed."""
        service = self.server.service
        admitted, retry_after = service.admit(self.client_address[0])
        if not admitted:
            self._error(429, "rate limit exceeded",
                        {"Retry-After": f"{retry_after:.3f}"})
            return False
        if path != "/v1/healthz" and not service.authorized(
                self.headers.get("Authorization")):
            self._error(401, "missing or invalid bearer token",
                        {"WWW-Authenticate": "Bearer"})
            return False
        return True

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------

    def _read_json(self):
        """Parse the POST body; on failure sends the error and returns
        the ``_UNREADABLE`` sentinel (None is a legal JSON body)."""
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._error(413, f"body must be 0..{MAX_BODY_BYTES} bytes")
            return _UNREADABLE
        try:
            return json.loads(self.rfile.read(length) or b"null")
        except ValueError:
            self._error(400, "body is not valid JSON")
            return _UNREADABLE

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if not self._gate(self.path):
            return
        service = self.server.service
        payload = self._read_json()
        if payload is _UNREADABLE:
            return
        try:
            if self.path == "/v1/jobs":
                record, created = service.submit(payload)
                # Re-fetch a locked snapshot: the dispatcher may already
                # be mutating the live record we were handed back.
                body = service.job_body(service.queue.get(record.id))
                body["created"] = created
                self._send(202, body)
            elif self.path == "/v1/claims":
                self._send(200, service.claim_jobs(payload))
            elif (self.path.startswith("/v1/claims/")
                    and self.path.endswith("/heartbeat")):
                lease = self.path[len("/v1/claims/"):-len("/heartbeat")]
                self._send(200, service.heartbeat_lease(lease, payload))
            elif (self.path.startswith("/v1/jobs/")
                    and self.path.endswith("/result")):
                job_id = self.path[len("/v1/jobs/"):-len("/result")]
                self._send(200, service.post_result(job_id, payload))
            else:
                self._error(404, f"no such endpoint: POST {self.path}")
        except SchemaError as exc:
            self._error(400, str(exc))
        except LeaseError as exc:
            self._error(409, str(exc))
        except QueueError as exc:
            self._error(404 if "unknown job" in str(exc) else 409,
                        str(exc))

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if not self._gate(self.path):
            return
        service = self.server.service
        if self.path == "/v1/healthz":
            self._send(200, service.health_body())
        elif self.path == "/v1/metrics":
            self._send(200, service.metrics_body())
        elif self.path.startswith("/v1/jobs/"):
            job_id = self.path[len("/v1/jobs/"):]
            record = service.queue.get(job_id)
            if record is None:
                self._error(404, f"unknown job {job_id!r}")
            else:
                self._send(200, service.job_body(record))
        elif self.path.startswith("/v1/results/"):
            fingerprint = self.path[len("/v1/results/"):]
            self._send(200, service.results_for(fingerprint))
        else:
            self._error(404, f"no such endpoint: GET {self.path}")
