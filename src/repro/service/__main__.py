"""``python -m repro.service`` — run a verification hub or satellite.

Hub mode (the default) prints ``serving on http://HOST:PORT`` once the
socket is bound (with ``--port 0`` the kernel picks the port, so callers
— the CI smoke job, the e2e tests — parse it from this line), then
serves until interrupted.

Satellite mode (``--satellite http://hub:port``) prints
``satellite WORKER_ID polling URL`` and pulls leased jobs from the hub
until interrupted; it needs no local state directories at all.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading

from repro.service.app import ServiceConfig, VerificationService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="HTTP verification service over the repro façade",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765,
                        help="0 binds an ephemeral port (printed on start)")
    parser.add_argument("--workers", type=int, default=2,
                        help="solver processes in the pool")
    parser.add_argument("--queue-dir", default=None,
                        help="persistent job journal directory (hub mode)")
    parser.add_argument("--cache-dir", default=None,
                        help="content-addressed result cache directory "
                             "(hub mode)")
    parser.add_argument("--token", default=None,
                        help="require 'Authorization: Bearer <token>'")
    parser.add_argument("--rate-limit", type=float, default=0.0,
                        help="requests/second per client (0 = unlimited)")
    parser.add_argument("--burst", type=int, default=20,
                        help="rate-limit bucket capacity per client")
    parser.add_argument("--max-attempts", type=int, default=3,
                        help="attempts before a stalling job is parked")
    parser.add_argument("--batch-limit", type=int, default=16,
                        help="jobs claimed per dispatch round")
    parser.add_argument("--task-timeout", type=float, default=120.0,
                        help="pool stall bound in seconds")
    parser.add_argument("--no-local-dispatch", action="store_true",
                        help="hub coordinates only: sweep leases and "
                             "accept results, never solve locally")
    parser.add_argument("--metrics-json", default=None,
                        help="write a final /v1/metrics snapshot here on "
                             "shutdown (BENCH-style artifact)")
    satellite = parser.add_argument_group(
        "satellite mode", "pull leased jobs from a remote hub instead "
        "of serving")
    satellite.add_argument("--satellite", metavar="HUB_URL", default=None,
                           help="run as a satellite worker against this "
                                "hub (no local directories needed)")
    satellite.add_argument("--worker-id", default=None,
                           help="satellite worker id (default: generated)")
    satellite.add_argument("--claim-limit", type=int, default=2,
                           help="jobs leased per claim request")
    satellite.add_argument("--lease-seconds", type=float, default=30.0,
                           help="lease duration; heartbeats renew it at "
                                "a third of this")
    satellite.add_argument("--poll-interval", type=float, default=0.25,
                           help="idle re-poll delay in seconds")
    return parser


def _run_satellite(args) -> int:
    # Imported here so hub mode never pays for it (and vice versa).
    from repro.service.satellite import SatelliteWorker

    worker = SatelliteWorker(
        args.satellite,
        worker_id=args.worker_id,
        token=args.token,
        claim_limit=args.claim_limit,
        lease_seconds=args.lease_seconds,
        poll_interval=args.poll_interval,
    )
    print(f"satellite {worker.worker_id} polling {args.satellite}",
          flush=True)
    try:
        worker.run()
    except KeyboardInterrupt:
        worker.stop()
    print(f"satellite {worker.worker_id} stats: "
          f"{json.dumps(worker.stats.snapshot(), sort_keys=True)}",
          flush=True)
    return 0


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.satellite is not None:
        return _run_satellite(args)
    if args.queue_dir is None or args.cache_dir is None:
        parser.error("hub mode requires --queue-dir and --cache-dir "
                     "(or pass --satellite HUB_URL)")
    service = VerificationService(ServiceConfig(
        queue_dir=args.queue_dir,
        cache_dir=args.cache_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        token=args.token,
        rate_limit=args.rate_limit,
        burst=args.burst,
        max_attempts=args.max_attempts,
        batch_limit=args.batch_limit,
        task_timeout=args.task_timeout,
        local_dispatch=not args.no_local_dispatch,
    ))
    service.start()
    print(f"serving on {service.url}", flush=True)
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        from repro.analysis.report import (
            render_service_table,
            write_service_json,
        )

        snapshot = service.metrics_body()
        service.stop()
        print(render_service_table(snapshot), flush=True)
        if args.metrics_json:
            write_service_json(snapshot, args.metrics_json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
