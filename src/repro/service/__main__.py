"""``python -m repro.service`` — run a verification service.

Prints ``serving on http://HOST:PORT`` once the socket is bound (with
``--port 0`` the kernel picks the port, so callers — the CI smoke job,
the e2e tests — parse it from this line), then serves until interrupted.
"""

from __future__ import annotations

import argparse
import sys
import threading

from repro.service.app import ServiceConfig, VerificationService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="HTTP verification service over the repro façade",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765,
                        help="0 binds an ephemeral port (printed on start)")
    parser.add_argument("--workers", type=int, default=2,
                        help="solver processes in the pool")
    parser.add_argument("--queue-dir", required=True,
                        help="persistent job journal directory")
    parser.add_argument("--cache-dir", required=True,
                        help="content-addressed result cache directory")
    parser.add_argument("--token", default=None,
                        help="require 'Authorization: Bearer <token>'")
    parser.add_argument("--rate-limit", type=float, default=0.0,
                        help="requests/second per client (0 = unlimited)")
    parser.add_argument("--burst", type=int, default=20,
                        help="rate-limit bucket capacity per client")
    parser.add_argument("--max-attempts", type=int, default=3,
                        help="attempts before a stalling job is parked")
    parser.add_argument("--batch-limit", type=int, default=16,
                        help="jobs claimed per dispatch round")
    parser.add_argument("--task-timeout", type=float, default=120.0,
                        help="pool stall bound in seconds")
    parser.add_argument("--metrics-json", default=None,
                        help="write a final /v1/metrics snapshot here on "
                             "shutdown (BENCH-style artifact)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    service = VerificationService(ServiceConfig(
        queue_dir=args.queue_dir,
        cache_dir=args.cache_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        token=args.token,
        rate_limit=args.rate_limit,
        burst=args.burst,
        max_attempts=args.max_attempts,
        batch_limit=args.batch_limit,
        task_timeout=args.task_timeout,
    ))
    service.start()
    print(f"serving on {service.url}", flush=True)
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        from repro.analysis.report import (
            render_service_table,
            write_service_json,
        )

        snapshot = service.metrics_body()
        service.stop()
        print(render_service_table(snapshot), flush=True)
        if args.metrics_json:
            write_service_json(snapshot, args.metrics_json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
