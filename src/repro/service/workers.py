"""The async worker pool: drains the queue through the campaign runner.

One dispatcher thread claims batches of pending jobs and completes them
by the cheapest route available:

* **cache hit** — the job's ``cache_key`` is already in the shared
  :class:`~repro.campaign.runner.ResultCache`: the job completes without
  solving anything (errors are never cached, so a hit is always a real
  verdict);
* **delta job** — a ``delta_of`` submission is answered in-process
  through :class:`repro.api.DeltaSession`: sessions are anchored on the
  referenced job's problem and kept in a small LRU so a stream of edits
  against one anchor reuses a live solver (``detail["delta"]`` records
  which path answered);
* **miss** — everything else fans out over a *persistent*
  :class:`~concurrent.futures.ProcessPoolExecutor` lent to
  :func:`~repro.campaign.runner.map_jobs`, reusing the batch path's
  stall-kill semantics: a wedged pool is killed, the affected jobs are
  requeued (up to the queue's retry cap), and the pool is rebuilt for
  the next batch.

Solved results are written into the cache *before* the job is marked
done — with ``durable=True`` the cache write is fsynced, so a job the
journal says is done always has its result on disk.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor

from repro.api.batch import DEFAULT_TASK_TIMEOUT, _solve_worker
from repro.api.delta import DeltaSession
from repro.api.options import Options
from repro.campaign.runner import ResultCache, map_jobs
from repro.service.queue import JobQueue, JobRecord
from repro.service.schema import decode_problem

_LATENCY_BUCKETS = tuple(0.001 * 2 ** i for i in range(18))
"""Histogram bucket upper bounds: 1 ms .. ~131 s, powers of two."""

_SESSION_CAP = 8
"""Live DeltaSessions kept warm (LRU) — each holds a solver."""


class ServiceMetrics:
    """Thread-safe counters + histogram behind ``/v1/metrics``."""

    def __init__(self, workers: int) -> None:
        self._lock = threading.Lock()
        self._workers = max(1, workers)
        self._started = time.time()
        self._busy_seconds = 0.0
        self._latency = [0] * (len(_LATENCY_BUCKETS) + 1)
        self.submitted = 0
        self.cache_hits = 0
        self.solves = 0
        self.delta_reused = 0
        self.delta_fallback = 0
        self.jobs_done = 0
        self.jobs_error = 0
        self.retries = 0
        self.satellite_claims = 0
        self.satellite_results = 0
        self.leases_expired = 0

    def count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def observe_done(self, latency_seconds: float) -> None:
        """A job reached ``done``; bucket its submit-to-result latency."""
        with self._lock:
            self.jobs_done += 1
            for index, bound in enumerate(_LATENCY_BUCKETS):
                if latency_seconds <= bound:
                    self._latency[index] += 1
                    break
            else:
                self._latency[-1] += 1

    def observe_busy(self, seconds: float) -> None:
        """Solver time actually burned (utilization numerator)."""
        with self._lock:
            self._busy_seconds += max(0.0, seconds)

    def snapshot(self) -> dict:
        """The metrics block of ``/v1/metrics`` (plain JSON)."""
        with self._lock:
            elapsed = max(1e-9, time.time() - self._started)
            completions = self.cache_hits + self.solves
            histogram = {}
            for index, bound in enumerate(_LATENCY_BUCKETS):
                if self._latency[index]:
                    histogram[f"le_{bound:g}s"] = self._latency[index]
            if self._latency[-1]:
                histogram["inf"] = self._latency[-1]
            return {
                "uptime_seconds": round(elapsed, 3),
                "submitted": self.submitted,
                "jobs_done": self.jobs_done,
                "jobs_error": self.jobs_error,
                "retries": self.retries,
                "solves": self.solves,
                "cache_hits": self.cache_hits,
                "cache_hit_rate": (round(self.cache_hits / completions, 4)
                                   if completions else None),
                "delta_reused": self.delta_reused,
                "delta_fallback": self.delta_fallback,
                "satellite_claims": self.satellite_claims,
                "satellite_results": self.satellite_results,
                "leases_expired": self.leases_expired,
                "latency_histogram": histogram,
                "worker_utilization": round(
                    min(1.0, self._busy_seconds / (self._workers * elapsed)),
                    4),
            }


class WorkerPool:
    """The dispatcher thread + persistent solve pool over one queue."""

    def __init__(self, queue: JobQueue, cache: ResultCache, *,
                 workers: int = 2,
                 task_timeout: float = DEFAULT_TASK_TIMEOUT,
                 batch_limit: int = 16,
                 poll_interval: float = 0.05,
                 claim_jobs: bool = True) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.queue = queue
        self.cache = cache
        self.workers = workers
        self.task_timeout = task_timeout
        self.batch_limit = max(1, batch_limit)
        self.poll_interval = poll_interval
        self.claim_jobs = claim_jobs
        """False runs the hub as a pure coordinator: the dispatcher
        thread still sweeps expired leases, but never claims work itself
        — every job is solved by remote satellites."""
        self.metrics = ServiceMetrics(workers)
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._idle = threading.Event()
        self._idle.set()
        self._executor: ProcessPoolExecutor | None = None
        self._sessions: OrderedDict[tuple, DeltaSession] = OrderedDict()
        self._thread = threading.Thread(
            target=self._run, name="service-dispatcher", daemon=True)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "WorkerPool":
        self._thread.start()
        return self

    def kick(self) -> None:
        """Wake the dispatcher now (called on every accepted submission)."""
        self._wake.set()

    def stop(self) -> None:
        self._stop.set()
        self._wake.set()
        if self._thread.is_alive():
            self._thread.join(timeout=30)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        for session in self._sessions.values():
            session.close()
        self._sessions.clear()

    def drain(self, timeout: float = 60.0) -> bool:
        """Block until no job is pending/running (True) or timeout."""
        deadline = time.time() + timeout
        while time.time() < deadline:
            if self.queue.unfinished() == 0 and self._idle.is_set():
                return True
            time.sleep(0.02)
        return self.queue.unfinished() == 0

    # ------------------------------------------------------------------
    # the dispatch loop
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self.poll_interval)
            self._wake.clear()
            if self._stop.is_set():
                break
            self._sweep_leases()
            if not self.claim_jobs:
                continue
            claimed = self.queue.claim(self.batch_limit)
            if not claimed:
                continue
            self._idle.clear()
            try:
                self._process(claimed)
            finally:
                self._idle.set()

    def _sweep_leases(self) -> None:
        """Requeue jobs whose satellite lease lapsed (every loop tick)."""
        for record in self.queue.expire_leases():
            self.metrics.count("leases_expired")
            if record.state == "pending":
                self.metrics.count("retries")
            else:
                self.metrics.count("jobs_error")

    def _process(self, claimed: list[JobRecord]) -> None:
        misses: list[JobRecord] = []
        for record in claimed:
            hit = self.cache.get(record.cache_key)
            if hit is not None and hit.get("error") is None:
                self.metrics.count("cache_hits")
                self._finish(record, latency_start=record.submitted_at)
            elif record.delta_of is not None:
                self._solve_delta_job(record)
            else:
                misses.append(record)
        if misses:
            self._solve_batch(misses)

    # ------------------------------------------------------------------
    # completion routes
    # ------------------------------------------------------------------

    def _finish(self, record: JobRecord, *, latency_start: float) -> None:
        self.queue.complete(record.id)
        self.metrics.observe_done(time.time() - latency_start)

    def _job_options(self, record: JobRecord) -> Options:
        return Options.from_json(record.payload.get("options") or {})

    def _solve_delta_job(self, record: JobRecord) -> None:
        """Answer a ``delta_of`` job on a warm (LRU-cached) session."""
        try:
            options = self._job_options(record)
            problem = decode_problem(record.payload["problem"])
            session = self._session_for(record, options)
            result = session.solve(problem)
        except Exception as exc:  # decode/anchor errors are deterministic
            self.queue.fail(record.id, f"delta job failed: {exc}",
                            retryable=False)
            self.metrics.count("jobs_error")
            return
        from repro.api.result import result_to_json

        payload = result_to_json(result)
        path = (result.detail.get("delta") or {}).get("path")
        self.metrics.count("delta_reused" if path == "reused"
                           else "delta_fallback")
        self.metrics.count("solves")
        self.metrics.observe_busy(result.seconds)
        if payload.get("error") is None:
            self.cache.put(record.cache_key, payload)
            self._finish(record, latency_start=record.submitted_at)
        else:
            self.queue.fail(record.id, payload["error"], retryable=False)
            self.metrics.count("jobs_error")

    def _session_for(self, record: JobRecord,
                     options: Options) -> DeltaSession:
        anchor = self.queue.get(record.delta_of)
        if anchor is None:
            raise ValueError(
                f"delta_of references unknown job {record.delta_of!r}")
        key = (record.delta_of,
               json.dumps(options.cache_signature(), sort_keys=True))
        session = self._sessions.get(key)
        if session is not None:
            self._sessions.move_to_end(key)
            return session
        anchor_problem = decode_problem(anchor.payload["problem"])
        # The anchor was (or will be) solved by its own job; the session
        # only needs its translation, so skip the redundant anchor solve.
        session = DeltaSession(anchor_problem, options=options,
                               solve_anchor=False)
        self._sessions[key] = session
        while len(self._sessions) > _SESSION_CAP:
            _, evicted = self._sessions.popitem(last=False)
            evicted.close()
        return session

    def _solve_batch(self, records: list[JobRecord]) -> None:
        """Fan cache misses out over the persistent process pool."""
        jobs = []
        stalled: set[int] = set()
        for slot, record in enumerate(records):
            try:
                options = self._job_options(record)
                problem = decode_problem(record.payload["problem"])
            except Exception as exc:
                self.queue.fail(record.id, f"undecodable job: {exc}",
                                retryable=False)
                self.metrics.count("jobs_error")
                continue
            jobs.append((slot, (problem, options)))
        if not jobs:
            return

        def record_result(slot: int, payload: dict) -> None:
            record = records[slot]
            self.metrics.count("solves")
            self.metrics.observe_busy(payload.get("seconds") or 0.0)
            if payload.get("error") is None:
                self.cache.put(record.cache_key, payload)
                self._finish(record, latency_start=record.submitted_at)
                return
            # A stall is environmental (requeue, costing an attempt); a
            # worker exception is deterministic (park immediately).
            retryable = slot in stalled
            updated = self.queue.fail(record.id, payload["error"],
                                      retryable=retryable)
            if updated.state == "pending":
                self.metrics.count("retries")
            else:
                self.metrics.count("jobs_error")

        def failure(slot: int, error: str, seconds: float) -> dict:
            stalled.add(slot)
            return {"verdict": "error", "seconds": seconds, "error": error}

        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        healthy = map_jobs(jobs, _solve_worker, record_result, failure,
                           shards=self.workers,
                           task_timeout=self.task_timeout,
                           executor=self._executor)
        if not healthy:
            # map_jobs killed and shut the lent pool down; rebuild lazily.
            self._executor = None
