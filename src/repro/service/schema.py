"""The versioned wire schema: what travels between clients and the service.

One submission format, one job envelope, one result format:

* **submissions** carry either a ``problem`` (the fuzz codec's tagged
  tree — all three kinds: ``formula``, ``module``, ``protocol``) or a
  ``spec`` (a campaign :class:`~repro.campaign.specs.ScenarioSpec` dict,
  lifted through :func:`~repro.api.problem_from_spec`), plus optional
  ``options`` (any subset of :class:`~repro.api.Options` fields) and an
  optional ``delta_of`` anchor job id for warm re-verification;
* **job ids** are content addresses: a sha256 over the problem
  fingerprint, the result-affecting options signature and the delta
  anchor — resubmitting the same work yields the same id, which is what
  makes submission idempotent and the cache the shared result store;
* **results** are exactly :func:`repro.api.result_to_json` — the same
  payload the batch cache stores, so the service and ``solve_many``
  interoperate on one format.

``SERVICE_SCHEMA`` versions all of it: a submission declaring a
different version is rejected at the edge, and the queue journal records
the version so a future reader can refuse entries it no longer
understands.  This schema is the contract the distributed execution
fabric (ROADMAP item 2) reuses: remote satellites claim journal entries
and write ``result_to_json`` payloads into the shared cache — nothing
more is needed on the wire.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.api.batch import batch_cache_key
from repro.api.options import Options
from repro.api.problems import (
    Problem,
    problem_fingerprint,
    problem_from_spec,
    problem_kind,
)

SERVICE_SCHEMA = 1
"""Bump on any incompatible change to the submission/envelope format."""

_SUBMISSION_KEYS = {"schema", "problem", "spec", "options", "delta_of",
                    "label"}


class SchemaError(ValueError):
    """A submission the service cannot accept (HTTP 400 at the edge)."""


@dataclass(frozen=True)
class JobSubmission:
    """A validated, canonicalized job submission.

    ``problem_payload`` is the canonical codec tree (re-encoded from the
    decoded problem, so equivalent spellings canonicalize identically);
    ``job_id``/``fingerprint``/``cache_key`` are its content addresses.
    The decoded :class:`~repro.api.problems.Problem` itself is *not*
    kept: the journal stores plain JSON, and workers re-decode lazily.
    """

    job_id: str
    fingerprint: str
    cache_key: str
    kind: str
    problem_payload: dict
    options: Options
    delta_of: str | None = None
    label: str = ""

    def payload(self) -> dict:
        """The canonical JSON the queue journals for this submission."""
        return {
            "schema": SERVICE_SCHEMA,
            "problem": self.problem_payload,
            "options": self.options.to_json(),
            "delta_of": self.delta_of,
            "label": self.label,
        }


def job_id_for(fingerprint: str, options: Options,
               delta_of: str | None = None) -> str:
    """Content address of one job: problem + result-affecting options +
    delta anchor.  Execution knobs (workers, timeout) are excluded, so
    resubmitting with a different pool size is the *same* job."""
    payload = json.dumps(
        {
            "schema": SERVICE_SCHEMA,
            "fingerprint": fingerprint,
            "options": options.cache_signature(),
            "delta_of": delta_of,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def decode_problem(payload: dict) -> Problem:
    """Decode a submission's problem tree (all three kinds).

    Raises :class:`SchemaError` with the codec's message on a malformed
    tree.
    """
    # Imported lazily: the codec imports repro.api, keep service import
    # cost (and cycles) minimal.
    from repro.fuzz.codec import CodecError, problem_from_json

    try:
        return problem_from_json(payload)
    except CodecError as exc:
        raise SchemaError(f"invalid problem payload: {exc}") from exc
    except (KeyError, TypeError, ValueError) as exc:
        # The codec reports structured problems as CodecError; a payload
        # missing whole keys dies lower with a bare KeyError/TypeError.
        raise SchemaError(
            f"invalid problem payload: {type(exc).__name__}: {exc}"
        ) from exc


def decode_submission(payload) -> JobSubmission:
    """Validate and canonicalize one POST /v1/jobs body.

    Accepts ``{"problem": <codec tree>}`` or ``{"spec": <campaign spec
    dict>}`` (exactly one), optional ``options``/``delta_of``/``label``,
    and an optional ``schema`` declaration that must match
    :data:`SERVICE_SCHEMA`.  Every failure raises :class:`SchemaError`
    with an actionable message.
    """
    from repro.fuzz.codec import CodecError, problem_to_json

    if not isinstance(payload, dict):
        raise SchemaError(
            f"submission must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    unknown = sorted(set(payload) - _SUBMISSION_KEYS)
    if unknown:
        raise SchemaError(
            f"unknown submission key(s) {unknown}; valid keys are: "
            f"{sorted(_SUBMISSION_KEYS)}"
        )
    declared = payload.get("schema", SERVICE_SCHEMA)
    if declared != SERVICE_SCHEMA:
        raise SchemaError(
            f"unsupported schema version {declared!r}; this service "
            f"speaks schema {SERVICE_SCHEMA}"
        )
    has_problem = "problem" in payload
    has_spec = "spec" in payload
    if has_problem == has_spec:
        raise SchemaError(
            "a submission needs exactly one of 'problem' (a codec tree) "
            "or 'spec' (a campaign scenario spec)"
        )
    try:
        options = Options.from_json(payload.get("options") or {})
    except ValueError as exc:
        raise SchemaError(f"invalid options: {exc}") from exc
    if has_problem:
        problem = decode_problem(payload["problem"])
    else:
        # Imported lazily for the same cycle reason as the codec.
        from repro.campaign.specs import ScenarioSpec

        try:
            spec = ScenarioSpec.from_dict(payload["spec"])
            problem = problem_from_spec(spec)
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(f"invalid spec: {exc}") from exc
    delta_of = payload.get("delta_of")
    if delta_of is not None and (not isinstance(delta_of, str)
                                 or not delta_of):
        raise SchemaError(
            f"delta_of must be a job id string (a previously submitted "
            f"job to anchor the warm re-verification on), got "
            f"{delta_of!r}"
        )
    label = payload.get("label", "")
    if not isinstance(label, str):
        raise SchemaError(f"label must be a string, got {label!r}")
    try:
        problem_payload = problem_to_json(problem)
    except CodecError as exc:
        raise SchemaError(f"problem has no wire form: {exc}") from exc
    fingerprint = problem_fingerprint(problem)
    return JobSubmission(
        job_id=job_id_for(fingerprint, options, delta_of),
        fingerprint=fingerprint,
        cache_key=batch_cache_key(problem, options),
        kind=problem_kind(problem),
        problem_payload=problem_payload,
        options=options,
        delta_of=delta_of,
        label=label,
    )
