"""Verification-as-a-service: an HTTP job API over the façade.

The service turns the library into a long-running system: clients POST
problem submissions to ``/v1/jobs``, a persistent on-disk queue journals
every accepted job, an async worker pool drains the queue through the
campaign runner's process-pool machinery, and the content-addressed
:class:`~repro.campaign.runner.ResultCache` is the shared result store —
a job whose (problem fingerprint, options) pair was ever solved
completes without solving again.

Layers (stdlib only — ``http.server``, ``threading``, ``json``):

* :mod:`repro.service.schema` — the versioned wire schema: job
  submissions (codec problem trees or campaign specs), validated
  :class:`~repro.api.Options`, content-addressed job ids;
* :mod:`repro.service.queue` — the append-only journal + atomic state
  transitions (pending → running → done/error), crash-safe recovery,
  stall-kill requeue with a retry cap;
* :mod:`repro.service.workers` — the worker pool: cache-first completion,
  ``delta_of`` jobs routed through the warm
  :class:`~repro.api.DeltaSession` path, everything else fanned out over
  a persistent :func:`~repro.campaign.runner.map_jobs` pool;
* :mod:`repro.service.app` — the HTTP layer (`/v1/jobs`, `/v1/results`,
  `/v1/healthz`, `/v1/metrics`) with token-auth and per-client
  token-bucket rate-limit stubs;
* :mod:`repro.service.client` — a small stdlib client used by the tests,
  the benchmark, the satellites and the CI smoke job;
* :mod:`repro.service.satellite` — the remote half of the execution
  fabric: pull-based satellite workers that lease journal entries over
  HTTP (``POST /v1/claims``), solve through the same ``_solve_worker``
  the in-process pool uses, and post ``result_to_json`` payloads the hub
  writes into the shared cache.  Leases carry expiry deadlines; a
  satellite that dies mid-lease is swept by the hub and its jobs are
  requeued through the usual attempt-cap machinery.

Run a hub with ``python -m repro.service`` and any number of satellites
with ``python -m repro.service --satellite http://hub:port`` (see
``--help``).  One hub can mix its own in-process workers (lease holder
``"local"``) with remote satellites; ``--no-local-dispatch`` turns the
hub into a pure coordinator.
"""

from repro.service.app import ServiceConfig, VerificationService
from repro.service.client import ServiceClient, ServiceError
from repro.service.queue import JobQueue, JobRecord, LeaseError, QueueError
from repro.service.satellite import SatelliteWorker
from repro.service.schema import (
    SERVICE_SCHEMA,
    JobSubmission,
    SchemaError,
    decode_submission,
)
from repro.service.workers import ServiceMetrics, WorkerPool

__all__ = [
    "SERVICE_SCHEMA",
    "JobQueue",
    "JobRecord",
    "JobSubmission",
    "LeaseError",
    "QueueError",
    "SatelliteWorker",
    "SchemaError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "VerificationService",
    "WorkerPool",
    "decode_submission",
]
