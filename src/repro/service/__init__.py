"""Verification-as-a-service: an HTTP job API over the façade.

The service turns the library into a long-running system: clients POST
problem submissions to ``/v1/jobs``, a persistent on-disk queue journals
every accepted job, an async worker pool drains the queue through the
campaign runner's process-pool machinery, and the content-addressed
:class:`~repro.campaign.runner.ResultCache` is the shared result store —
a job whose (problem fingerprint, options) pair was ever solved
completes without solving again.

Layers (stdlib only — ``http.server``, ``threading``, ``json``):

* :mod:`repro.service.schema` — the versioned wire schema: job
  submissions (codec problem trees or campaign specs), validated
  :class:`~repro.api.Options`, content-addressed job ids;
* :mod:`repro.service.queue` — the append-only journal + atomic state
  transitions (pending → running → done/error), crash-safe recovery,
  stall-kill requeue with a retry cap;
* :mod:`repro.service.workers` — the worker pool: cache-first completion,
  ``delta_of`` jobs routed through the warm
  :class:`~repro.api.DeltaSession` path, everything else fanned out over
  a persistent :func:`~repro.campaign.runner.map_jobs` pool;
* :mod:`repro.service.app` — the HTTP layer (`/v1/jobs`, `/v1/results`,
  `/v1/healthz`, `/v1/metrics`) with token-auth and per-client
  token-bucket rate-limit stubs;
* :mod:`repro.service.client` — a small stdlib client used by the tests,
  the benchmark and the CI smoke job.

Run one with ``python -m repro.service`` (see ``--help``).

The job/result schema is deliberately the contract a distributed
execution fabric can reuse: satellites that claim queue jobs and write
into the same cache need nothing the wire format does not already carry.
"""

from repro.service.app import ServiceConfig, VerificationService
from repro.service.client import ServiceClient, ServiceError
from repro.service.queue import JobQueue, JobRecord
from repro.service.schema import (
    SERVICE_SCHEMA,
    JobSubmission,
    SchemaError,
    decode_submission,
)
from repro.service.workers import ServiceMetrics, WorkerPool

__all__ = [
    "SERVICE_SCHEMA",
    "JobQueue",
    "JobRecord",
    "JobSubmission",
    "SchemaError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "VerificationService",
    "WorkerPool",
    "decode_submission",
]
