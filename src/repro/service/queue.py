"""The persistent job queue: an append-only journal + in-memory index.

Every accepted job is an event stream in ``journal.jsonl``::

    {"event": "submit",  "id": ..., "payload": {...}, ...}
    {"event": "lease",   "id": ..., "attempt": 1, "worker": "local",
     "lease": ..., "deadline": null, ...}
    {"event": "done",    "id": ...}        # or "error" / "requeue"
    {"event": "release", "id": ..., "lease": ..., "reason": "expired"}

Appends are single ``write()`` calls of one ``\\n``-terminated line,
flushed and fsynced before :meth:`JobQueue.submit` returns — an accepted
job survives ``kill -9`` of the server.  Recovery replays the journal:
a torn final line (the crash interrupted the write itself) is dropped,
finished jobs stay finished, and jobs that were *running* when the
process died are requeued — each replay/stall costs one attempt, and a
job that exhausts :attr:`JobQueue.max_attempts` is parked as an error
instead of crash-looping the service.

**Leases.**  Every claim is a lease: the claim carries the claiming
``worker`` id and (for remote satellites) an expiry ``deadline``, both
journaled in the ``lease`` event.  The local dispatcher leases with no
deadline — its stall-kill machinery already bounds local work — while
satellite claims over HTTP always carry one.  A lease whose deadline
passes without a result is swept by :meth:`expire_leases`: the journal
records a ``release`` (reason ``expired``) and the job is requeued
through the same ``fail(retryable=True)`` attempt-cap machinery a local
stall uses, so a satellite dying mid-lease costs exactly one attempt.
Heartbeats extend a deadline *in memory only*: deadlines need no
durability because replay requeues every running job anyway (the crash
already invalidated whoever held the lease on this hub's authority).

State transitions are atomic under one lock shared by the HTTP threads
and the worker pool; the journal is the only persistent state (results
live in the content-addressed cache, keyed by each record's
``cache_key``).  :meth:`get` and :meth:`by_fingerprint` return
*copies* snapshotted under that lock — HTTP threads render them while
the dispatcher keeps mutating the live records, and a torn read of a
half-applied transition must never reach the wire.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from repro.service.schema import SERVICE_SCHEMA, JobSubmission

PENDING = "pending"
RUNNING = "running"
DONE = "done"
ERROR = "error"

STATES = (PENDING, RUNNING, DONE, ERROR)

LOCAL_WORKER = "local"
"""The lease-holder id of the hub's own dispatcher."""

DEFAULT_MAX_ATTEMPTS = 3
"""Attempts (initial + retries) before a stalling job is parked as error."""

MAX_JOURNALED_ERROR = 500
"""Cap on journaled error/reason strings — a pathological solver
traceback must not bloat every future replay of the journal."""


class QueueError(RuntimeError):
    """An impossible transition was requested (caller bug)."""


class LeaseError(QueueError):
    """A transition presented a lease the queue no longer honors —
    lapsed, superseded by a requeue, or simply unknown (HTTP 409)."""


@dataclass
class JobRecord:
    """One job's full state, reconstructible from the journal."""

    id: str
    payload: dict
    fingerprint: str
    cache_key: str
    kind: str
    state: str = PENDING
    attempts: int = 0
    error: str | None = None
    label: str = ""
    delta_of: str | None = None
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    worker: str | None = None
    lease: str | None = None
    lease_deadline: float | None = None
    lease_seconds: float | None = None

    def envelope(self) -> dict:
        """The job's wire envelope (GET /v1/jobs/<id> body, sans result)."""
        return {
            "schema": SERVICE_SCHEMA,
            "id": self.id,
            "state": self.state,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "attempts": self.attempts,
            "error": self.error,
            "label": self.label,
            "delta_of": self.delta_of,
            "worker": self.worker,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
        }


class JobQueue:
    """Crash-safe persistent queue with atomic, leased state transitions."""

    def __init__(self, directory: str | Path, *,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self.max_attempts = max_attempts
        self._lock = threading.RLock()
        self._jobs: dict[str, JobRecord] = {}
        self._by_fingerprint: dict[str, list[str]] = {}
        self._leases: dict[str, str] = {}  # live lease id -> job id
        self._recovered = 0
        self._dropped_lines = 0
        self._replay()
        self._journal = open(self._journal_path, "a", encoding="utf-8")

    @property
    def directory(self) -> Path:
        return self._dir

    @property
    def _journal_path(self) -> Path:
        return self._dir / "journal.jsonl"

    @property
    def recovered(self) -> int:
        """Jobs that were running at the last crash and were requeued."""
        return self._recovered

    # ------------------------------------------------------------------
    # journal
    # ------------------------------------------------------------------

    def _append(self, event: dict) -> None:
        """Durably append one event line (fsync before returning)."""
        line = json.dumps(event, sort_keys=True) + "\n"
        self._journal.write(line)
        self._journal.flush()
        os.fsync(self._journal.fileno())

    def _replay(self) -> None:
        """Rebuild the index from the journal; requeue interrupted jobs."""
        path = self._journal_path
        if not path.exists():
            return
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    # A torn line: either the tail the crash cut short, or
                    # corruption.  Either way the event never finished
                    # being accepted; drop it and keep replaying.
                    self._dropped_lines += 1
                    continue
                if isinstance(event, dict):
                    self._apply(event)
        # Jobs mid-flight when the process died: the attempt is lost, so
        # requeue (or park) exactly as a stall would.  Whoever held the
        # lease held it on the dead hub's authority, so it lapses here.
        for record in self._jobs.values():
            if record.state == RUNNING:
                self._recovered += 1
                self._clear_lease(record)
                if record.attempts >= self.max_attempts:
                    record.state = ERROR
                    record.error = (
                        f"gave up after {record.attempts} interrupted "
                        f"attempt(s) (crash or stall each time)"
                    )
                    record.finished_at = time.time()
                else:
                    record.state = PENDING

    def _apply(self, event: dict) -> None:
        """Fold one journal event into the in-memory index."""
        kind = event.get("event")
        if kind == "submit":
            record = JobRecord(
                id=event["id"],
                payload=event.get("payload", {}),
                fingerprint=event.get("fingerprint", ""),
                cache_key=event.get("cache_key", ""),
                kind=event.get("kind", ""),
                label=event.get("label", ""),
                delta_of=event.get("delta_of"),
                submitted_at=event.get("t", 0.0),
            )
            if record.id not in self._jobs:
                self._jobs[record.id] = record
                self._by_fingerprint.setdefault(
                    record.fingerprint, []).append(record.id)
            return
        record = self._jobs.get(event.get("id", ""))
        if record is None:
            return  # an event for a submit line that was torn: ignore
        if kind in ("start", "lease"):
            # "start" is the pre-lease spelling of the same transition;
            # old journals keep replaying (no worker/lease recorded).
            self._clear_lease(record)
            record.state = RUNNING
            record.attempts = event.get("attempt", record.attempts + 1)
            record.started_at = event.get("t")
            record.worker = event.get("worker")
            record.lease = event.get("lease")
            record.lease_deadline = event.get("deadline")
            record.lease_seconds = event.get("lease_seconds")
            if record.lease is not None:
                self._leases[record.lease] = record.id
        elif kind == "done":
            # The worker survives completion: a done job's envelope
            # records who solved it (the preceding lease event set it).
            self._clear_lease(record, keep_worker=True)
            record.state = DONE
            record.error = None
            record.finished_at = event.get("t")
        elif kind == "error":
            self._clear_lease(record, keep_worker=True)
            record.state = ERROR
            record.error = event.get("error", "unknown error")
            record.finished_at = event.get("t")
        elif kind == "requeue":
            self._clear_lease(record)
            record.state = PENDING
            record.error = None
            # A resubmission-reason requeue restores the full attempt
            # budget; the event carries the reset so a replayed hub
            # reconstructs the same budget the live hub granted.
            if "attempts" in event:
                record.attempts = event["attempts"]
        elif kind == "release":
            # The lease lapsed (or was given back) without a result; the
            # requeue/error that follows carries the state transition.
            self._clear_lease(record)

    def _clear_lease(self, record: JobRecord, *,
                     keep_worker: bool = False) -> None:
        if record.lease is not None:
            self._leases.pop(record.lease, None)
        if not keep_worker:
            record.worker = None
        record.lease = None
        record.lease_deadline = None
        record.lease_seconds = None

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------

    def submit(self, submission: JobSubmission) -> tuple[JobRecord, bool]:
        """Accept a submission; idempotent on the content-addressed id.

        Returns ``(record, created)``.  Resubmitting a pending/running/
        done job is a no-op returning the existing record; resubmitting
        an *errored* job requeues it with a fresh attempt budget (errors
        are never cached, so the client is explicitly asking for a
        retry).  The attempt reset is journaled with the requeue, so a
        replayed hub grants the same fresh budget.
        """
        with self._lock:
            existing = self._jobs.get(submission.job_id)
            if existing is not None:
                if existing.state == ERROR:
                    existing.state = PENDING
                    existing.error = None
                    existing.attempts = 0
                    existing.worker = None  # back on the queue, no holder
                    self._append({"event": "requeue",
                                  "id": existing.id,
                                  "reason": "resubmitted",
                                  "attempts": 0,
                                  "t": time.time()})
                return existing, False
            now = time.time()
            record = JobRecord(
                id=submission.job_id,
                payload=submission.payload(),
                fingerprint=submission.fingerprint,
                cache_key=submission.cache_key,
                kind=submission.kind,
                label=submission.label,
                delta_of=submission.delta_of,
                submitted_at=now,
            )
            self._append({
                "event": "submit",
                "id": record.id,
                "payload": record.payload,
                "fingerprint": record.fingerprint,
                "cache_key": record.cache_key,
                "kind": record.kind,
                "label": record.label,
                "delta_of": record.delta_of,
                "t": now,
            })
            self._jobs[record.id] = record
            self._by_fingerprint.setdefault(
                record.fingerprint, []).append(record.id)
            return record, True

    def claim(self, limit: int, *, worker: str = LOCAL_WORKER,
              lease_seconds: float | None = None,
              skip_delta: bool = False) -> list[JobRecord]:
        """Atomically lease up to ``limit`` pending jobs to ``worker``.

        Each claim journals a ``lease`` event carrying the worker id and
        the expiry deadline.  ``lease_seconds=None`` (the local
        dispatcher) leases without a deadline — local work is bounded by
        the pool's stall-kill machinery instead.  ``skip_delta`` leaves
        ``delta_of`` jobs for the local dispatcher, whose warm
        :class:`~repro.api.DeltaSession` LRU is the whole point of them.
        """
        claimed: list[JobRecord] = []
        with self._lock:
            for record in self._jobs.values():
                if len(claimed) >= limit:
                    break
                if record.state != PENDING:
                    continue
                if skip_delta and record.delta_of is not None:
                    continue
                record.state = RUNNING
                record.attempts += 1
                record.started_at = time.time()
                record.worker = worker
                record.lease = uuid.uuid4().hex
                record.lease_seconds = lease_seconds
                record.lease_deadline = (
                    None if lease_seconds is None
                    else record.started_at + lease_seconds)
                self._leases[record.lease] = record.id
                self._append({"event": "lease", "id": record.id,
                              "attempt": record.attempts,
                              "worker": worker,
                              "lease": record.lease,
                              "deadline": record.lease_deadline,
                              "lease_seconds": lease_seconds,
                              "t": record.started_at})
                claimed.append(record)
        return claimed

    def complete(self, job_id: str, *, lease: str | None = None) -> JobRecord:
        """running → done (the result is in the cache under cache_key).

        ``lease`` (when given — the HTTP result endpoint always passes
        it) must match the job's *current* lease: a satellite whose
        lease lapsed and was requeued to someone else gets
        :class:`LeaseError`, not a double completion.
        """
        with self._lock:
            record = self._require(job_id, RUNNING, lease=lease)
            self._clear_lease(record, keep_worker=True)
            record.state = DONE
            record.error = None
            record.finished_at = time.time()
            self._append({"event": "done", "id": record.id,
                          "t": record.finished_at})
            return dataclasses.replace(record)

    def fail(self, job_id: str, error: str, *, retryable: bool = True,
             lease: str | None = None) -> JobRecord:
        """running → pending (stall-kill requeue) or → error (cap hit).

        ``retryable=False`` parks the job immediately — a deterministic
        solver crash will not pass on attempt three either; retries are
        for environmental failures (stalled/killed workers, lapsed
        leases).  The error string is capped at
        :data:`MAX_JOURNALED_ERROR` characters both in memory and in the
        journal.
        """
        with self._lock:
            record = self._require(job_id, RUNNING, lease=lease)
            self._clear_lease(record, keep_worker=True)
            return dataclasses.replace(
                self._fail_locked(record, error, retryable=retryable))

    def _fail_locked(self, record: JobRecord, error: str, *,
                     retryable: bool) -> JobRecord:
        error = error[:MAX_JOURNALED_ERROR]
        if retryable and record.attempts < self.max_attempts:
            record.state = PENDING
            record.error = None
            record.worker = None  # back on the queue, no holder
            self._append({"event": "requeue", "id": record.id,
                          "reason": error, "t": time.time()})
        else:
            record.state = ERROR
            record.error = error
            record.finished_at = time.time()
            self._append({"event": "error", "id": record.id,
                          "error": error, "t": record.finished_at})
        return record

    def heartbeat(self, lease: str,
                  extend_seconds: float | None = None) -> JobRecord:
        """Push a live lease's deadline out by ``extend_seconds``.

        Defaults to the duration the lease was claimed with.  Deadlines
        are in-memory only (see the module docstring); an unknown or
        lapsed lease raises :class:`LeaseError`.  Heartbeating a
        deadline-less (local) lease is a successful no-op.
        """
        with self._lock:
            job_id = self._leases.get(lease)
            if job_id is None:
                raise LeaseError(f"unknown or lapsed lease {lease!r}")
            record = self._jobs[job_id]
            if record.lease_deadline is not None:
                seconds = (extend_seconds if extend_seconds is not None
                           else record.lease_seconds or 0.0)
                record.lease_deadline = time.time() + seconds
            return dataclasses.replace(record)

    def expire_leases(self, now: float | None = None) -> list[JobRecord]:
        """Requeue (or park) every running job whose lease deadline passed.

        Journals a ``release`` (reason ``expired``) per lapsed lease and
        then runs the job through the same retryable-failure machinery a
        stall-kill uses — an expired lease costs the attempt it already
        consumed.  Returns snapshots of the affected records.
        """
        swept: list[JobRecord] = []
        with self._lock:
            if now is None:
                now = time.time()
            for record in self._jobs.values():
                if record.state != RUNNING:
                    continue
                deadline = record.lease_deadline
                if deadline is None or deadline > now:
                    continue
                reason = (f"lease {record.lease} held by "
                          f"{record.worker!r} expired")
                self._append({"event": "release", "id": record.id,
                              "lease": record.lease,
                              "worker": record.worker,
                              "reason": "expired", "t": now})
                self._clear_lease(record)
                self._fail_locked(record, reason, retryable=True)
                swept.append(dataclasses.replace(record))
        return swept

    def _require(self, job_id: str, state: str, *,
                 lease: str | None = None) -> JobRecord:
        record = self._jobs.get(job_id)
        if record is None:
            raise QueueError(f"unknown job {job_id!r}")
        if record.state != state:
            raise QueueError(
                f"job {job_id!r} is {record.state}, expected {state}"
            )
        if lease is not None and record.lease != lease:
            raise LeaseError(
                f"lease {lease!r} no longer holds job {job_id!r} "
                f"(current holder: {record.worker!r})"
            )
        return record

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def get(self, job_id: str) -> JobRecord | None:
        """A consistent *copy* of one job's record (None if unknown)."""
        with self._lock:
            record = self._jobs.get(job_id)
            return None if record is None else dataclasses.replace(record)

    def by_fingerprint(self, fingerprint: str) -> list[JobRecord]:
        """Copies of every job (any state) for one problem fingerprint."""
        with self._lock:
            return [dataclasses.replace(self._jobs[jid])
                    for jid in self._by_fingerprint.get(fingerprint, [])]

    def counts(self) -> dict[str, int]:
        """Jobs per state (the /v1/metrics ``jobs`` block)."""
        with self._lock:
            counts = {state: 0 for state in STATES}
            for record in self._jobs.values():
                counts[record.state] += 1
            return counts

    def lease_counts(self) -> dict[str, int]:
        """Running jobs per lease-holding worker (the ``leases`` gauge)."""
        with self._lock:
            held: dict[str, int] = {}
            for record in self._jobs.values():
                if record.state == RUNNING and record.worker is not None:
                    held[record.worker] = held.get(record.worker, 0) + 1
            return held

    def depth(self) -> int:
        """Pending jobs (the queue-depth gauge)."""
        return self.counts()[PENDING]

    def unfinished(self) -> int:
        """Pending + running jobs (drain detection)."""
        counts = self.counts()
        return counts[PENDING] + counts[RUNNING]

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def close(self) -> None:
        """Close the journal handle (the queue object is done)."""
        with self._lock:
            try:
                self._journal.close()
            except OSError:
                pass
