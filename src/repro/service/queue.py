"""The persistent job queue: an append-only journal + in-memory index.

Every accepted job is an event stream in ``journal.jsonl``::

    {"event": "submit", "id": ..., "payload": {...}, ...}
    {"event": "start",  "id": ..., "attempt": 1, ...}
    {"event": "done",   "id": ..., ...}        # or "error" / "requeue"

Appends are single ``write()`` calls of one ``\\n``-terminated line,
flushed and fsynced before :meth:`JobQueue.submit` returns — an accepted
job survives ``kill -9`` of the server.  Recovery replays the journal:
a torn final line (the crash interrupted the write itself) is dropped,
finished jobs stay finished, and jobs that were *running* when the
process died are requeued — each replay/stall costs one attempt, and a
job that exhausts :attr:`JobQueue.max_attempts` is parked as an error
instead of crash-looping the service.

State transitions are atomic under one lock shared by the HTTP threads
and the worker pool; the journal is the only persistent state (results
live in the content-addressed cache, keyed by each record's
``cache_key``).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.service.schema import SERVICE_SCHEMA, JobSubmission

PENDING = "pending"
RUNNING = "running"
DONE = "done"
ERROR = "error"

STATES = (PENDING, RUNNING, DONE, ERROR)

DEFAULT_MAX_ATTEMPTS = 3
"""Attempts (initial + retries) before a stalling job is parked as error."""


class QueueError(RuntimeError):
    """An impossible transition was requested (caller bug)."""


@dataclass
class JobRecord:
    """One job's full state, reconstructible from the journal."""

    id: str
    payload: dict
    fingerprint: str
    cache_key: str
    kind: str
    state: str = PENDING
    attempts: int = 0
    error: str | None = None
    label: str = ""
    delta_of: str | None = None
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None

    def envelope(self) -> dict:
        """The job's wire envelope (GET /v1/jobs/<id> body, sans result)."""
        return {
            "schema": SERVICE_SCHEMA,
            "id": self.id,
            "state": self.state,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "attempts": self.attempts,
            "error": self.error,
            "label": self.label,
            "delta_of": self.delta_of,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
        }


class JobQueue:
    """Crash-safe persistent queue with atomic state transitions."""

    def __init__(self, directory: str | Path, *,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self.max_attempts = max_attempts
        self._lock = threading.RLock()
        self._jobs: dict[str, JobRecord] = {}
        self._by_fingerprint: dict[str, list[str]] = {}
        self._recovered = 0
        self._dropped_lines = 0
        self._replay()
        self._journal = open(self._journal_path, "a", encoding="utf-8")

    @property
    def directory(self) -> Path:
        return self._dir

    @property
    def _journal_path(self) -> Path:
        return self._dir / "journal.jsonl"

    @property
    def recovered(self) -> int:
        """Jobs that were running at the last crash and were requeued."""
        return self._recovered

    # ------------------------------------------------------------------
    # journal
    # ------------------------------------------------------------------

    def _append(self, event: dict) -> None:
        """Durably append one event line (fsync before returning)."""
        line = json.dumps(event, sort_keys=True) + "\n"
        self._journal.write(line)
        self._journal.flush()
        os.fsync(self._journal.fileno())

    def _replay(self) -> None:
        """Rebuild the index from the journal; requeue interrupted jobs."""
        path = self._journal_path
        if not path.exists():
            return
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    # A torn line: either the tail the crash cut short, or
                    # corruption.  Either way the event never finished
                    # being accepted; drop it and keep replaying.
                    self._dropped_lines += 1
                    continue
                if isinstance(event, dict):
                    self._apply(event)
        # Jobs mid-flight when the process died: the attempt is lost, so
        # requeue (or park) exactly as a stall would.
        for record in self._jobs.values():
            if record.state == RUNNING:
                self._recovered += 1
                if record.attempts >= self.max_attempts:
                    record.state = ERROR
                    record.error = (
                        f"gave up after {record.attempts} interrupted "
                        f"attempt(s) (crash or stall each time)"
                    )
                    record.finished_at = time.time()
                else:
                    record.state = PENDING

    def _apply(self, event: dict) -> None:
        """Fold one journal event into the in-memory index."""
        kind = event.get("event")
        if kind == "submit":
            record = JobRecord(
                id=event["id"],
                payload=event.get("payload", {}),
                fingerprint=event.get("fingerprint", ""),
                cache_key=event.get("cache_key", ""),
                kind=event.get("kind", ""),
                label=event.get("label", ""),
                delta_of=event.get("delta_of"),
                submitted_at=event.get("t", 0.0),
            )
            if record.id not in self._jobs:
                self._jobs[record.id] = record
                self._by_fingerprint.setdefault(
                    record.fingerprint, []).append(record.id)
            return
        record = self._jobs.get(event.get("id", ""))
        if record is None:
            return  # an event for a submit line that was torn: ignore
        if kind == "start":
            record.state = RUNNING
            record.attempts = event.get("attempt", record.attempts + 1)
            record.started_at = event.get("t")
        elif kind == "done":
            record.state = DONE
            record.error = None
            record.finished_at = event.get("t")
        elif kind == "error":
            record.state = ERROR
            record.error = event.get("error", "unknown error")
            record.finished_at = event.get("t")
        elif kind == "requeue":
            record.state = PENDING
            record.error = None

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------

    def submit(self, submission: JobSubmission) -> tuple[JobRecord, bool]:
        """Accept a submission; idempotent on the content-addressed id.

        Returns ``(record, created)``.  Resubmitting a pending/running/
        done job is a no-op returning the existing record; resubmitting
        an *errored* job requeues it with a fresh attempt budget (errors
        are never cached, so the client is explicitly asking for a
        retry).
        """
        with self._lock:
            existing = self._jobs.get(submission.job_id)
            if existing is not None:
                if existing.state == ERROR:
                    existing.state = PENDING
                    existing.error = None
                    existing.attempts = 0
                    self._append({"event": "requeue",
                                  "id": existing.id,
                                  "reason": "resubmitted",
                                  "t": time.time()})
                return existing, False
            now = time.time()
            record = JobRecord(
                id=submission.job_id,
                payload=submission.payload(),
                fingerprint=submission.fingerprint,
                cache_key=submission.cache_key,
                kind=submission.kind,
                label=submission.label,
                delta_of=submission.delta_of,
                submitted_at=now,
            )
            self._append({
                "event": "submit",
                "id": record.id,
                "payload": record.payload,
                "fingerprint": record.fingerprint,
                "cache_key": record.cache_key,
                "kind": record.kind,
                "label": record.label,
                "delta_of": record.delta_of,
                "t": now,
            })
            self._jobs[record.id] = record
            self._by_fingerprint.setdefault(
                record.fingerprint, []).append(record.id)
            return record, True

    def claim(self, limit: int) -> list[JobRecord]:
        """Atomically move up to ``limit`` pending jobs to running."""
        claimed: list[JobRecord] = []
        with self._lock:
            for record in self._jobs.values():
                if len(claimed) >= limit:
                    break
                if record.state != PENDING:
                    continue
                record.state = RUNNING
                record.attempts += 1
                record.started_at = time.time()
                self._append({"event": "start", "id": record.id,
                              "attempt": record.attempts,
                              "t": record.started_at})
                claimed.append(record)
        return claimed

    def complete(self, job_id: str) -> JobRecord:
        """running → done (the result is in the cache under cache_key)."""
        with self._lock:
            record = self._require(job_id, RUNNING)
            record.state = DONE
            record.error = None
            record.finished_at = time.time()
            self._append({"event": "done", "id": record.id,
                          "t": record.finished_at})
            return record

    def fail(self, job_id: str, error: str, *,
             retryable: bool = True) -> JobRecord:
        """running → pending (stall-kill requeue) or → error (cap hit).

        ``retryable=False`` parks the job immediately — a deterministic
        solver crash will not pass on attempt three either; retries are
        for environmental failures (stalled/killed workers).
        """
        with self._lock:
            record = self._require(job_id, RUNNING)
            if retryable and record.attempts < self.max_attempts:
                record.state = PENDING
                record.error = None
                self._append({"event": "requeue", "id": record.id,
                              "reason": error[:500], "t": time.time()})
            else:
                record.state = ERROR
                record.error = error
                record.finished_at = time.time()
                self._append({"event": "error", "id": record.id,
                              "error": error, "t": record.finished_at})
            return record

    def _require(self, job_id: str, state: str) -> JobRecord:
        record = self._jobs.get(job_id)
        if record is None:
            raise QueueError(f"unknown job {job_id!r}")
        if record.state != state:
            raise QueueError(
                f"job {job_id!r} is {record.state}, expected {state}"
            )
        return record

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._jobs.get(job_id)

    def by_fingerprint(self, fingerprint: str) -> list[JobRecord]:
        """Every job (any state) submitted for one problem fingerprint."""
        with self._lock:
            return [self._jobs[jid]
                    for jid in self._by_fingerprint.get(fingerprint, [])]

    def counts(self) -> dict[str, int]:
        """Jobs per state (the /v1/metrics ``jobs`` block)."""
        with self._lock:
            counts = {state: 0 for state in STATES}
            for record in self._jobs.values():
                counts[record.state] += 1
            return counts

    def depth(self) -> int:
        """Pending jobs (the queue-depth gauge)."""
        return self.counts()[PENDING]

    def unfinished(self) -> int:
        """Pending + running jobs (drain detection)."""
        counts = self.counts()
        return counts[PENDING] + counts[RUNNING]

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def close(self) -> None:
        """Close the journal handle (the queue object is done)."""
        with self._lock:
            try:
                self._journal.close()
            except OSError:
                pass
