"""The satellite side of the execution fabric: a pull-based remote worker.

A satellite is a process (often on another machine) that needs nothing
but HTTP reachability to the hub:

* it **claims** batches of pending jobs over ``POST /v1/claims`` — each
  claim is a lease with an expiry deadline, journaled by the hub;
* it **solves** each claimed payload through the exact
  :func:`~repro.api.batch._solve_worker` the in-process pool and
  ``solve_many`` use, so a verdict is byte-identical no matter where it
  was computed;
* it **posts** the ``result_to_json`` payload back over
  ``POST /v1/jobs/<id>/result`` — the hub writes it into the shared
  :class:`~repro.campaign.runner.ResultCache` under the job's
  ``cache_key`` before marking the job done;
* a background thread **heartbeats** every held lease so a healthy
  satellite never lapses mid-solve.

Crash safety falls out of the lease semantics: a satellite that dies
(or wedges — the heartbeat thread dies with the process) simply stops
heartbeating, the hub's expiry sweep requeues its jobs through the
usual ``fail(retryable=True)`` attempt-cap machinery, and another
worker picks them up.  A slow satellite that posts after its lease
lapsed gets a ``409`` and moves on — the job was already someone
else's.  Errors stay non-retryable on this path: ``_solve_worker``
converts solver exceptions into error payloads deterministically, and a
deterministic crash will not pass on another machine either.

Run one with ``python -m repro.service --satellite http://hub:8765``.
"""

from __future__ import annotations

import os
import socket
import threading
import urllib.error
import uuid
from dataclasses import dataclass, field

from repro.service.client import ServiceClient, ServiceError

DEFAULT_CLAIM_LIMIT = 2
DEFAULT_LEASE_SECONDS = 30.0
DEFAULT_POLL_INTERVAL = 0.25
"""Idle re-poll delay; claims are pull-based, so an empty queue costs
one small request per interval."""


def default_worker_id() -> str:
    """A worker id unique across hosts, processes and restarts."""
    return (f"sat-{socket.gethostname()}-{os.getpid()}-"
            f"{uuid.uuid4().hex[:6]}")


@dataclass
class SatelliteStats:
    """One satellite's own counters (the hub's metrics are authoritative
    for the fleet; these cover a single worker's log line)."""

    claims: int = 0
    solved: int = 0
    errors: int = 0
    lost_leases: int = 0
    heartbeats: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def snapshot(self) -> dict:
        with self._lock:
            return {"claims": self.claims, "solved": self.solved,
                    "errors": self.errors,
                    "lost_leases": self.lost_leases,
                    "heartbeats": self.heartbeats}


class SatelliteWorker:
    """Claim → solve → post, forever (or until :meth:`stop`).

    Jobs inside one claim batch are solved sequentially; parallelism
    comes from running more satellite processes, which is the whole
    scaling story — the hub does not care whether two workers share a
    machine.  While any lease is held, a daemon thread heartbeats all of
    them every ``lease_seconds / 3`` (so one missed beat never lapses a
    lease), dropping leases the hub reports gone.
    """

    def __init__(self, hub_url: str, *, worker_id: str | None = None,
                 token: str | None = None,
                 claim_limit: int = DEFAULT_CLAIM_LIMIT,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 poll_interval: float = DEFAULT_POLL_INTERVAL,
                 heartbeat_interval: float | None = None,
                 client: ServiceClient | None = None) -> None:
        if claim_limit < 1:
            raise ValueError("claim_limit must be >= 1")
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        self.client = client or ServiceClient(hub_url, token=token)
        self.worker_id = worker_id or default_worker_id()
        self.claim_limit = claim_limit
        self.lease_seconds = lease_seconds
        self.poll_interval = poll_interval
        self.heartbeat_interval = (
            heartbeat_interval if heartbeat_interval is not None
            else max(0.05, lease_seconds / 3.0))
        self.stats = SatelliteStats()
        self._held: dict[str, str] = {}  # lease id -> job id
        self._held_lock = threading.Lock()
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Ask the run loop (and heartbeat thread) to exit."""
        self._stop.set()

    def run(self) -> None:
        """Poll the hub until stopped; survives hub restarts.

        Transport errors (hub down, mid-restart, transient socket
        trouble) back the satellite off briefly and keep polling —
        leases held across a hub crash are invalidated by the hub's own
        journal replay, so there is nothing to clean up here.
        """
        beat = threading.Thread(target=self._heartbeat_loop,
                                name=f"{self.worker_id}-heartbeat",
                                daemon=True)
        beat.start()
        try:
            while not self._stop.is_set():
                try:
                    handled = self.run_once()
                except (ServiceError, urllib.error.URLError,
                        OSError, TimeoutError):
                    self._stop.wait(max(self.poll_interval, 1.0))
                    continue
                if handled == 0:
                    self._stop.wait(self.poll_interval)
        finally:
            self._stop.set()
            beat.join(timeout=self.heartbeat_interval * 2 + 1.0)

    # ------------------------------------------------------------------
    # one claim round (the testable unit)
    # ------------------------------------------------------------------

    def run_once(self) -> int:
        """Claim one batch and solve it; returns the number of claims."""
        claims = self.client.claim(
            self.worker_id, limit=self.claim_limit,
            lease_seconds=self.lease_seconds)["claims"]
        if not claims:
            return 0
        self.stats.count("claims", len(claims))
        with self._held_lock:
            for claim in claims:
                self._held[claim["lease"]] = claim["id"]
        try:
            for claim in claims:
                with self._held_lock:
                    if claim["lease"] not in self._held:
                        continue  # the heartbeat thread saw it lapse
                result = self._solve_claim(claim)
                self._post(claim, result)
        finally:
            with self._held_lock:
                for claim in claims:
                    self._held.pop(claim["lease"], None)
        return len(claims)

    def _solve_claim(self, claim: dict) -> dict:
        """Solve one claimed payload; never raises (error payloads)."""
        # Imported lazily: satellites should start (and report a bad hub
        # URL) fast, before paying the full solver import.
        from repro.api.batch import _solve_worker
        from repro.api.options import Options
        from repro.service.schema import SchemaError, decode_problem

        payload = claim.get("payload") or {}
        try:
            problem = decode_problem(payload["problem"])
            options = Options.from_json(payload.get("options") or {})
        except (SchemaError, KeyError, TypeError, ValueError) as exc:
            return {"verdict": "error", "seconds": 0.0,
                    "error": f"satellite could not decode job: {exc}"}
        return _solve_worker(problem, options)

    def _post(self, claim: dict, result: dict) -> None:
        try:
            self.client.post_result(
                claim["id"], lease=claim["lease"],
                worker=self.worker_id, result=result, retryable=False)
        except ServiceError as exc:
            if exc.status == 409:
                # The lease lapsed while we solved; the job is someone
                # else's now (or already done with the same result).
                self.stats.count("lost_leases")
                return
            raise
        self.stats.count("errors" if result.get("error") is not None
                         else "solved")

    # ------------------------------------------------------------------
    # lease keep-alive
    # ------------------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            with self._held_lock:
                leases = list(self._held)
            for lease in leases:
                try:
                    self.client.heartbeat(lease, self.lease_seconds)
                    self.stats.count("heartbeats")
                except ServiceError:
                    # Lapsed or finished: stop renewing; the run loop
                    # skips solving it if it has not started yet.
                    with self._held_lock:
                        self._held.pop(lease, None)
                except (urllib.error.URLError, OSError, TimeoutError):
                    pass  # hub hiccup; the next beat retries
