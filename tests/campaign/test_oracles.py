"""Differential-oracle tests: every registered oracle agrees on seeded
random scenarios, and the registry/applicability plumbing works."""

import pytest

from repro.campaign import ORACLES, ScenarioSpec, materialize, oracles_for
from repro.campaign.specs import random_sweep

EXPECTED_ORACLES = {"symmetry", "enumeration", "evaluator", "kernels",
                    "explorer", "engines", "delta"}


class TestRegistry:
    def test_all_oracles_registered(self):
        assert EXPECTED_ORACLES <= set(ORACLES)

    def test_relational_oracles(self):
        spec = ScenarioSpec.make("relational", 0)
        # "external" additionally appears when REPRO_EXTERNAL_SOLVER is
        # set in the environment (the nightly CI job does this).
        assert set(oracles_for(spec)) - {"external"} == {
            "symmetry", "enumeration", "evaluator", "kernels", "delta"}

    def test_auction_oracles(self):
        for family in ("mca", "dispatch", "uav", "vnet"):
            spec = ScenarioSpec.make(family, 0)
            assert set(oracles_for(spec)) == {"explorer", "engines", "delta"}

    def test_applicability(self):
        assert ORACLES["symmetry"].applicable(
            ScenarioSpec.make("relational", 0))
        assert not ORACLES["symmetry"].applicable(
            ScenarioSpec.make("mca", 0))


class TestRelationalOracles:
    @pytest.mark.parametrize("seed", range(12))
    def test_symmetry_agrees(self, seed):
        spec = ScenarioSpec.make("relational", seed, num_atoms=3, depth=2,
                                 max_edges=4)
        outcome = ORACLES["symmetry"].run(spec, materialize(spec))
        assert outcome.agree, outcome.detail

    @pytest.mark.parametrize("seed", range(8))
    def test_enumeration_agrees(self, seed):
        spec = ScenarioSpec.make("relational", seed, num_atoms=3, depth=1,
                                 max_edges=3)
        outcome = ORACLES["enumeration"].run(spec, materialize(spec))
        assert outcome.agree, outcome.detail
        assert not outcome.detail["truncated"]
        assert (outcome.detail["incremental_models"]
                == outcome.detail["fresh_solver_models"])

    @pytest.mark.parametrize("seed", range(8))
    def test_kernels_agree(self, seed):
        spec = ScenarioSpec.make("relational", seed, num_atoms=3, depth=2,
                                 max_edges=4)
        outcome = ORACLES["kernels"].run(spec, materialize(spec))
        assert outcome.agree, outcome.detail
        assert outcome.detail["vector_models"] == outcome.detail["pure_models"]

    def test_external_oracle_registers_and_agrees(self):
        # Wire the oracle against the in-tree DIMACS CLI so the external
        # round trip is exercised without any third-party binary.
        import os
        import sys

        from repro.campaign.oracles import register_external_oracle

        already = "external" in ORACLES
        command = f"{sys.executable} -m repro.sat.dimacs solve"
        register_external_oracle(command)
        try:
            spec = ScenarioSpec.make("relational", 3, num_atoms=3, depth=1,
                                     max_edges=3)
            env_path = os.environ.get("PYTHONPATH", "")
            src = str(
                __import__("pathlib").Path(__file__).resolve()
                .parents[2] / "src")
            os.environ["PYTHONPATH"] = (
                src + (os.pathsep + env_path if env_path else ""))
            try:
                outcome = ORACLES["external"].run(spec, materialize(spec))
            finally:
                if env_path:
                    os.environ["PYTHONPATH"] = env_path
                else:
                    os.environ.pop("PYTHONPATH", None)
            assert outcome.agree, outcome.detail
            assert outcome.detail["external_models"] == \
                outcome.detail["pure_models"]
        finally:
            if not already:
                ORACLES.pop("external", None)

    @pytest.mark.parametrize("seed", range(8))
    def test_evaluator_agrees(self, seed):
        spec = ScenarioSpec.make("relational", seed, num_atoms=3, depth=2,
                                 max_edges=4)
        outcome = ORACLES["evaluator"].run(spec, materialize(spec))
        assert outcome.agree, outcome.detail
        assert outcome.detail["only_sat"] == 0
        assert outcome.detail["only_ground"] == 0


class TestAuctionOracles:
    @pytest.mark.parametrize("spec", random_sweep(
        "mca", 3, base_seed=42, num_agents=(3, 5), num_items=(3, 5),
        target=(1, 2)) + random_sweep(
        "dispatch", 2, base_seed=43, num_units=(3, 5), num_blocks=(4, 6),
        capacity_blocks=(1, 2)) + random_sweep(
        "uav", 2, base_seed=44, num_uavs=(3, 5), num_tasks=(3, 5),
        capacity=(1, 2)) + random_sweep(
        "vnet", 2, base_seed=45, grid_width=(2, 3), grid_height=(2, 2),
        request_size=(2, 3)),
        ids=lambda s: s.label())
    def test_engines_converge_everywhere(self, spec):
        outcome = ORACLES["engines"].run(spec, materialize(spec))
        assert outcome.agree, outcome.detail
        assert outcome.detail["converged_synchronous"]
        assert outcome.detail["consensus_async_random"]

    @pytest.mark.parametrize("spec", random_sweep(
        "mca", 3, base_seed=46, num_agents=(2, 3), num_items=(1, 2),
        target=(1, 2)) + random_sweep(
        "dispatch", 2, base_seed=47, num_units=(2, 3), num_blocks=(1, 2),
        capacity_blocks=(1, 1)),
        ids=lambda s: s.label())
    def test_explorer_memo_matches_plain_dfs(self, spec):
        outcome = ORACLES["explorer"].run(spec, materialize(spec))
        assert outcome.agree, outcome.detail
        assert (outcome.detail["memoized_worst_rounds"]
                == outcome.detail["plain_worst_rounds"])
