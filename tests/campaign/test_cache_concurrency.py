"""ResultCache under concurrent multi-process writers and readers.

The verification service points many worker processes at one cache
directory, so a reader must never observe a half-written entry: every
``get`` returns either ``None`` or a *complete* payload.  These tests
hammer one cache from several processes while a reader checks payload
integrity via embedded checksums, and pin the ``put`` return-value and
``durable`` contracts the service relies on.
"""

import hashlib
import json
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.campaign.runner import ResultCache, map_jobs


def _payload(worker: int, round_no: int) -> dict:
    # Large enough that a non-atomic write would be observably torn.
    body = f"worker={worker} round={round_no} " + "x" * 4096
    return {"body": body,
            "checksum": hashlib.sha256(body.encode()).hexdigest()}


def _intact(payload: dict) -> bool:
    return (hashlib.sha256(payload["body"].encode()).hexdigest()
            == payload["checksum"])


def _hammer(directory: str, worker: int, rounds: int, keys: list) -> int:
    """Write `rounds` payloads over a shared key set; return success count."""
    cache = ResultCache(directory)
    written = 0
    for round_no in range(rounds):
        key = keys[round_no % len(keys)]
        if cache.put(key, _payload(worker, round_no)):
            written += 1
    return written


SHARED_KEYS = [hashlib.sha256(f"k{i}".encode()).hexdigest() for i in range(4)]


class TestConcurrentWriters:
    def test_readers_never_observe_partial_entries(self, tmp_path):
        """Four writer processes race over four keys while the parent
        reads continuously: every read is None or checksum-intact."""
        cache = ResultCache(tmp_path)
        rounds = 120
        with ProcessPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(_hammer, str(tmp_path), worker, rounds,
                            SHARED_KEYS)
                for worker in range(4)
            ]
            observed = 0
            while any(not f.done() for f in futures):
                for key in SHARED_KEYS:
                    hit = cache.get(key)
                    if hit is not None:
                        assert _intact(hit), "reader saw a torn entry"
                        observed += 1
            assert all(f.result() == rounds for f in futures)
        # Steady state: last writer of each key left a complete entry.
        for key in SHARED_KEYS:
            assert _intact(cache.get(key))

    def test_put_reports_success(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.put(SHARED_KEYS[0], {"ok": True}) is True
        # A payload json.dump cannot serialize must fail cleanly...
        assert cache.put(SHARED_KEYS[1], {"bad": object()}) is False
        # ...without leaving a partial entry or a stray temp file behind.
        assert cache.get(SHARED_KEYS[1]) is None
        assert not list(tmp_path.glob("*/*.tmp"))

    def test_durable_mode_round_trips(self, tmp_path):
        cache = ResultCache(tmp_path, durable=True)
        assert cache.put(SHARED_KEYS[0], {"value": 7}) is True
        assert ResultCache(tmp_path).get(SHARED_KEYS[0]) == {"value": 7}

    def test_corrupt_entry_is_a_miss_then_repairable(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = SHARED_KEYS[0]
        cache.put(key, {"value": 1})
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text('{"value": 1', encoding="utf-8")  # torn tail
        assert cache.get(key) is None
        assert cache.put(key, {"value": 2}) is True
        assert cache.get(key) == {"value": 2}


# ----------------------------------------------------------------------
# map_jobs executor reuse (the service's persistent pool)
# ----------------------------------------------------------------------


def _double(value: int) -> dict:
    return {"value": value * 2}


def _sleeper(seconds: float) -> dict:
    time.sleep(seconds)
    return {"value": "slept"}


class TestMapJobsExecutorReuse:
    def test_two_batches_share_one_pool(self):
        results: dict[int, dict] = {}

        def record(slot, payload):
            results[slot] = payload

        def failure(slot, error, seconds):
            return {"error": error}

        with ProcessPoolExecutor(max_workers=2) as pool:
            healthy1 = map_jobs([(i, (i,)) for i in range(4)], _double,
                                record, failure, shards=2, task_timeout=30,
                                executor=pool)
            healthy2 = map_jobs([(i, (i + 10,)) for i in range(4, 8)],
                                _double, record, failure, shards=2,
                                task_timeout=30, executor=pool)
            # The lent pool survives both batches and is still usable.
            assert pool.submit(_double, 21).result() == {"value": 42}
        assert healthy1 and healthy2
        assert results == {0: {"value": 0}, 1: {"value": 2},
                           2: {"value": 4}, 3: {"value": 6},
                           4: {"value": 28}, 5: {"value": 30},
                           6: {"value": 32}, 7: {"value": 34}}

    def test_inline_path_reports_healthy(self):
        results = {}
        healthy = map_jobs([(0, (3,))], _double,
                           lambda s, p: results.__setitem__(s, p),
                           lambda s, e, t: {"error": e},
                           shards=1, task_timeout=30)
        assert healthy is True
        assert results == {0: {"value": 6}}

    def test_stalled_lent_pool_is_killed_and_reported(self):
        """A stall abandons the lent pool too: workers are killed, the
        batch records failure payloads, and map_jobs returns False so the
        caller knows to replace the executor."""
        results = {}

        def record(slot, payload):
            results[slot] = payload

        def failure(slot, error, seconds):
            return {"error": error}

        pool = ProcessPoolExecutor(max_workers=1)
        healthy = map_jobs([(0, (30.0,))], _sleeper, record, failure,
                           shards=1, task_timeout=0.3, executor=pool)
        assert healthy is False
        assert "timeout" in results[0]["error"]
        with pytest.raises(RuntimeError):
            pool.submit(_double, 1)  # the abandoned pool was shut down
