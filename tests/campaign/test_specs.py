"""Seeded-generator determinism and sweep-expansion tests.

The result cache is keyed by (spec hash, oracle), which is only sound if
materialization is a pure function of the spec — in particular identical
*across processes*.  The cross-process tests here use a spawn-context
worker (a fresh interpreter with its own string-hash seed) to guard that
contract.
"""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.campaign import (
    FAMILIES,
    AuctionScenario,
    RelationalProblem,
    ScenarioSpec,
    expand,
    grid_sweep,
    materialize,
    random_sweep,
    scenario_fingerprint,
)

SPEC_PER_FAMILY = [
    ScenarioSpec.make("mca", 3, num_agents=4, num_items=4, target=2),
    ScenarioSpec.make("dispatch", 5, num_units=4, num_blocks=5,
                      capacity_blocks=2),
    ScenarioSpec.make("uav", 7, num_uavs=4, num_tasks=5, capacity=2),
    ScenarioSpec.make("vnet", 9, grid_width=2, grid_height=3,
                      request_size=3),
    ScenarioSpec.make("relational", 11, num_atoms=3, depth=2, max_edges=4),
]


def _hash_and_fingerprint(spec_dict: dict) -> tuple[str, str]:
    """Worker: recompute spec hash and scenario fingerprint elsewhere."""
    spec = ScenarioSpec.from_dict(spec_dict)
    return spec.content_hash(), scenario_fingerprint(spec)


class TestSpecIdentity:
    def test_params_are_order_insensitive(self):
        a = ScenarioSpec.make("mca", 1, num_agents=3, num_items=2)
        b = ScenarioSpec.make("mca", 1, num_items=2, num_agents=3)
        assert a == b
        assert a.content_hash() == b.content_hash()

    def test_hash_distinguishes_seed_family_params(self):
        base = ScenarioSpec.make("mca", 1, num_agents=3)
        assert base.content_hash() != ScenarioSpec.make(
            "mca", 2, num_agents=3).content_hash()
        assert base.content_hash() != ScenarioSpec.make(
            "uav", 1, num_agents=3).content_hash()
        assert base.content_hash() != ScenarioSpec.make(
            "mca", 1, num_agents=4).content_hash()

    def test_dict_round_trip(self):
        for spec in SPEC_PER_FAMILY:
            assert ScenarioSpec.from_dict(spec.as_dict()) == spec

    def test_param_lookup(self):
        spec = ScenarioSpec.make("mca", 1, num_agents=3)
        assert spec.param("num_agents") == 3
        assert spec.param("missing", 9) == 9
        with pytest.raises(KeyError):
            spec.param("missing")


class TestMaterializationDeterminism:
    @pytest.mark.parametrize("spec", SPEC_PER_FAMILY,
                             ids=lambda s: s.family)
    def test_same_seed_same_scenario_in_process(self, spec):
        assert scenario_fingerprint(spec) == scenario_fingerprint(spec)

    @pytest.mark.parametrize("spec", SPEC_PER_FAMILY,
                             ids=lambda s: s.family)
    def test_different_seed_different_scenario(self, spec):
        other = ScenarioSpec.make(spec.family, spec.seed + 1,
                                  **dict(spec.params))
        assert scenario_fingerprint(spec) != scenario_fingerprint(other)

    def test_same_seed_identical_across_processes(self):
        """Same spec ⇒ identical hash and scenario in a fresh interpreter.

        Guards the result-cache keying: a spawn-started worker has a
        different string-hash seed, so any reliance on builtin ``hash``
        or on incidental iteration order shows up as a mismatch here.
        """
        local = [
            (spec.content_hash(), scenario_fingerprint(spec))
            for spec in SPEC_PER_FAMILY
        ]
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=1,
                                 mp_context=context) as executor:
            remote = list(executor.map(
                _hash_and_fingerprint,
                [spec.as_dict() for spec in SPEC_PER_FAMILY],
            ))
        assert local == remote

    def test_all_registered_families_materialize(self):
        for family in FAMILIES:
            spec = ScenarioSpec.make(family, 0)
            scenario = materialize(spec)
            assert isinstance(scenario,
                              (AuctionScenario, RelationalProblem))

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario family"):
            materialize(ScenarioSpec.make("nope", 0))


class TestFamilies:
    def test_mca_policies_are_submodular(self):
        spec = ScenarioSpec.make("mca", 13, num_agents=3, num_items=3,
                                 target=2)
        scenario = materialize(spec)
        for policy in scenario.policies.values():
            assert policy.utility.is_submodular_on(scenario.items, 2)

    def test_auction_families_share_shape(self):
        for spec in SPEC_PER_FAMILY[:4]:
            scenario = materialize(spec)
            assert isinstance(scenario, AuctionScenario)
            assert scenario.items
            assert set(scenario.policies) == set(scenario.network.agents())

    def test_relational_bounds_stay_small(self):
        # The evaluator oracle brute-forces 2^free_tuples instances; the
        # generator must keep that exponent tractable.
        for seed in range(20):
            spec = ScenarioSpec.make("relational", seed, num_atoms=4,
                                     depth=2, max_edges=4)
            scenario = materialize(spec)
            assert scenario.bounds.free_tuple_count() <= 12


class TestSweeps:
    def test_grid_sweep_covers_product(self):
        specs = grid_sweep("uav", base_seed=10, seeds_per_cell=2,
                           num_uavs=[3, 4], num_tasks=[4])
        assert len(specs) == 4
        assert {s.param("num_uavs") for s in specs} == {3, 4}
        assert {s.seed for s in specs} == {10, 11, 12, 13}
        assert specs == grid_sweep("uav", base_seed=10, seeds_per_cell=2,
                                   num_uavs=[3, 4], num_tasks=[4])

    def test_random_sweep_deterministic_and_in_range(self):
        specs = random_sweep("mca", 25, base_seed=3,
                             num_agents=(3, 6), growth=(0.3, 0.9),
                             topology=["ring", "star"])
        assert specs == random_sweep("mca", 25, base_seed=3,
                                     num_agents=(3, 6), growth=(0.3, 0.9),
                                     topology=["ring", "star"])
        for spec in specs:
            assert 3 <= spec.param("num_agents") <= 6
            assert 0.3 <= spec.param("growth") <= 0.9
            assert spec.param("topology") in ("ring", "star")
        assert len({s.seed for s in specs}) == 25

    def test_expand_pairs_every_oracle(self):
        specs = random_sweep("relational", 3, base_seed=0)
        tasks = expand(specs, ["symmetry", "evaluator"])
        assert len(tasks) == 6
        assert {name for _, name in tasks} == {"symmetry", "evaluator"}
