"""Runner tests: caching semantics, error capture, sharding, reporting."""

import json
import multiprocessing
import time

import pytest

from repro.analysis import campaign_summary, render_campaign_table, \
    write_campaign_json
from repro.campaign import (
    CampaignResult,
    ResultCache,
    ScenarioSpec,
    build_default_campaign,
    cache_key,
    execute_task,
    run_campaign,
)
from repro.campaign.oracles import ORACLES, OracleOutcome, register_oracle
from repro.campaign.specs import random_sweep


def _hang_oracle(spec, scenario):
    time.sleep(120)
    return OracleOutcome("test-hang", True)


@pytest.fixture
def hang_oracle():
    """Temporarily register an oracle that never returns.

    Registration happens before run_campaign creates its pool, so
    fork-started workers inherit it; the registry is restored afterwards
    to keep ``oracles_for`` deterministic for the other test modules.
    """
    register_oracle("test-hang", frozenset({"relational"}),
                    "test-only oracle that never returns")(_hang_oracle)
    try:
        yield "test-hang"
    finally:
        ORACLES.pop("test-hang", None)


def small_tasks():
    specs = random_sweep("relational", 3, base_seed=0, num_atoms=(3, 3),
                         depth=(1, 1), max_edges=(0, 3))
    return [(spec, "symmetry") for spec in specs] + [
        (ScenarioSpec.make("mca", 5, num_agents=3, num_items=3, target=1),
         "engines"),
    ]


class TestExecuteTask:
    def test_result_shape(self):
        spec = ScenarioSpec.make("relational", 1, num_atoms=3)
        payload = execute_task(spec.as_dict(), "symmetry")
        assert payload["error"] is None
        assert payload["agree"] is True
        assert payload["spec_hash"] == spec.content_hash()
        assert payload["seconds"] >= 0.0
        # The payload must survive the JSON round trip (cache + artifact).
        restored = CampaignResult.from_json(
            json.loads(json.dumps(payload)))
        assert restored.ok

    def test_unknown_oracle_becomes_error_result(self):
        spec = ScenarioSpec.make("relational", 1)
        payload = execute_task(spec.as_dict(), "no-such-oracle")
        assert payload["error"] is not None
        assert payload["agree"] is False

    def test_inapplicable_oracle_becomes_error_result(self):
        spec = ScenarioSpec.make("mca", 1)
        payload = execute_task(spec.as_dict(), "symmetry")
        assert "does not apply" in payload["error"]


class TestCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("ab" * 32) is None
        cache.put("ab" * 32, {"agree": True})
        assert cache.get("ab" * 32) == {"agree": True}
        assert len(cache) == 1

    def test_unserializable_payload_does_not_crash(self, tmp_path):
        # A third-party oracle may return a non-JSON-able detail dict;
        # the cache write must fail silently, leaving no temp debris.
        cache = ResultCache(tmp_path / "c")
        cache.put("cd" * 32, {"detail": {1, 2}})  # sets are not JSON-able
        assert cache.get("cd" * 32) is None
        assert list((tmp_path / "c").rglob("*.tmp")) == []

    def test_cache_key_separates_spec_and_oracle(self):
        spec_a = ScenarioSpec.make("relational", 1)
        spec_b = ScenarioSpec.make("relational", 2)
        keys = {
            cache_key(spec_a, "symmetry"),
            cache_key(spec_a, "evaluator"),
            cache_key(spec_b, "symmetry"),
        }
        assert len(keys) == 3

    def test_second_run_is_fully_cached(self, tmp_path):
        tasks = small_tasks()
        cold = run_campaign(tasks, shards=1, cache_dir=tmp_path / "c")
        assert cold.clean and cold.cache_hits == 0
        warm = run_campaign(tasks, shards=1, cache_dir=tmp_path / "c")
        assert warm.clean
        assert warm.cache_hits == warm.total == len(tasks)
        assert warm.executed == 0
        cold_verdicts = [(r.spec_hash, r.oracle, r.agree)
                         for r in cold.results]
        warm_verdicts = [(r.spec_hash, r.oracle, r.agree)
                         for r in warm.results]
        assert cold_verdicts == warm_verdicts
        assert all(r.cached for r in warm.results)

    def test_errors_are_not_cached(self, tmp_path):
        spec = ScenarioSpec.make("relational", 1)
        report = run_campaign([(spec, "no-such-oracle")], shards=1,
                              cache_dir=tmp_path / "c")
        assert report.errors
        assert len(ResultCache(tmp_path / "c")) == 0

    def test_cached_error_entries_are_retried(self, tmp_path):
        spec = ScenarioSpec.make("relational", 1, num_atoms=3)
        cache = ResultCache(tmp_path / "c")
        poisoned = execute_task(spec.as_dict(), "symmetry")
        poisoned["error"] = "timeout after 1s"
        cache.put(cache_key(spec, "symmetry"), poisoned)
        report = run_campaign([(spec, "symmetry")], shards=1,
                              cache_dir=tmp_path / "c")
        assert report.cache_hits == 0
        assert report.results[0].ok
        assert not report.results[0].cached

    def test_no_cache_dir_disables_cache(self, tmp_path):
        tasks = small_tasks()[:2]
        first = run_campaign(tasks, shards=1, cache_dir=None)
        second = run_campaign(tasks, shards=1, cache_dir=None)
        assert first.cache_hits == second.cache_hits == 0


class TestSharding:
    def test_sharded_matches_inline(self, tmp_path):
        tasks = small_tasks()
        inline = run_campaign(tasks, shards=1, cache_dir=None)
        sharded = run_campaign(tasks, shards=2, cache_dir=None)
        assert sharded.shards == 2
        assert ([(r.spec_hash, r.oracle, r.agree, r.error is None)
                 for r in inline.results]
                == [(r.spec_hash, r.oracle, r.agree, r.error is None)
                    for r in sharded.results])

    def test_shards_share_one_cache(self, tmp_path):
        tasks = small_tasks()
        run_campaign(tasks, shards=2, cache_dir=tmp_path / "c")
        warm = run_campaign(tasks, shards=2, cache_dir=tmp_path / "c")
        assert warm.cache_hits == warm.total

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="the test-hang oracle reaches workers only via fork")
    def test_stall_costs_one_timeout_window(self, hang_oracle):
        """Hung workers must cost one stall window in total: queued tasks
        behind them are recorded immediately, completed ones are kept,
        and the campaign (and its workers) terminates promptly."""
        hang = [(ScenarioSpec.make("relational", s, num_atoms=3),
                 hang_oracle) for s in (1, 2)]
        healthy = [(spec, "symmetry") for spec in random_sweep(
            "relational", 4, base_seed=50, num_atoms=(3, 3),
            depth=(1, 1), max_edges=(0, 2))]
        started = time.perf_counter()
        report = run_campaign(hang + healthy, shards=2, task_timeout=1.5,
                              cache_dir=None)
        elapsed = time.perf_counter() - started
        assert elapsed < 15  # one window + slack, not one window per task
        assert report.total == 6
        errors = [r.error for r in report.errors]
        assert sum("timeout" in e for e in errors) >= 2
        # Healthy tasks either completed before the stall or were
        # recorded as never-started; none may disagree.
        assert not report.disagreements


class TestDefaultCampaign:
    def test_meets_acceptance_shape(self):
        tasks = build_default_campaign(instances=100)
        assert len(tasks) >= 100
        families = {spec.family for spec, _ in tasks}
        oracles = {oracle for _, oracle in tasks}
        assert len(families) >= 3
        assert len(oracles) >= 4
        for spec, oracle in tasks:
            assert oracle in {"symmetry", "enumeration", "evaluator",
                              "kernels", "external", "explorer", "engines",
                              "delta"}
        # The delta oracle must sweep every family it applies to.
        delta_families = {spec.family for spec, oracle in tasks
                          if oracle == "delta"}
        assert delta_families == {"relational", "mca", "dispatch", "uav",
                                  "vnet"}

    def test_deterministic_in_seed(self):
        assert (build_default_campaign(instances=40, base_seed=1)
                == build_default_campaign(instances=40, base_seed=1))
        assert (build_default_campaign(instances=40, base_seed=1)
                != build_default_campaign(instances=40, base_seed=2))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            build_default_campaign(instances=0)


class TestReporting:
    def test_summary_and_table(self, tmp_path):
        report = run_campaign(small_tasks(), shards=1,
                              cache_dir=tmp_path / "c")
        summary = campaign_summary(report.results)
        assert summary["totals"]["tasks"] == report.total
        assert summary["totals"]["disagreements"] == 0
        table = render_campaign_table(report.results)
        assert "TOTAL" in table
        assert "symmetry" in table

    def test_json_artifact(self, tmp_path):
        report = run_campaign(small_tasks()[:2], shards=1,
                              cache_dir=tmp_path / "c")
        path = tmp_path / "artifacts" / "BENCH_campaign.json"
        artifact = write_campaign_json(report.results, path,
                                       wall_seconds=report.wall_seconds,
                                       shards=report.shards)
        assert path.is_file()
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(artifact))
        assert on_disk["benchmark"] == "campaign"
        assert len(on_disk["results"]) == 2
