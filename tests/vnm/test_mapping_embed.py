"""Tests for mapping validation and MCA-driven embedding."""

import pytest

from repro.vnm import (
    Mapping,
    PhysicalNetwork,
    VirtualNetwork,
    embed,
    validate_mapping,
)


@pytest.fixture
def small_substrate():
    net = PhysicalNetwork()
    for i in range(3):
        net.add_node(i, cpu=50)
    net.add_link(0, 1, 20)
    net.add_link(1, 2, 20)
    return net


@pytest.fixture
def small_request():
    return VirtualNetwork.chain(["v0", "v1"], cpu=10, bandwidth=5)


class TestValidation:
    def test_valid_mapping(self, small_substrate, small_request):
        mapping = Mapping()
        mapping.assign_node("v0", 0)
        mapping.assign_node("v1", 1)
        mapping.assign_link("v0", "v1", [0, 1])
        report = validate_mapping(small_request, small_substrate, mapping)
        assert report.valid, report.errors

    def test_unmapped_node_detected(self, small_substrate, small_request):
        mapping = Mapping()
        mapping.assign_node("v0", 0)
        report = validate_mapping(small_request, small_substrate, mapping)
        assert not report.valid
        assert any("unmapped" in e for e in report.errors)

    def test_cpu_overload_detected(self, small_substrate):
        vn = VirtualNetwork.chain(["v0", "v1"], cpu=40)
        mapping = Mapping()
        mapping.assign_node("v0", 0)
        mapping.assign_node("v1", 0)  # 80 > 50
        report = validate_mapping(vn, small_substrate, mapping)
        assert not report.valid
        assert any("overloaded" in e for e in report.errors)

    def test_unmapped_link_detected(self, small_substrate, small_request):
        mapping = Mapping()
        mapping.assign_node("v0", 0)
        mapping.assign_node("v1", 1)
        report = validate_mapping(small_request, small_substrate, mapping)
        assert any("link" in e for e in report.errors)

    def test_loopy_path_detected(self, small_substrate, small_request):
        mapping = Mapping()
        mapping.assign_node("v0", 0)
        mapping.assign_node("v1", 1)
        mapping.assign_link("v0", "v1", [0, 1, 0, 1])
        report = validate_mapping(small_request, small_substrate, mapping)
        assert any("loop" in e for e in report.errors)

    def test_endpoint_mismatch_detected(self, small_substrate, small_request):
        mapping = Mapping()
        mapping.assign_node("v0", 0)
        mapping.assign_node("v1", 2)
        mapping.assign_link("v0", "v1", [0, 1])  # ends at 1, not 2
        report = validate_mapping(small_request, small_substrate, mapping)
        assert any("endpoints" in e for e in report.errors)

    def test_bandwidth_overload_detected(self, small_substrate):
        vn = VirtualNetwork.chain(["v0", "v1"], cpu=1, bandwidth=30)
        mapping = Mapping()
        mapping.assign_node("v0", 0)
        mapping.assign_node("v1", 1)
        mapping.assign_link("v0", "v1", [0, 1])  # 30 > 20
        report = validate_mapping(vn, small_substrate, mapping)
        assert any("overloaded" in e for e in report.errors)

    def test_missing_physical_link_detected(self, small_substrate,
                                            small_request):
        mapping = Mapping()
        mapping.assign_node("v0", 0)
        mapping.assign_node("v1", 2)
        mapping.assign_link("v0", "v1", [0, 2])  # 0-2 not a link
        report = validate_mapping(small_request, small_substrate, mapping)
        assert any("missing physical link" in e for e in report.errors)

    def test_colocated_endpoints_need_no_path(self, small_substrate):
        vn = VirtualNetwork.chain(["v0", "v1"], cpu=10, bandwidth=5)
        mapping = Mapping()
        mapping.assign_node("v0", 0)
        mapping.assign_node("v1", 0)
        mapping.assign_link("v0", "v1", [0])
        report = validate_mapping(vn, small_substrate, mapping)
        assert report.valid, report.errors


class TestEmbedding:
    def test_successful_embedding_is_valid(self):
        phys = PhysicalNetwork.grid(3, 3, cpu=50, bandwidth=100)
        vn = VirtualNetwork.chain(["v1", "v2", "v3"], cpu=20, bandwidth=10)
        result = embed(vn, phys)
        assert result.success, result.reason
        assert result.validation.valid
        assert result.auction.converged

    def test_node_mapping_complete(self):
        phys = PhysicalNetwork.grid(2, 2, cpu=100, bandwidth=50)
        vn = VirtualNetwork.star("hub", ["a", "b"], cpu=10, bandwidth=5)
        result = embed(vn, phys)
        assert result.success
        assert set(result.mapping.node_map) == {"hub", "a", "b"}

    def test_infeasible_cpu_fails_cleanly(self):
        phys = PhysicalNetwork()
        phys.add_node(0, cpu=5)
        phys.add_node(1, cpu=5)
        phys.add_link(0, 1, 10)
        vn = VirtualNetwork.chain(["v1", "v2", "v3"], cpu=10, bandwidth=1)
        result = embed(vn, phys)
        assert not result.success
        assert result.reason

    def test_capacity_constrains_colocations(self):
        """Each physical node can host only what fits its CPU."""
        phys = PhysicalNetwork.grid(2, 2, cpu=25, bandwidth=50)
        vn = VirtualNetwork.chain(["v1", "v2"], cpu=20, bandwidth=5)
        result = embed(vn, phys)
        assert result.success, result.reason
        hosts = set(result.mapping.node_map.values())
        assert len(hosts) == 2  # 40 > 25: cannot colocate

    def test_auction_is_distributed_consensus(self):
        from repro.mca import consensus_report

        phys = PhysicalNetwork.grid(3, 2, cpu=60, bandwidth=50)
        vn = VirtualNetwork.chain(["v1", "v2"], cpu=15, bandwidth=5)
        result = embed(vn, phys)
        assert result.success
