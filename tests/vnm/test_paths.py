"""Tests for k-shortest loop-free paths."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vnm.paths import (
    dijkstra_shortest_path,
    k_shortest_paths,
    path_cost,
    path_is_loop_free,
)


def diamond():
    """A graph with multiple distinct simple paths 0 -> 3."""
    g = nx.Graph()
    g.add_edge(0, 1, weight=1)
    g.add_edge(1, 3, weight=1)
    g.add_edge(0, 2, weight=2)
    g.add_edge(2, 3, weight=2)
    g.add_edge(1, 2, weight=1)
    return g


class TestDijkstra:
    def test_shortest_path(self):
        cost, path = dijkstra_shortest_path(diamond(), 0, 3)
        assert path == [0, 1, 3]
        assert cost == 2

    def test_unreachable(self):
        g = nx.Graph()
        g.add_node(0)
        g.add_node(1)
        assert dijkstra_shortest_path(g, 0, 1) is None

    def test_banned_nodes_respected(self):
        result = dijkstra_shortest_path(diamond(), 0, 3, banned_nodes={1})
        assert result is not None
        cost, path = result
        assert 1 not in path

    def test_banned_edges_respected(self):
        result = dijkstra_shortest_path(diamond(), 0, 3,
                                        banned_edges={(1, 3)})
        assert result is not None
        _, path = result
        assert (1, 3) not in zip(path, path[1:])

    def test_default_weight_one(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        cost, path = dijkstra_shortest_path(g, 0, 2)
        assert cost == 2


class TestKShortest:
    def test_paths_sorted_by_cost(self):
        g = diamond()
        paths = k_shortest_paths(g, 0, 3, 4)
        costs = [path_cost(g, p) for p in paths]
        assert costs == sorted(costs)

    def test_all_loop_free(self):
        paths = k_shortest_paths(diamond(), 0, 3, 5)
        assert all(path_is_loop_free(p) for p in paths)

    def test_all_distinct(self):
        paths = k_shortest_paths(diamond(), 0, 3, 5)
        assert len({tuple(p) for p in paths}) == len(paths)

    def test_first_is_shortest(self):
        g = diamond()
        paths = k_shortest_paths(g, 0, 3, 3)
        assert paths[0] == [0, 1, 3]

    def test_k_exceeding_path_count(self):
        paths = k_shortest_paths(diamond(), 0, 3, 100)
        # Diamond has exactly 4 simple 0->3 paths.
        assert len(paths) == 4

    def test_no_path(self):
        g = nx.Graph()
        g.add_node(0)
        g.add_node(1)
        assert k_shortest_paths(g, 0, 1, 3) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            k_shortest_paths(diamond(), 0, 3, 0)

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError):
            k_shortest_paths(diamond(), 0, 0, 1)

    @given(st.integers(min_value=4, max_value=9), st.integers(0, 30))
    @settings(max_examples=25, deadline=None)
    def test_matches_networkx_on_random_graphs(self, n, seed):
        import random

        rng = random.Random(seed)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < 0.5:
                    g.add_edge(i, j, weight=rng.randint(1, 5))
        if not nx.has_path(g, 0, n - 1):
            return
        ours = k_shortest_paths(g, 0, n - 1, 3)
        reference = []
        for path in nx.shortest_simple_paths(g, 0, n - 1, weight="weight"):
            reference.append(path)
            if len(reference) == 3:
                break
        assert [path_cost(g, p) for p in ours] == [
            path_cost(g, p) for p in reference
        ]
