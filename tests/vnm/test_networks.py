"""Tests for physical and virtual network models."""

import pytest

from repro.vnm import PhysicalNetwork, VirtualNetwork


class TestPhysicalNetwork:
    def test_add_and_lookup_node(self):
        net = PhysicalNetwork()
        net.add_node(0, cpu=50)
        assert net.node(0).cpu == 50

    def test_duplicate_node_rejected(self):
        net = PhysicalNetwork()
        net.add_node(0, 10)
        with pytest.raises(ValueError):
            net.add_node(0, 10)

    def test_negative_cpu_rejected(self):
        net = PhysicalNetwork()
        with pytest.raises(ValueError):
            net.add_node(0, -5)

    def test_link_requires_known_nodes(self):
        net = PhysicalNetwork()
        net.add_node(0, 10)
        with pytest.raises(KeyError):
            net.add_link(0, 1, 5)

    def test_self_link_rejected(self):
        net = PhysicalNetwork()
        net.add_node(0, 10)
        with pytest.raises(ValueError):
            net.add_link(0, 0, 5)

    def test_bandwidth_lookup(self):
        net = PhysicalNetwork()
        net.add_node(0, 10)
        net.add_node(1, 10)
        net.add_link(0, 1, 7.5)
        assert net.bandwidth(0, 1) == 7.5
        assert net.bandwidth(1, 0) == 7.5

    def test_missing_link_raises(self):
        net = PhysicalNetwork()
        net.add_node(0, 10)
        net.add_node(1, 10)
        with pytest.raises(KeyError):
            net.bandwidth(0, 1)

    def test_grid_structure(self):
        net = PhysicalNetwork.grid(3, 2)
        assert len(net) == 6
        assert net.has_link(0, 1)
        assert net.has_link(0, 3)
        assert not net.has_link(0, 4)
        assert net.is_connected()

    def test_grid_link_count(self):
        # 3x2 grid: 2 horizontal links per row * 2 rows + 3 vertical = 7.
        net = PhysicalNetwork.grid(3, 2)
        assert len(list(net.links())) == 7

    def test_neighbors(self):
        net = PhysicalNetwork.grid(2, 2)
        assert net.neighbors(0) == [1, 2]


class TestVirtualNetwork:
    def test_chain_factory(self):
        vn = VirtualNetwork.chain(["a", "b", "c"], cpu=5, bandwidth=2)
        assert len(vn) == 3
        assert list(vn.links()) == [("a", "b", 2), ("b", "c", 2)]

    def test_star_factory(self):
        vn = VirtualNetwork.star("hub", ["l1", "l2"], cpu=5, bandwidth=2)
        assert len(vn) == 3
        assert len(list(vn.links())) == 2

    def test_demands(self):
        vn = VirtualNetwork.chain(["a", "b"], cpu=7)
        assert vn.demands() == {"a": 7, "b": 7}

    def test_duplicate_node_rejected(self):
        vn = VirtualNetwork()
        vn.add_node("a", 1)
        with pytest.raises(ValueError):
            vn.add_node("a", 1)

    def test_negative_demand_rejected(self):
        vn = VirtualNetwork()
        with pytest.raises(ValueError):
            vn.add_node("a", -1)

    def test_names_sorted(self):
        vn = VirtualNetwork()
        vn.add_node("z", 1)
        vn.add_node("a", 1)
        assert vn.names() == ["a", "z"]
