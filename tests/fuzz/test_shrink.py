"""Shrinker behaviour: minimality, monotonicity, idempotence, determinism."""

import pytest

from repro.api.problems import FormulaProblem, problem_fingerprint
from repro.fuzz import codec
from repro.fuzz.faults import fault_matches
from repro.fuzz.generators import FuzzSpec, generate
from repro.fuzz.shrink import problem_size, shrink
from repro.kodkod import ast
from repro.kodkod.bounds import Bounds
from repro.kodkod.universe import Universe


def _conjunction_fails(problem):
    return fault_matches("conjunction", problem)


def _protocol_fails(problem):
    return fault_matches("protocol-pair", problem)


class TestProblemSize:
    def test_formula_size_counts_nodes_and_free_tuples(self):
        universe = Universe(["a", "b"])
        bounds = Bounds(universe)
        rel = ast.Relation("r", 1)
        bounds.bound(rel, universe.empty(1), universe.all_tuples(1))
        problem = FormulaProblem(ast.Some(rel), bounds)
        # Some + rel = 2 nodes; two free tuples.
        assert problem_size(problem) == 4

    def test_protocol_size_counts_agents_and_items(self):
        problem = generate(FuzzSpec.make("protocol", 1, size=2))
        assert problem_size(problem) == (
            len(problem.network.agents()) + len(problem.items))

    def test_module_size_is_lifted_size(self):
        from repro.fuzz.runner import lift_module

        problem = generate(FuzzSpec.make("module", 1, size=3))
        assert problem_size(problem) == problem_size(lift_module(problem))


class TestFormulaShrinking:
    @pytest.mark.parametrize("seed", [3, 7, 11])
    def test_shrinks_conjunction_to_at_most_five_nodes(self, seed):
        problem = generate(FuzzSpec.make("formula", seed, size=5))
        if not _conjunction_fails(problem):
            problem = FormulaProblem(
                ast.And([problem.formula, ast.TrueF()]), problem.bounds)
        result = shrink(problem, _conjunction_fails)
        assert _conjunction_fails(result.problem)
        assert result.size_after <= 5
        assert not result.exhausted

    def test_sizes_decrease_strictly_monotonically(self):
        problem = generate(FuzzSpec.make("formula", 7, size=5))
        if not _conjunction_fails(problem):
            problem = FormulaProblem(
                ast.And([problem.formula, ast.TrueF()]), problem.bounds)
        result = shrink(problem, _conjunction_fails)
        sizes = [result.size_before] + [size for _, size in result.steps]
        assert sizes == sorted(sizes, reverse=True)
        assert len(set(sizes)) == len(sizes)

    def test_shrinking_is_idempotent(self):
        problem = generate(FuzzSpec.make("formula", 7, size=5))
        if not _conjunction_fails(problem):
            problem = FormulaProblem(
                ast.And([problem.formula, ast.TrueF()]), problem.bounds)
        once = shrink(problem, _conjunction_fails)
        twice = shrink(once.problem, _conjunction_fails)
        assert twice.steps == []
        assert (problem_fingerprint(twice.problem)
                == problem_fingerprint(once.problem))

    def test_shrinking_is_deterministic_across_runs(self):
        problem = generate(FuzzSpec.make("formula", 9, size=5))
        if not _conjunction_fails(problem):
            problem = FormulaProblem(
                ast.And([problem.formula, ast.TrueF()]), problem.bounds)
        a = shrink(problem, _conjunction_fails)
        b = shrink(problem, _conjunction_fails)
        assert [s for s, _ in a.steps] == [s for s, _ in b.steps]
        assert (problem_fingerprint(a.problem)
                == problem_fingerprint(b.problem))

    def test_minimal_failing_input_is_returned_unchanged(self):
        problem = codec.problem_from_json({
            "kind": "formula",
            "formula": {"f": "and", "parts": [{"f": "true"}, {"f": "true"}]},
            "bounds": {"universe": ["a"], "relations": []},
        })
        result = shrink(problem, _conjunction_fails)
        assert result.steps == []
        assert result.size_after == result.size_before == 3

    def test_check_budget_is_respected(self):
        problem = generate(FuzzSpec.make("formula", 7, size=5))
        if not _conjunction_fails(problem):
            problem = FormulaProblem(
                ast.And([problem.formula, ast.TrueF()]), problem.bounds)
        result = shrink(problem, _conjunction_fails, max_checks=1)
        assert result.checks <= 1
        assert result.exhausted or result.steps == []

    def test_crashing_predicate_counts_as_not_failing(self):
        problem = generate(FuzzSpec.make("formula", 2, size=4))

        calls = []

        def explosive(candidate):
            calls.append(candidate)
            raise RuntimeError("oracle crashed on the candidate")

        result = shrink(problem, explosive)
        # Every candidate crashed, so nothing was accepted.
        assert result.steps == []
        assert calls  # the predicate genuinely ran


class TestProtocolShrinking:
    @pytest.mark.parametrize("seed", [1, 5])
    def test_shrinks_protocol_to_at_most_five(self, seed):
        problem = generate(FuzzSpec.make("protocol", seed, size=5))
        result = shrink(problem, _protocol_fails)
        assert _protocol_fails(result.problem)
        assert result.size_after <= 5
        assert len(result.problem.network.agents()) == 2

    def test_module_problems_are_lifted_before_shrinking(self):
        problem = generate(FuzzSpec.make("module", 5, size=3))
        result = shrink(problem, _conjunction_fails)
        assert isinstance(result.problem, FormulaProblem)
        if _conjunction_fails(result.problem):
            assert result.size_after <= result.size_before
